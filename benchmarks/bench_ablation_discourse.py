"""Ablation (extension) — one-sense-per-discourse post-processing.

Gale/Church/Yarowsky's heuristic applied to XML: within one document a
label keeps one sense, so after per-node scoring, disagreeing
occurrences are re-assigned to the sense with the largest document-wide
score mass.  The benchmark measures the per-label disagreement rate the
raw process leaves behind and the f-value before/after enforcement.
"""

from __future__ import annotations

from conftest import print_table

from repro.core import XSDF, XSDFConfig
from repro.core.config import DisambiguationApproach
from repro.core.discourse import (
    disagreement_rate,
    enforce_one_sense_per_discourse,
)
from repro.datasets.stats import document_tree
from repro.evaluation import select_eval_nodes


def test_ablation_discourse(benchmark, corpus, network, tree_cache):
    """Disagreement rate and f-value with/without discourse enforcement."""

    def run():
        system = XSDF(network, XSDFConfig(
            sphere_radius=1, approach=DisambiguationApproach.CONCEPT_BASED,
        ))
        results = {}
        for group in (1, 2, 3, 4):
            correct_raw = correct_fixed = total = 0
            rates = []
            for doc in corpus.by_group(group):
                tree = tree_cache.setdefault(
                    doc.name, document_tree(doc, network)
                )
                targets = select_eval_nodes(tree, doc)
                raw = system.disambiguate_tree(tree, targets=targets)
                fixed = enforce_one_sense_per_discourse(raw)
                rates.append(disagreement_rate(raw))
                for before, after in zip(raw.assignments, fixed.assignments):
                    total += 1
                    correct_raw += before.concept_id == doc.gold[before.label]
                    correct_fixed += after.concept_id == doc.gold[after.label]
            results[group] = (
                sum(rates) / len(rates),
                correct_raw / total,
                correct_fixed / total,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"Group {g}", f"{rate:.2f}", f"{raw:.3f}", f"{fixed:.3f}"]
        for g, (rate, raw, fixed) in sorted(results.items())
    ]
    print_table(
        "Ablation: one-sense-per-discourse (concept-based, d=1)",
        ["group", "disagreement rate", "F raw", "F enforced"],
        rows,
    )
    # Enforcement helps decisively where the raw process disagrees the
    # most (the ambiguous groups' repeated labels) and costs at most a
    # rounding-level amount where occurrences already agree.
    for group, (rate, raw, fixed) in results.items():
        assert fixed >= raw - 0.02, group
    assert results[1][2] >= results[1][1] + 0.05
    assert results[2][2] >= results[2][1] + 0.05
