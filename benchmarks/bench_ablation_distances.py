"""Ablation (extension) — tree distance functions for sphere contexts.

The paper's future work: "investigating different XML tree node distance
functions (including edge weights, density, direction), to define more
sophisticated neighborhood contexts".  This benchmark runs the combined
process with the implemented policies — uniform edge count (Definition
4), direction-weighted (subtree-biased), and density-weighted (hub
penalty) — across all four groups.
"""

from __future__ import annotations

from conftest import print_table

from repro.core import XSDF, XSDFConfig
from repro.core.distances import (
    DensityWeightedDistance,
    DirectionWeightedDistance,
)
from repro.evaluation import evaluate_quality

POLICIES = {
    "uniform (paper)": None,
    "direction (down-biased)": DirectionWeightedDistance(1.5, 1.0),
    "direction (up-biased)": DirectionWeightedDistance(1.0, 1.5),
    "density (hub penalty)": DensityWeightedDistance(penalty=1.0),
}


def test_ablation_distance_policies(benchmark, corpus, network, tree_cache):
    """f-value per group for each distance policy (combined, d=2)."""

    def run():
        results = {}
        for name, policy in POLICIES.items():
            system = XSDF(network, XSDFConfig(
                sphere_radius=2, distance_policy=policy,
            ))
            for group in (1, 2, 3, 4):
                quality = evaluate_quality(
                    system, corpus.by_group(group), network, tree_cache
                )
                results[(name, group)] = quality.prf.f_value
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name] + [f"{results[(name, g)]:.3f}" for g in (1, 2, 3, 4)]
        for name in POLICIES
    ]
    print_table(
        "Ablation: sphere distance policies (combined, d=2)",
        ["policy", "Group 1", "Group 2", "Group 3", "Group 4"],
        rows,
    )
    # Weighted policies reshape the context rather than break it: every
    # policy stays within 25% of the uniform baseline on every group,
    # and each one beats uniform on at least one group (the hub penalty
    # notably helps Group 1, where verse-token floods dilute spheres).
    for name in POLICIES:
        for group in (1, 2, 3, 4):
            assert results[(name, group)] >= \
                0.75 * results[("uniform (paper)", group)], (name, group)
        assert any(
            results[(name, group)] >= results[("uniform (paper)", group)]
            for group in (1, 2, 3, 4)
        ), name
