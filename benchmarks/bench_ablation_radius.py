"""Ablation — sphere radius (context size).

DESIGN.md design choice #1: how does the sphere radius trade quality
against cost?  Sweeps d in {1..4} on the combined process and reports
f-value per group plus the runtime of disambiguating one Group 1
document (context grows with d, so cost should rise monotonically).
"""

from __future__ import annotations

from conftest import print_table

from repro.datasets.stats import document_tree
from repro.evaluation import evaluate_quality, make_system_factory, select_eval_nodes

RADII = (1, 2, 3, 4)


def test_ablation_radius_quality(benchmark, corpus, network, tree_cache):
    """f-value as a function of the sphere radius."""

    def run():
        results = {}
        for radius in RADII:
            system = make_system_factory(f"xsdf-combined-d{radius}", network)()
            for group in (1, 2, 3, 4):
                quality = evaluate_quality(
                    system, corpus.by_group(group), network, tree_cache
                )
                results[(radius, group)] = quality.prf.f_value
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"d={radius}"] + [f"{results[(radius, g)]:.3f}" for g in (1, 2, 3, 4)]
        for radius in RADII
    ]
    print_table(
        "Ablation: sphere radius (combined process)",
        ["radius", "Group 1", "Group 2", "Group 3", "Group 4"],
        rows,
    )
    # A mid-size context must beat the degenerate tiny context somewhere,
    # and growing the radius past the optimum should not keep helping
    # every group (the noise argument of Section 4.3.1).
    assert max(results[(2, g)] for g in (1, 2, 3, 4)) > min(
        results[(1, g)] for g in (1, 2, 3, 4)
    )
    gains = [results[(4, g)] - results[(3, g)] for g in (1, 2, 3, 4)]
    assert min(gains) < 0.02


def test_ablation_radius_cost(benchmark, corpus, network):
    """Wall-clock cost of one document at the largest swept radius."""
    document = corpus.by_group(1)[0]
    tree = document_tree(document, network)
    targets = select_eval_nodes(tree, document)
    system = make_system_factory("xsdf-combined-d3", network)()
    system.disambiguate_tree(tree, targets=targets)  # warm caches
    benchmark(lambda: system.disambiguate_tree(tree, targets=targets))
