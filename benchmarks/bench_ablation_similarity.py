"""Ablation — semantic similarity measure mix (Definition 9).

DESIGN.md design choice #2: the paper combines edge-, node-, and
gloss-based measures with uniform weights.  This ablation runs the
concept-based process with each single measure and with the uniform mix,
showing that the combination is more robust across groups than any
corner of the weight simplex.
"""

from __future__ import annotations

from conftest import print_table

from repro.core import XSDF, XSDFConfig
from repro.core.config import DisambiguationApproach
from repro.evaluation import evaluate_quality
from repro.similarity import SimilarityWeights

MIXES = {
    "edge only": SimilarityWeights(1, 0, 0),
    "node only": SimilarityWeights(0, 1, 0),
    "gloss only": SimilarityWeights(0, 0, 1),
    "uniform mix": SimilarityWeights(1, 1, 1),
}


def test_ablation_similarity_mix(benchmark, corpus, network, tree_cache):
    """f-value per group for each similarity weighting."""

    def run():
        results = {}
        for name, weights in MIXES.items():
            config = XSDFConfig(
                sphere_radius=2,
                approach=DisambiguationApproach.CONCEPT_BASED,
                similarity_weights=weights,
            )
            system = XSDF(network, config)
            for group in (1, 2, 3, 4):
                quality = evaluate_quality(
                    system, corpus.by_group(group), network, tree_cache
                )
                results[(name, group)] = quality.prf.f_value
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name] + [f"{results[(name, g)]:.3f}" for g in (1, 2, 3, 4)]
        for name in MIXES
    ]
    print_table(
        "Ablation: similarity measure mix (concept-based, d=2)",
        ["mix", "Group 1", "Group 2", "Group 3", "Group 4"],
        rows,
    )
    # Robustness: the uniform mix's worst group beats the worst group of
    # every single-measure configuration.
    def worst(name):
        return min(results[(name, g)] for g in (1, 2, 3, 4))

    for name in ("edge only", "node only", "gloss only"):
        assert worst("uniform mix") >= worst(name), name
