"""Ablations — structural weighting and compound handling.

DESIGN.md design choices #4 and #5:

* **sphere vs bag-of-words** — XSDF's structural-proximity-weighted
  sphere context against the flat whole-document bag-of-words context
  (same similarity machinery), isolating the value of the relational
  information model (paper Motivation 3);
* **compound handling on/off** — with compound detection disabled the
  ``FirstName``/``directed_by`` style tags lose their single-concept
  resolution, degrading the movie corpus that exercises them.
"""

from __future__ import annotations

from conftest import print_table

from repro.baselines import BagOfWordsDisambiguator
from repro.core import XSDF, XSDFConfig
from repro.core.config import DisambiguationApproach
from repro.datasets.stats import document_tree
from repro.evaluation import evaluate_quality, select_eval_nodes
from repro.linguistics import LinguisticPipeline
from repro.xmltree import build_tree, parse


def test_ablation_sphere_vs_bag_of_words(benchmark, corpus, network, tree_cache):
    """Structure-aware sphere context vs flat bag-of-words context."""

    def run():
        sphere = XSDF(network, XSDFConfig(
            sphere_radius=2, approach=DisambiguationApproach.CONCEPT_BASED,
        ))
        bow = BagOfWordsDisambiguator(network)
        results = {}
        for group in (1, 2, 3, 4):
            docs = corpus.by_group(group)
            results[("sphere", group)] = evaluate_quality(
                sphere, docs, network, tree_cache
            ).prf.f_value
            results[("bag-of-words", group)] = evaluate_quality(
                bow, docs, network, tree_cache
            ).prf.f_value
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name] + [f"{results[(name, g)]:.3f}" for g in (1, 2, 3, 4)]
        for name in ("sphere", "bag-of-words")
    ]
    print_table(
        "Ablation: sphere context vs bag-of-words",
        ["context model", "Group 1", "Group 2", "Group 3", "Group 4"],
        rows,
    )
    # On the small flat corpora the whole document is effectively a
    # large sphere, so bag-of-words stays competitive there; the
    # structural weighting must win where position matters most —
    # Group 2's uniform records repeat the same ambiguous fields, so
    # only proximity distinguishes a field's own record from the rest.
    assert results[("sphere", 2)] > results[("bag-of-words", 2)]
    sphere_avg = sum(results[("sphere", g)] for g in (1, 2, 3, 4)) / 4
    bow_avg = sum(results[("bag-of-words", g)] for g in (1, 2, 3, 4)) / 4
    assert sphere_avg > 0.95 * bow_avg


def test_ablation_compound_handling(benchmark, corpus, network):
    """Compound tag handling on/off over the movie corpus."""

    def run():
        docs = corpus.by_dataset("imdb_movies")
        system = XSDF(network, XSDFConfig(sphere_radius=2))

        compound_labels = 0
        naive_labels = 0
        naive_pipeline = LinguisticPipeline(known=None)  # lexicon-blind
        for doc in docs:
            root = parse(doc.xml).root
            full = build_tree(
                root,
                label_processor=system.pipeline.process_label,
                value_processor=system.pipeline.process_value,
            )
            naive = build_tree(
                root,
                label_processor=naive_pipeline.process_label,
                value_processor=naive_pipeline.process_value,
            )
            # A resolved compound is a single-token label ("first name"
            # as one lexicon expression); the blind pipeline keeps two
            # separate tokens inside the label.
            compound_labels += sum(
                1 for node in full
                if node.label in ("first name", "last name")
                and not node.is_compound
            )
            naive_labels += sum(
                1 for node in naive
                if node.label in ("first name", "last name")
                and not node.is_compound
            )
        return compound_labels, naive_labels

    compound_labels, naive_labels = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        "Ablation: compound tag handling",
        ["pipeline", "single-concept compound labels"],
        [["lexicon-aware", compound_labels], ["lexicon-blind", naive_labels]],
    )
    # With lexicon lookup, FirstName/LastName resolve to one concept
    # label each; without it they never do.
    assert compound_labels > 0
    assert naive_labels == 0
