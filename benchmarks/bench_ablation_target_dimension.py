"""Ablation (extension) — stripping the target's own vector dimension.

Definition 10 compares the target node's sphere vector with each
candidate sense's sphere vector *including* the target's own label
dimension.  Because the label appears in every candidate's sphere (it is
the center), that dimension is non-discriminative; under cosine
normalization it systematically favors senses with few semantic
neighbors (their vectors concentrate on their own words).

``XSDFConfig(strip_target_dimension=True)`` removes the dimension from
both vectors.  This benchmark quantifies the repair: the context-based
process improves across all four groups, by a wide margin on the
ambiguous ones — a reproduction finding that plausibly explains why the
paper's context-based process underperformed its concept-based one.
"""

from __future__ import annotations

from conftest import print_table

from repro.core import XSDF, XSDFConfig
from repro.core.config import DisambiguationApproach
from repro.evaluation import evaluate_quality


def test_ablation_target_dimension(benchmark, corpus, network, tree_cache):
    """Context-based f-value with the self-dimension kept vs stripped."""

    def run():
        results = {}
        for stripped in (False, True):
            system = XSDF(network, XSDFConfig(
                sphere_radius=2,
                approach=DisambiguationApproach.CONTEXT_BASED,
                strip_target_dimension=stripped,
            ))
            for group in (1, 2, 3, 4):
                quality = evaluate_quality(
                    system, corpus.by_group(group), network, tree_cache
                )
                results[(stripped, group)] = quality.prf.f_value
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name] + [f"{results[(flag, g)]:.3f}" for g in (1, 2, 3, 4)]
        for name, flag in (
            ("Definition 10 (kept)", False),
            ("stripped (extension)", True),
        )
    ]
    print_table(
        "Ablation: target-label dimension in context vectors "
        "(context-based, d=2)",
        ["variant", "Group 1", "Group 2", "Group 3", "Group 4"],
        rows,
    )
    # Stripping helps every group, decisively on the ambiguous ones.
    for group in (1, 2, 3, 4):
        assert results[(True, group)] >= results[(False, group)]
    assert results[(True, 1)] - results[(False, 1)] > 0.05
