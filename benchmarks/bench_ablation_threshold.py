"""Ablation — ambiguity threshold (target node selection).

DESIGN.md design choice #3: ``Thresh_Amb`` trades coverage against work.
Sweeping the threshold shows the selection mechanism's value: the number
of disambiguated nodes (and hence runtime) falls monotonically while the
nodes that remain are the genuinely ambiguous ones (their mean polysemy
rises).  This is the paper's Motivation 1 — prior systems disambiguate
everything.
"""

from __future__ import annotations

from conftest import print_table

from repro.core import XSDF, XSDFConfig
from repro.core.ambiguity import select_targets
from repro.datasets.stats import document_tree

THRESHOLDS = (0.0, 0.005, 0.01, 0.02, 0.05)


def test_ablation_threshold_selectivity(benchmark, corpus, network, tree_cache):
    """Target counts and mean target polysemy per threshold."""

    def run():
        trees = [
            tree_cache.setdefault(doc.name, document_tree(doc, network))
            for doc in corpus.by_group(1)
        ]
        results = {}
        for threshold in THRESHOLDS:
            counts = []
            polysemies = []
            for tree in trees:
                targets = select_targets(tree, network, threshold=threshold)
                counts.append(len(targets))
                polysemies.extend(
                    network.polysemy(node.label) for node in targets
                )
            results[threshold] = (
                sum(counts) / len(counts),
                sum(polysemies) / len(polysemies) if polysemies else 0.0,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"{t:.2f}", f"{results[t][0]:.1f}", f"{results[t][1]:.2f}"]
        for t in THRESHOLDS
    ]
    print_table(
        "Ablation: ambiguity threshold (Group 1)",
        ["Thresh_Amb", "avg targets/doc", "avg target polysemy"],
        rows,
    )
    counts = [results[t][0] for t in THRESHOLDS]
    polysemies = [results[t][1] for t in THRESHOLDS]
    # Selection is monotone: higher threshold, fewer targets...
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    assert counts[0] > counts[-1]
    # ...and the surviving targets are more ambiguous on average.
    assert polysemies[-1] > polysemies[0]


def test_ablation_threshold_work_saved(benchmark, corpus, network, tree_cache):
    """End-to-end time with selection on vs off (threshold 0.05 vs 0)."""
    doc = corpus.by_group(1)[0]
    tree = tree_cache.setdefault(doc.name, document_tree(doc, network))
    selective = XSDF(network, XSDFConfig(ambiguity_threshold=0.05))
    selective.disambiguate_tree(tree)  # warm caches

    benchmark(lambda: selective.disambiguate_tree(tree))
