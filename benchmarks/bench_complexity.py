"""Empirical complexity of the disambiguation processes.

The paper states (Section 3.5.3) that overall complexity is the sum of
the concept-based and context-based processes:
``O(|senses(x.l)| * |S_d(x)| * |senses(x_i.l)|)`` and
``O(|senses(x.l)| * (|S_d(x)| + |S_d(s_p)|))`` respectively.  This
benchmark measures per-node disambiguation time while the dominant term
— the sphere size ``|S_d(x)|`` — grows, and checks the growth is
polynomial of low degree (time ratio bounded by a cubic of the size
ratio), not exponential.

Synthetic stars make the sphere size exact: a center with ``k``
children labeled from a fixed ambiguous vocabulary gives ``|S_1| =
k + 1`` with every other quantity held constant.
"""

from __future__ import annotations

import time

from conftest import print_table

from repro.core import XSDF, XSDFConfig
from repro.core.config import DisambiguationApproach
from repro.xmltree.dom import XMLNode, XMLTree

SIZES = (8, 16, 32, 64, 128)
VOCAB = ("star", "line", "play", "act", "state", "head", "title", "stock")


def _star_tree(k: int) -> XMLTree:
    root = XMLNode("cast")
    for i in range(k):
        root.add_child(XMLNode(VOCAB[i % len(VOCAB)]))
    return XMLTree(root)


def _time_per_node(network, tree, repeats: int = 3) -> float:
    system = XSDF(network, XSDFConfig(
        sphere_radius=1, approach=DisambiguationApproach.CONCEPT_BASED,
    ))
    system.disambiguate_node(tree, tree.root)  # warm similarity caches
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        system.disambiguate_node(tree, tree.root)
        best = min(best, time.perf_counter() - start)
    return best


def test_complexity_scales_polynomially(benchmark, network):
    """Per-node time vs sphere size |S_1| = k + 1."""

    def run():
        return {k: _time_per_node(network, _star_tree(k)) for k in SIZES}

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    base_size, base_time = SIZES[0], timings[SIZES[0]]
    rows = []
    for k in SIZES:
        rows.append([
            f"|S|={k + 1}",
            f"{timings[k] * 1e3:.3f} ms",
            f"x{timings[k] / base_time:.1f}",
        ])
    print_table(
        "Complexity: concept-based time vs sphere size (cached similarity)",
        ["sphere size", "per-node time", "vs smallest"],
        rows,
    )
    # Growth bounded by ~cubic in the size ratio (the paper's bound is
    # quadratic in sphere-size terms; cubic leaves timer headroom).
    for k in SIZES[1:]:
        size_ratio = (k + 1) / (base_size + 1)
        assert timings[k] / base_time < size_ratio**3 + 8.0, k


def test_complexity_radius_growth(benchmark, corpus, network, tree_cache):
    """Whole-document time as the radius doubles (Group 1 document)."""
    from repro.datasets.stats import document_tree
    from repro.evaluation import select_eval_nodes

    doc = corpus.by_group(1)[0]
    tree = tree_cache.setdefault(doc.name, document_tree(doc, network))
    targets = select_eval_nodes(tree, doc)

    def run():
        timings = {}
        for radius in (1, 2, 4):
            system = XSDF(network, XSDFConfig(
                sphere_radius=radius,
                approach=DisambiguationApproach.CONCEPT_BASED,
            ))
            system.disambiguate_tree(tree, targets=targets)  # warm
            start = time.perf_counter()
            system.disambiguate_tree(tree, targets=targets)
            timings[radius] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"d={radius}", f"{seconds * 1e3:.1f} ms"]
        for radius, seconds in sorted(timings.items())
    ]
    print_table(
        "Complexity: document time vs radius (Group 1)",
        ["radius", "time"],
        rows,
    )
    # Bigger spheres cost more overall; no assertion on exact exponents
    # (sphere growth depends on tree shape), just sane monotone-ish cost.
    assert timings[4] > timings[1] * 0.5
