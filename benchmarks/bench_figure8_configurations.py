"""Figure 8 — f-value under different XSDF configurations.

Sweeps the three disambiguation processes (concept-based, context-based,
combined) across sphere radii d in {1, 2, 3} for each of the four test
groups, printing the f-value series of the paper's Figure 8.

Expected shape (paper Section 4.3.1):

1. for the concept-based process, Group 1 peaks at the smallest context
   (d = 1) while Groups 2-4 prefer larger contexts (d >= 2);
2. the context-based process is markedly more sensitive to context size
   than the concept-based one (its d=1 -> d=3 swing is larger);
3. the combined process tracks the better of the two at large radii.
"""

from __future__ import annotations

from conftest import print_table

from repro.evaluation import evaluate_quality, make_system_factory

RADII = (1, 2, 3)
PROCESSES = ("concept", "context", "combined")


def _run(corpus, network, tree_cache):
    results: dict[tuple[str, int, int], float] = {}
    for process in PROCESSES:
        for radius in RADII:
            system = make_system_factory(
                f"xsdf-{process}-d{radius}", network
            )()
            for group in (1, 2, 3, 4):
                quality = evaluate_quality(
                    system, corpus.by_group(group), network, tree_cache
                )
                results[(process, radius, group)] = quality.prf.f_value
    return results


def test_figure8_configuration_sweep(benchmark, corpus, network, tree_cache):
    """Regenerate Figure 8's f-value series and assert its shape."""
    results = benchmark.pedantic(
        _run, args=(corpus, network, tree_cache), rounds=1, iterations=1
    )
    rows = []
    for process in PROCESSES:
        for radius in RADII:
            rows.append(
                [process, f"d={radius}"]
                + [f"{results[(process, radius, g)]:.3f}" for g in (1, 2, 3, 4)]
            )
    print_table(
        "Figure 8: f-value by process, radius, group",
        ["process", "radius", "Group 1", "Group 2", "Group 3", "Group 4"],
        rows,
    )

    concept = {(d, g): results[("concept", d, g)] for d in RADII for g in (1, 2, 3, 4)}
    # (1) Group 1 peaks at d=1 for the concept-based process...
    assert concept[(1, 1)] == max(concept[(d, 1)] for d in RADII)
    # ...while Groups 2-4 do better with a larger context than d=1.
    for group in (2, 3, 4):
        assert max(concept[(d, group)] for d in (2, 3)) > concept[(1, group)]
    # (2) Context-based is more size-sensitive than concept-based
    # (average d1->d3 swing across groups).
    def swing(process):
        return sum(
            abs(results[(process, 3, g)] - results[(process, 1, g)])
            for g in (1, 2, 3, 4)
        ) / 4.0
    assert swing("context") > swing("concept")
    # (3) All configurations stay in a usable band on their best radius.
    for process in PROCESSES:
        for group in (1, 2, 3, 4):
            assert max(results[(process, d, group)] for d in RADII) > 0.45
