"""Figure 9 — precision / recall / f-value: XSDF vs RPD vs VSD.

XSDF runs at its per-group optimal configuration (concept-based process;
d = 1 for Group 1, the best of d in {2, 3} for Groups 2-4, mirroring the
paper's protocol of picking optimal parameters by repeated tests); RPD
and VSD run as published.

Expected shape (paper Section 4.3.2): XSDF wins Groups 1-3, with the
largest improvement on Group 1 (highly ambiguous + richly structured)
shrinking monotonically toward Group 4 where RPD is competitive (the
paper reports RPD slightly ahead there; in our reproduction XSDF stays
marginally ahead — see EXPERIMENTS.md).
"""

from __future__ import annotations

from conftest import print_table

from repro.evaluation import evaluate_quality, make_system_factory

#: Per-group optimal XSDF configuration (identified by the Figure 8 sweep).
OPTIMAL = {1: "xsdf-concept-d1", 2: "xsdf-concept-d2",
           3: "xsdf-concept-d2", 4: "xsdf-concept-d3"}


def _run(corpus, network, tree_cache):
    results: dict[tuple[str, int], object] = {}
    for group in (1, 2, 3, 4):
        docs = corpus.by_group(group)
        for name, factory_name in (
            ("XSDF", OPTIMAL[group]),
            ("RPD", "rpd"),
            ("VSD", "vsd"),
        ):
            system = make_system_factory(factory_name, network)()
            results[(name, group)] = evaluate_quality(
                system, docs, network, tree_cache
            )
    return results


def test_figure9_comparative_quality(benchmark, corpus, network, tree_cache):
    """Regenerate Figure 9's P/R/F bars and assert who wins where."""
    results = benchmark.pedantic(
        _run, args=(corpus, network, tree_cache), rounds=1, iterations=1
    )
    rows = []
    for group in (1, 2, 3, 4):
        for name in ("XSDF", "RPD", "VSD"):
            prf = results[(name, group)].prf
            rows.append(
                [f"Group {group}", name, f"{prf.precision:.3f}",
                 f"{prf.recall:.3f}", f"{prf.f_value:.3f}"]
            )
    print_table(
        "Figure 9: XSDF vs RPD vs VSD",
        ["group", "system", "P", "R", "F"],
        rows,
    )

    def f(name, group):
        return results[(name, group)].prf.f_value

    # XSDF wins groups 1-3 against both published baselines.
    for group in (1, 2, 3):
        assert f("XSDF", group) > f("RPD", group)
        assert f("XSDF", group) > f("VSD", group)
    # The improvement is largest on Group 1 and shrinks toward Group 4.
    def improvement(group):
        best_baseline = max(f("RPD", group), f("VSD", group))
        return f("XSDF", group) / best_baseline - 1.0
    assert improvement(1) > improvement(2) > improvement(4)
    assert improvement(3) > improvement(4)
    # Group 4: RPD is competitive (within 10% of XSDF).
    assert abs(f("XSDF", 4) - f("RPD", 4)) < 0.1 * f("XSDF", 4)
