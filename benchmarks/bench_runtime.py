"""Runtime throughput: the index/cache fast path and the batch executor.

Four workloads over the generated collection:

* **repeated documents** — the same documents disambiguated many times,
  the traffic shape of a schema-matching loop.  Baseline is the seed
  behavior (a fresh ``XSDF`` per document, nothing shared); the runtime
  serves repeats from its caches and must be at least 2x faster.
* **packed vs dict** — one serial pass over distinct documents with the
  flat-array :class:`PackedIndex` kernels vs the dict-backed
  ``SemanticIndex``, index build excluded from the timed region.  The
  packed kernels must be bit-identical and at least 1.3x faster.
* **unique documents** — three disjoint document sets with the same
  dataset mix through a serial executor and a ``workers=2`` persistent
  pool: the first set is the *cold* batch (pool spawn + shared-memory
  publish inside the timed region), the other two are *steady-state*
  probes on the warm pool.  Output must stay byte-identical to serial,
  the warm pool must be strictly faster than the cold batch, and the
  speedup gate is ≥1.8x (≥1.4x smoke) on multi-core hosts or the
  ≥0.98x serial floor where the anti-oversubscription clamp routes
  ``workers=2`` serially (1-CPU hosts).
* **prune + memo** — the repeated-structure corpus (the ``shakespeare``
  dataset in structure-only mode, where thousands of nodes across
  documents present the identical disambiguation situation) with exact
  sense-pruning and the cross-document sphere memo on vs both off.
  Output must stay byte-identical; the default pipeline must be at
  least 1.5x faster (1.3x under smoke).

Results land in ``BENCH_runtime.json`` at the repo root.  Set
``REPRO_BENCH_SMOKE=1`` to shrink the workloads for CI.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from conftest import print_table

from repro.core import XSDF, XSDFConfig
from repro.runtime import BatchExecutor, MetricsRegistry, auto_workers

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
N_DOCS = 4 if SMOKE else 10          # distinct documents per workload
REPEATS = 3 if SMOKE else 8          # copies of each in the repeated load
_GATE_REPS_MIN = 3                   # parallel gate: sample floor ...
_GATE_REPS_MAX = 10                  # ... and noise-retry ceiling
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

_RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def _write_results():
    """Collect per-test numbers and write BENCH_runtime.json once."""
    yield
    if _RESULTS:
        payload = {"cpu_count": os.cpu_count(), "smoke": SMOKE, **_RESULTS}
        RESULTS_PATH.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )


def _distinct_documents(corpus, n: int):
    """One document per dataset, cycling until ``n`` are collected."""
    docs = []
    per_dataset = [corpus.by_dataset(name) for name in corpus.datasets()]
    i = 0
    while len(docs) < n:
        bucket = per_dataset[i % len(per_dataset)]
        doc = bucket[(i // len(per_dataset)) % len(bucket)]
        docs.append((f"{doc.name}#{len(docs)}", doc.xml))
        i += 1
    return docs


def test_repeated_documents_cached_speedup(benchmark, network, corpus):
    """Index + caches vs fresh-XSDF-per-document on repeated traffic."""
    config = XSDFConfig()
    base_docs = _distinct_documents(corpus, N_DOCS)
    workload = [
        (f"{name}@{r}", xml)
        for r in range(REPEATS)
        for name, xml in base_docs
    ]

    def run():
        start = time.perf_counter()
        baseline = [
            XSDF(network, config).disambiguate_document(xml).to_dict()
            for _, xml in workload
        ]
        baseline_s = time.perf_counter() - start

        metrics = MetricsRegistry()
        executor = BatchExecutor(
            network, config, workers=1, metrics=metrics
        )
        start = time.perf_counter()
        records = executor.run(workload)
        runtime_s = time.perf_counter() - start
        return baseline, records, baseline_s, runtime_s, metrics

    baseline, records, baseline_s, runtime_s, metrics = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert [r.result for r in records] == baseline  # identical senses
    speedup = baseline_s / runtime_s
    caches = metrics.report()["caches"]
    rows = [
        ["seed (fresh XSDF/doc)", f"{len(workload) / baseline_s:.2f}", "-"],
        ["runtime (index+caches)", f"{len(workload) / runtime_s:.2f}",
         f"x{speedup:.1f}"],
    ]
    print_table(
        f"Runtime: {len(workload)} docs ({N_DOCS} distinct x {REPEATS})",
        ["pipeline", "docs/s", "speedup"],
        rows,
    )
    _RESULTS["repeated_documents"] = {
        "n_documents": len(workload),
        "n_distinct": N_DOCS,
        "baseline_docs_per_s": round(len(workload) / baseline_s, 3),
        "runtime_docs_per_s": round(len(workload) / runtime_s, 3),
        "speedup": round(speedup, 2),
        "cache_hit_rates": {
            name: stats["hit_rate"] for name, stats in caches.items()
        },
    }
    assert speedup >= 2.0, f"cached runtime only x{speedup:.2f}"


def test_packed_vs_dict_single_core(benchmark, network, corpus):
    """Flat-array packed kernels vs dict-index kernels, ``workers=1``.

    Both executors build their index outside the timed region so the
    comparison isolates kernel throughput — in real use the build is
    amortised over a whole batch, and the parallel path ships the
    parent-built index to workers instead of rebuilding it.
    """
    config = XSDFConfig()
    docs = _distinct_documents(corpus, N_DOCS)

    def run():
        timings = {}
        outputs = {}
        for packed in (False, True):
            executor = BatchExecutor(
                network, config, workers=1, packed=packed
            )
            executor._ensure_index()  # build outside the timed region
            start = time.perf_counter()
            records = executor.run(docs)
            timings[packed] = time.perf_counter() - start
            outputs[packed] = [r.to_json_line() for r in records]
        return timings, outputs

    timings, outputs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outputs[False] == outputs[True]  # bit-identical kernels
    speedup = timings[False] / timings[True]
    rows = [
        ["dict (SemanticIndex)", f"{len(docs) / timings[False]:.2f}", "-"],
        ["packed (PackedIndex)", f"{len(docs) / timings[True]:.2f}",
         f"x{speedup:.1f}"],
    ]
    print_table(
        f"Runtime: packed vs dict kernels over {len(docs)} docs",
        ["index", "docs/s", "speedup"],
        rows,
    )
    _RESULTS["packed_vs_dict"] = {
        "n_documents": len(docs),
        "dict_docs_per_s": round(len(docs) / timings[False], 3),
        "packed_docs_per_s": round(len(docs) / timings[True], 3),
        "speedup": round(speedup, 2),
    }
    floor = 1.15 if SMOKE else 1.3  # smoke workloads are timing-noisy
    assert speedup >= floor, f"packed kernels only x{speedup:.2f}"


def _disjoint_doc_sets(corpus, n: int, k: int):
    """``k`` disjoint document lists with the same dataset mix.

    Slot ``i`` of every set draws from the same dataset bucket, so the
    sets are timing-comparable; the documents themselves never repeat
    across sets, so the executor's doc-result cache cannot serve one
    set from another and quietly turn a throughput measurement into a
    cache measurement.
    """
    per_dataset = [corpus.by_dataset(name) for name in corpus.datasets()]
    sets: list[list[tuple[str, str]]] = [[] for _ in range(k)]
    for i in range(n):
        bucket = per_dataset[i % len(per_dataset)]
        base = (i // len(per_dataset)) * k
        for j, docs in enumerate(sets):
            doc = bucket[(base + j) % len(bucket)]
            docs.append((f"{doc.name}#{j}.{i}", doc.xml))
    return sets


def test_parallel_batch_throughput(benchmark, network, corpus):
    """Serial vs persistent-pool executor: spin-up and steady state.

    Three disjoint document sets with the same dataset mix: the first
    is the *warm-up/cold* batch, the other two are *steady* probes.
    The gated serial-vs-``workers=2`` comparison interleaves the two
    executors batch-by-batch with fresh executors per repetition
    (shared prebuilt index, so only document work is timed) and takes
    the minimum steady-batch time on each side — on this corpus a
    single 4-doc batch jitters by 30%+ under scheduler noise, and a
    min-of-many estimator is what makes a 0.98x floor between two
    same-code serial runs enforceable.  Sampling is adaptive: at least
    ``_GATE_REPS_MIN`` repetitions, continuing up to ``_GATE_REPS_MAX``
    while the gate is still below its floor (a real regression keeps
    failing; a noise burst gets outvoted by more samples).

    The real pool's spin-up cost is measured in a separate
    ``oversubscribe=True`` pass (cold batch pays pool spawn + shm
    publish inside its timed region; the probes run on the warm pool)
    so the recorded pool/shm figures stay honest even on 1-CPU hosts
    where the default executor's anti-oversubscription clamp routes
    ``workers=2`` serially.
    """
    config = XSDFConfig()
    cold_docs, probe_a, probe_b = _disjoint_doc_sets(corpus, N_DOCS, 3)

    def timed_batches(executor):
        timings = []
        outputs = []
        for batch in (cold_docs, probe_a, probe_b):
            start = time.perf_counter()
            records = executor.run(batch)
            timings.append(time.perf_counter() - start)
            outputs.append([r.to_json_line() for r in records])
        return timings, outputs

    gate_floor = (1.4 if SMOKE else 1.8) if auto_workers() >= 2 else 0.98

    def run():
        prototype = BatchExecutor(network, config, workers=1)
        prototype._ensure_index()  # one build, shared by every executor

        def fresh(workers, **kwargs):
            executor = BatchExecutor(network, config, workers=workers,
                                     **kwargs)
            executor._index = prototype._index
            return executor

        effective = fresh(2).effective_workers
        outputs = []
        serial_steady, serial_total = [], []
        parallel_steady, parallel_total = [], []
        for rep in range(_GATE_REPS_MAX):
            serial = fresh(1)
            parallel = fresh(2)
            st, pt = [], []
            so, po = [], []
            # Interleave batch-by-batch so a host load burst hits both
            # executors instead of silently skewing one side, and
            # alternate which side runs first per rep — the second
            # runner of a pair is measurably (~2-3%) slower on this
            # interpreter, which would otherwise bias the gate.
            for batch in (cold_docs, probe_a, probe_b):
                legs = [(serial, st, so), (parallel, pt, po)]
                if rep % 2:
                    legs.reverse()
                for executor, timings, lines in legs:
                    start = time.perf_counter()
                    records = executor.run(batch)
                    timings.append(time.perf_counter() - start)
                    lines.append([r.to_json_line() for r in records])
            parallel.close()
            outputs.append((so, po))
            serial_steady.extend(st[1:])
            serial_total.append(sum(st))
            parallel_steady.extend(pt[1:])
            parallel_total.append(sum(pt))
            if (rep + 1 >= _GATE_REPS_MIN
                    and min(serial_steady) / min(parallel_steady)
                    >= gate_floor):
                break

        # The dedicated pool pass: on a clamped (1-CPU) host this is
        # the only place the real pool runs; on multi-core hosts
        # oversubscribe is a no-op and it simply measures spin-up.
        pool = fresh(2, oversubscribe=True)
        pool_t, pool_out = timed_batches(pool)
        pool_stats = pool.runtime_stats()
        pool.close()
        return (serial_steady, serial_total, parallel_steady,
                parallel_total, outputs, pool_t, pool_out, pool_stats,
                effective)

    (serial_steady, serial_total, parallel_steady, parallel_total,
     outputs, pool_t, pool_out, pool_stats, effective) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    clamped = effective < 2
    baseline = outputs[0][0]
    for serial_out, parallel_out in outputs:
        assert serial_out == baseline
        assert parallel_out == baseline  # byte-identical merge
    assert pool_out == baseline          # the real pool too
    # The pool genuinely persisted: batches 2 and 3 reused it warm.
    assert pool_stats["pool_reuse_count"] >= 2
    assert pool_stats["shm_bytes"] > 0
    assert pool_stats["worker_respawns"] == 0

    pool_cold_s, pool_steady_s = pool_t[0], min(pool_t[1], pool_t[2])
    n_total = 3 * N_DOCS
    reps = len(serial_total)
    speedup = min(serial_steady) / min(parallel_steady)
    total_speedup = min(serial_total) / min(parallel_total)
    spinup_dps = N_DOCS / pool_cold_s
    steady_dps = N_DOCS / pool_steady_s
    rows = [
        ["serial (workers=1)", f"{N_DOCS / min(serial_steady):.2f}", "-"],
        [f"workers=2 ({'clamped' if clamped else 'pool'})",
         f"{N_DOCS / min(parallel_steady):.2f}", f"x{speedup:.1f}"],
        ["pool spin-up (cold batch)", f"{spinup_dps:.2f}", "-"],
        ["pool steady (warm batch)", f"{steady_dps:.2f}",
         f"x{pool_cold_s / pool_steady_s:.1f} vs cold"],
    ]
    print_table(
        f"Runtime: parallel batch, 3x{N_DOCS} disjoint docs, "
        f"best of {reps} reps",
        ["executor", "steady docs/s", "speedup"],
        rows,
    )
    _RESULTS["parallel_batch"] = {
        "n_documents": n_total,
        "gate_reps": reps,
        "workers_requested": 2,
        "workers_effective": effective,
        "workers_clamped": clamped,
        "serial_docs_per_s": round(N_DOCS / min(serial_steady), 3),
        "parallel_docs_per_s": round(N_DOCS / min(parallel_steady), 3),
        "speedup": round(speedup, 2),
        "total_speedup": round(total_speedup, 2),
        "pool_oversubscribed_probe": clamped,
        "spinup_docs_per_s": round(spinup_dps, 3),
        "steady_docs_per_s": round(steady_dps, 3),
        "pool_reuse_count": pool_stats["pool_reuse_count"],
        "shm_bytes": pool_stats["shm_bytes"],
    }
    # Steady state (warm pool, best of two probes) must strictly beat
    # the cold batch that paid for pool spawn + shm publish.
    assert pool_steady_s < pool_cold_s, (
        f"warm pool ({steady_dps:.2f} docs/s) no faster than "
        f"spin-up ({spinup_dps:.2f} docs/s)"
    )
    # Multi-core hosts must show a genuine pool win; on a 1-CPU host
    # the anti-oversubscription clamp routes workers=2 through the
    # serial path, so parallel must track serial to within measurement
    # noise — the documented 0.98x floor.
    assert speedup >= gate_floor, (
        f"workers=2 only x{speedup:.2f} (floor {gate_floor})"
    )


def test_prune_memo_speedup(benchmark, network, corpus):
    """Exact pruning + sphere memo vs exhaustive on repeated structure.

    The workload is the ``shakespeare`` dataset in structure-only mode
    (``include_values=False``): every act/scene/line skeleton repeats
    across the collection, so most nodes present a disambiguation
    situation the memo has already solved in an earlier document.  Both
    executors run ``workers=1`` with the index built outside the timed
    region; the cold side disables both optimisations
    (``prune=False, memo=False``), the fast side is the default
    configuration.  Every chosen sense and reported score must stay
    bit-identical; pruning is allowed to omit provably-losing
    candidates from the per-node ``scores`` tables (that is its whole
    point), so those are checked as exact subsets.
    """
    docs = [
        (doc.name, doc.xml)
        for doc in corpus.by_dataset("shakespeare")[:N_DOCS]
    ]
    cold_config = XSDFConfig(include_values=False, prune=False, memo=False)
    fast_config = XSDFConfig(include_values=False)

    rounds = 2 if SMOKE else 3  # best-of-N: the docs are small and fast

    def run():
        timings = {}
        outputs = {}
        metrics = MetricsRegistry()
        prototype = BatchExecutor(network, cold_config, workers=1)
        prototype._ensure_index()  # build once, outside every timed region
        for label, config, registry in (
            ("cold", cold_config, None),
            ("prune+memo", fast_config, metrics),
        ):
            best = None
            for round_index in range(rounds):
                # A fresh executor per round: the memo starts cold every
                # time, so the fast side never carries state across
                # rounds — best-of-N only smooths scheduler noise.  The
                # registry joins the last round only, so its counters
                # describe exactly one pass.
                executor = BatchExecutor(
                    network, config, workers=1,
                    metrics=registry if round_index == rounds - 1 else None,
                )
                executor._index = prototype._index
                start = time.perf_counter()
                records = executor.run(docs)
                elapsed = time.perf_counter() - start
                best = elapsed if best is None or elapsed < best else best
            timings[label] = best
            outputs[label] = [r.result for r in records]
        return timings, outputs, metrics

    timings, outputs, metrics = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    for cold_doc, fast_doc in zip(outputs["cold"], outputs["prune+memo"]):
        cold_assignments = cold_doc["assignments"]
        fast_assignments = fast_doc["assignments"]
        assert len(cold_assignments) == len(fast_assignments)
        for cold_a, fast_a in zip(cold_assignments, fast_assignments):
            for field in ("chosen", "score", "concept_score",
                          "context_score", "ambiguity"):
                assert cold_a[field] == fast_a[field]  # bit-identical
            for candidate, score in fast_a["scores"].items():
                assert cold_a["scores"][candidate] == score
    speedup = timings["cold"] / timings["prune+memo"]
    report = metrics.report()
    memo_stats = report["caches"].get("sphere_memo", {})
    pruned = report["counters"].get("candidates_pruned", 0)
    rows = [
        ["cold (exhaustive)", f"{len(docs) / timings['cold']:.2f}", "-"],
        ["prune+memo (default)",
         f"{len(docs) / timings['prune+memo']:.2f}", f"x{speedup:.1f}"],
    ]
    print_table(
        f"Runtime: prune+memo over {len(docs)} repeated-structure docs",
        ["pipeline", "docs/s", "speedup"],
        rows,
    )
    _RESULTS["prune_memo"] = {
        "n_documents": len(docs),
        "cold_docs_per_s": round(len(docs) / timings["cold"], 3),
        "prune_memo_docs_per_s": round(
            len(docs) / timings["prune+memo"], 3
        ),
        "speedup": round(speedup, 2),
        "memo_hit_rate": memo_stats.get("hit_rate"),
        "candidates_pruned": int(pruned),
    }
    floor = 1.3 if SMOKE else 1.5  # smoke workloads see fewer repeats
    assert speedup >= floor, f"prune+memo only x{speedup:.2f}"


def test_lint_cold_vs_warm_incremental(benchmark, tmp_path):
    """reprolint v2: cold whole-tree lint vs warm incremental re-lint.

    The warm run (content hashes unchanged) must reuse every module
    from the analysis cache — parsing and analyzing nothing — and be
    at least 3x faster than the cold run.
    """
    from repro.devtools import AnalysisCache, LintEngine, all_rules

    root = RESULTS_PATH.parent
    targets = [root / "src" / "repro"]
    cache_path = tmp_path / "lint-cache.json"

    def run():
        cold_engine = LintEngine(all_rules(), project_root=root)
        start = time.perf_counter()
        cold = cold_engine.lint_paths(
            targets, cache=AnalysisCache(cache_path)
        )
        cold_s = time.perf_counter() - start

        warm_engine = LintEngine(all_rules(), project_root=root)
        start = time.perf_counter()
        warm = warm_engine.lint_paths(
            targets, cache=AnalysisCache(cache_path)
        )
        warm_s = time.perf_counter() - start
        return cold, warm, cold_s, warm_s, cold_engine, warm_engine

    cold, warm, cold_s, warm_s, cold_engine, warm_engine = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    files = cold_engine.last_run.files
    assert warm == cold                          # identical findings
    assert warm_engine.last_run.analyzed == []   # nothing re-analyzed
    assert warm_engine.last_run.reused == files  # everything from cache
    speedup = cold_s / warm_s
    rows = [
        ["cold (full analysis)", f"{files / cold_s:.1f}", "-"],
        ["warm (hash + cache)", f"{files / warm_s:.1f}",
         f"x{speedup:.1f}"],
    ]
    print_table(
        f"Lint: {files} modules, cold vs warm incremental",
        ["run", "files/s", "speedup"],
        rows,
    )
    _RESULTS["lint_runtime"] = {
        "n_files": files,
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "cold_files_per_s": round(files / cold_s, 1),
        "warm_files_per_s": round(files / warm_s, 1),
        "speedup": round(speedup, 2),
        "warm_analyzed": len(warm_engine.last_run.analyzed),
        "warm_reused": warm_engine.last_run.reused,
    }
    assert speedup >= 3.0, f"warm lint only x{speedup:.2f}"
