"""Runtime throughput: the index/cache fast path and the batch executor.

Four workloads over the generated collection:

* **repeated documents** — the same documents disambiguated many times,
  the traffic shape of a schema-matching loop.  Baseline is the seed
  behavior (a fresh ``XSDF`` per document, nothing shared); the runtime
  serves repeats from its caches and must be at least 2x faster.
* **packed vs dict** — one serial pass over distinct documents with the
  flat-array :class:`PackedIndex` kernels vs the dict-backed
  ``SemanticIndex``, index build excluded from the timed region.  The
  packed kernels must be bit-identical and at least 1.3x faster.
* **unique documents** — three disjoint document sets with the same
  dataset mix through a serial executor and a ``workers=2`` persistent
  pool: the first set is the *cold* batch (pool spawn + shared-memory
  publish inside the timed region), the other two are *steady-state*
  probes on the warm pool.  Output must stay byte-identical to serial,
  the warm pool must be strictly faster than the cold batch, and the
  speedup gate is ≥1.8x (≥1.4x smoke) on multi-core hosts or the
  ≥0.98x serial floor where the anti-oversubscription clamp routes
  ``workers=2`` serially (1-CPU hosts).
* **prune + memo** — the repeated-structure corpus (the ``shakespeare``
  dataset in structure-only mode, where thousands of nodes across
  documents present the identical disambiguation situation) with exact
  sense-pruning and the cross-document sphere memo on vs both off.
  Output must stay byte-identical; the default pipeline must be at
  least 1.5x faster (1.3x under smoke).
* **mmap store** — the on-disk ``RXPD`` shard path: cold attach via
  ``PackedIndex.from_mmap`` must be at least 20x faster than decoding
  the equivalent ``RXPK`` payload at 100k concepts (the whole point of
  the format: attach is O(section count), decode is O(bytes)); a second
  process attaching the same shard must grow its *private* memory by
  only a small fraction of the shard size (the mapped pages are shared
  through the OS page cache with every other attacher); and batch
  output over mmap-, heap-packed-, and dict-backed indexes must stay
  byte-identical.

Results land in ``BENCH_runtime.json`` at the repo root.  Set
``REPRO_BENCH_SMOKE=1`` to shrink the workloads for CI.  The 100k
store fixture is cached under ``benchmarks/_cache/`` (gitignored) and
regenerated automatically when its recorded parameters or network
fingerprint drift from the current code.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from conftest import print_table

from repro.core import XSDF, XSDFConfig
from repro.runtime import BatchExecutor, MetricsRegistry, auto_workers

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
N_DOCS = 4 if SMOKE else 10          # distinct documents per workload
REPEATS = 3 if SMOKE else 8          # copies of each in the repeated load
_GATE_REPS_MIN = 3                   # parallel gate: sample floor ...
_GATE_REPS_MAX = 10                  # ... and noise-retry ceiling
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

_RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def _write_results():
    """Collect per-test numbers and write BENCH_runtime.json once."""
    yield
    if _RESULTS:
        payload = {"cpu_count": os.cpu_count(), "smoke": SMOKE, **_RESULTS}
        RESULTS_PATH.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )


def _distinct_documents(corpus, n: int):
    """One document per dataset, cycling until ``n`` are collected."""
    docs = []
    per_dataset = [corpus.by_dataset(name) for name in corpus.datasets()]
    i = 0
    while len(docs) < n:
        bucket = per_dataset[i % len(per_dataset)]
        doc = bucket[(i // len(per_dataset)) % len(bucket)]
        docs.append((f"{doc.name}#{len(docs)}", doc.xml))
        i += 1
    return docs


def test_repeated_documents_cached_speedup(benchmark, network, corpus):
    """Index + caches vs fresh-XSDF-per-document on repeated traffic."""
    config = XSDFConfig()
    base_docs = _distinct_documents(corpus, N_DOCS)
    workload = [
        (f"{name}@{r}", xml)
        for r in range(REPEATS)
        for name, xml in base_docs
    ]

    def run():
        start = time.perf_counter()
        baseline = [
            XSDF(network, config).disambiguate_document(xml).to_dict()
            for _, xml in workload
        ]
        baseline_s = time.perf_counter() - start

        metrics = MetricsRegistry()
        executor = BatchExecutor(
            network, config, workers=1, metrics=metrics
        )
        start = time.perf_counter()
        records = executor.run(workload)
        runtime_s = time.perf_counter() - start
        return baseline, records, baseline_s, runtime_s, metrics

    baseline, records, baseline_s, runtime_s, metrics = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert [r.result for r in records] == baseline  # identical senses
    speedup = baseline_s / runtime_s
    caches = metrics.report()["caches"]
    rows = [
        ["seed (fresh XSDF/doc)", f"{len(workload) / baseline_s:.2f}", "-"],
        ["runtime (index+caches)", f"{len(workload) / runtime_s:.2f}",
         f"x{speedup:.1f}"],
    ]
    print_table(
        f"Runtime: {len(workload)} docs ({N_DOCS} distinct x {REPEATS})",
        ["pipeline", "docs/s", "speedup"],
        rows,
    )
    _RESULTS["repeated_documents"] = {
        "n_documents": len(workload),
        "n_distinct": N_DOCS,
        "baseline_docs_per_s": round(len(workload) / baseline_s, 3),
        "runtime_docs_per_s": round(len(workload) / runtime_s, 3),
        "speedup": round(speedup, 2),
        "cache_hit_rates": {
            name: stats["hit_rate"] for name, stats in caches.items()
        },
    }
    assert speedup >= 2.0, f"cached runtime only x{speedup:.2f}"


def test_packed_vs_dict_single_core(benchmark, network, corpus):
    """Flat-array packed kernels vs dict-index kernels, ``workers=1``.

    Both executors build their index outside the timed region so the
    comparison isolates kernel throughput — in real use the build is
    amortised over a whole batch, and the parallel path ships the
    parent-built index to workers instead of rebuilding it.
    """
    config = XSDFConfig()
    docs = _distinct_documents(corpus, N_DOCS)

    def run():
        timings = {}
        outputs = {}
        for packed in (False, True):
            executor = BatchExecutor(
                network, config, workers=1, packed=packed
            )
            executor._ensure_index()  # build outside the timed region
            start = time.perf_counter()
            records = executor.run(docs)
            timings[packed] = time.perf_counter() - start
            outputs[packed] = [r.to_json_line() for r in records]
        return timings, outputs

    timings, outputs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outputs[False] == outputs[True]  # bit-identical kernels
    speedup = timings[False] / timings[True]
    rows = [
        ["dict (SemanticIndex)", f"{len(docs) / timings[False]:.2f}", "-"],
        ["packed (PackedIndex)", f"{len(docs) / timings[True]:.2f}",
         f"x{speedup:.1f}"],
    ]
    print_table(
        f"Runtime: packed vs dict kernels over {len(docs)} docs",
        ["index", "docs/s", "speedup"],
        rows,
    )
    _RESULTS["packed_vs_dict"] = {
        "n_documents": len(docs),
        "dict_docs_per_s": round(len(docs) / timings[False], 3),
        "packed_docs_per_s": round(len(docs) / timings[True], 3),
        "speedup": round(speedup, 2),
    }
    floor = 1.15 if SMOKE else 1.3  # smoke workloads are timing-noisy
    assert speedup >= floor, f"packed kernels only x{speedup:.2f}"


def _disjoint_doc_sets(corpus, n: int, k: int):
    """``k`` disjoint document lists with the same dataset mix.

    Slot ``i`` of every set draws from the same dataset bucket, so the
    sets are timing-comparable; the documents themselves never repeat
    across sets, so the executor's doc-result cache cannot serve one
    set from another and quietly turn a throughput measurement into a
    cache measurement.
    """
    per_dataset = [corpus.by_dataset(name) for name in corpus.datasets()]
    sets: list[list[tuple[str, str]]] = [[] for _ in range(k)]
    for i in range(n):
        bucket = per_dataset[i % len(per_dataset)]
        base = (i // len(per_dataset)) * k
        for j, docs in enumerate(sets):
            doc = bucket[(base + j) % len(bucket)]
            docs.append((f"{doc.name}#{j}.{i}", doc.xml))
    return sets


def test_parallel_batch_throughput(benchmark, network, corpus):
    """Serial vs persistent-pool executor: spin-up and steady state.

    Three disjoint document sets with the same dataset mix: the first
    is the *warm-up/cold* batch, the other two are *steady* probes.
    The gated serial-vs-``workers=2`` comparison interleaves the two
    executors batch-by-batch with fresh executors per repetition
    (shared prebuilt index, so only document work is timed) and takes
    the minimum steady-batch time on each side — on this corpus a
    single 4-doc batch jitters by 30%+ under scheduler noise, and a
    min-of-many estimator is what makes a 0.98x floor between two
    same-code serial runs enforceable.  Sampling is adaptive: at least
    ``_GATE_REPS_MIN`` repetitions, continuing up to ``_GATE_REPS_MAX``
    while the gate is still below its floor (a real regression keeps
    failing; a noise burst gets outvoted by more samples).

    The real pool's spin-up cost is measured in a separate
    ``oversubscribe=True`` pass (cold batch pays pool spawn + shm
    publish inside its timed region; the probes run on the warm pool)
    so the recorded pool/shm figures stay honest even on 1-CPU hosts
    where the default executor's anti-oversubscription clamp routes
    ``workers=2`` serially.
    """
    config = XSDFConfig()
    cold_docs, probe_a, probe_b = _disjoint_doc_sets(corpus, N_DOCS, 3)

    def timed_batches(executor):
        timings = []
        outputs = []
        for batch in (cold_docs, probe_a, probe_b):
            start = time.perf_counter()
            records = executor.run(batch)
            timings.append(time.perf_counter() - start)
            outputs.append([r.to_json_line() for r in records])
        return timings, outputs

    gate_floor = (1.4 if SMOKE else 1.8) if auto_workers() >= 2 else 0.98

    def run():
        prototype = BatchExecutor(network, config, workers=1)
        prototype._ensure_index()  # one build, shared by every executor

        def fresh(workers, **kwargs):
            executor = BatchExecutor(network, config, workers=workers,
                                     **kwargs)
            executor._index = prototype._index
            return executor

        effective = fresh(2).effective_workers
        outputs = []
        serial_steady, serial_total = [], []
        parallel_steady, parallel_total = [], []
        for rep in range(_GATE_REPS_MAX):
            serial = fresh(1)
            parallel = fresh(2)
            st, pt = [], []
            so, po = [], []
            # Interleave batch-by-batch so a host load burst hits both
            # executors instead of silently skewing one side, and
            # alternate which side runs first per rep — the second
            # runner of a pair is measurably (~2-3%) slower on this
            # interpreter, which would otherwise bias the gate.
            for batch in (cold_docs, probe_a, probe_b):
                legs = [(serial, st, so), (parallel, pt, po)]
                if rep % 2:
                    legs.reverse()
                for executor, timings, lines in legs:
                    start = time.perf_counter()
                    records = executor.run(batch)
                    timings.append(time.perf_counter() - start)
                    lines.append([r.to_json_line() for r in records])
            parallel.close()
            outputs.append((so, po))
            serial_steady.extend(st[1:])
            serial_total.append(sum(st))
            parallel_steady.extend(pt[1:])
            parallel_total.append(sum(pt))
            if (rep + 1 >= _GATE_REPS_MIN
                    and min(serial_steady) / min(parallel_steady)
                    >= gate_floor):
                break

        # The dedicated pool pass: on a clamped (1-CPU) host this is
        # the only place the real pool runs; on multi-core hosts
        # oversubscribe is a no-op and it simply measures spin-up.
        pool = fresh(2, oversubscribe=True)
        pool_t, pool_out = timed_batches(pool)
        pool_stats = pool.runtime_stats()
        pool.close()
        return (serial_steady, serial_total, parallel_steady,
                parallel_total, outputs, pool_t, pool_out, pool_stats,
                effective)

    (serial_steady, serial_total, parallel_steady, parallel_total,
     outputs, pool_t, pool_out, pool_stats, effective) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    clamped = effective < 2
    baseline = outputs[0][0]
    for serial_out, parallel_out in outputs:
        assert serial_out == baseline
        assert parallel_out == baseline  # byte-identical merge
    assert pool_out == baseline          # the real pool too
    # The pool genuinely persisted: batches 2 and 3 reused it warm.
    assert pool_stats["pool_reuse_count"] >= 2
    assert pool_stats["shm_bytes"] > 0
    assert pool_stats["worker_respawns"] == 0

    pool_cold_s, pool_steady_s = pool_t[0], min(pool_t[1], pool_t[2])
    n_total = 3 * N_DOCS
    reps = len(serial_total)
    speedup = min(serial_steady) / min(parallel_steady)
    total_speedup = min(serial_total) / min(parallel_total)
    spinup_dps = N_DOCS / pool_cold_s
    steady_dps = N_DOCS / pool_steady_s
    rows = [
        ["serial (workers=1)", f"{N_DOCS / min(serial_steady):.2f}", "-"],
        [f"workers=2 ({'clamped' if clamped else 'pool'})",
         f"{N_DOCS / min(parallel_steady):.2f}", f"x{speedup:.1f}"],
        ["pool spin-up (cold batch)", f"{spinup_dps:.2f}", "-"],
        ["pool steady (warm batch)", f"{steady_dps:.2f}",
         f"x{pool_cold_s / pool_steady_s:.1f} vs cold"],
    ]
    print_table(
        f"Runtime: parallel batch, 3x{N_DOCS} disjoint docs, "
        f"best of {reps} reps",
        ["executor", "steady docs/s", "speedup"],
        rows,
    )
    _RESULTS["parallel_batch"] = {
        "n_documents": n_total,
        "gate_reps": reps,
        "workers_requested": 2,
        "workers_effective": effective,
        "workers_clamped": clamped,
        "serial_docs_per_s": round(N_DOCS / min(serial_steady), 3),
        "parallel_docs_per_s": round(N_DOCS / min(parallel_steady), 3),
        "speedup": round(speedup, 2),
        "total_speedup": round(total_speedup, 2),
        "pool_oversubscribed_probe": clamped,
        "spinup_docs_per_s": round(spinup_dps, 3),
        "steady_docs_per_s": round(steady_dps, 3),
        "pool_reuse_count": pool_stats["pool_reuse_count"],
        "shm_bytes": pool_stats["shm_bytes"],
    }
    # Steady state (warm pool, best of two probes) must strictly beat
    # the cold batch that paid for pool spawn + shm publish.
    assert pool_steady_s < pool_cold_s, (
        f"warm pool ({steady_dps:.2f} docs/s) no faster than "
        f"spin-up ({spinup_dps:.2f} docs/s)"
    )
    # Multi-core hosts must show a genuine pool win; on a 1-CPU host
    # the anti-oversubscription clamp routes workers=2 through the
    # serial path, so parallel must track serial to within measurement
    # noise — the documented 0.98x floor.
    assert speedup >= gate_floor, (
        f"workers=2 only x{speedup:.2f} (floor {gate_floor})"
    )


def test_prune_memo_speedup(benchmark, network, corpus):
    """Exact pruning + sphere memo vs exhaustive on repeated structure.

    The workload is the ``shakespeare`` dataset in structure-only mode
    (``include_values=False``): every act/scene/line skeleton repeats
    across the collection, so most nodes present a disambiguation
    situation the memo has already solved in an earlier document.  Both
    executors run ``workers=1`` with the index built outside the timed
    region; the cold side disables both optimisations
    (``prune=False, memo=False``), the fast side is the default
    configuration.  Every chosen sense and reported score must stay
    bit-identical; pruning is allowed to omit provably-losing
    candidates from the per-node ``scores`` tables (that is its whole
    point), so those are checked as exact subsets.
    """
    docs = [
        (doc.name, doc.xml)
        for doc in corpus.by_dataset("shakespeare")[:N_DOCS]
    ]
    cold_config = XSDFConfig(include_values=False, prune=False, memo=False)
    fast_config = XSDFConfig(include_values=False)

    rounds = 2 if SMOKE else 3  # best-of-N: the docs are small and fast

    def run():
        timings = {}
        outputs = {}
        metrics = MetricsRegistry()
        prototype = BatchExecutor(network, cold_config, workers=1)
        prototype._ensure_index()  # build once, outside every timed region
        for label, config, registry in (
            ("cold", cold_config, None),
            ("prune+memo", fast_config, metrics),
        ):
            best = None
            for round_index in range(rounds):
                # A fresh executor per round: the memo starts cold every
                # time, so the fast side never carries state across
                # rounds — best-of-N only smooths scheduler noise.  The
                # registry joins the last round only, so its counters
                # describe exactly one pass.
                executor = BatchExecutor(
                    network, config, workers=1,
                    metrics=registry if round_index == rounds - 1 else None,
                )
                executor._index = prototype._index
                start = time.perf_counter()
                records = executor.run(docs)
                elapsed = time.perf_counter() - start
                best = elapsed if best is None or elapsed < best else best
            timings[label] = best
            outputs[label] = [r.result for r in records]
        return timings, outputs, metrics

    timings, outputs, metrics = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    for cold_doc, fast_doc in zip(outputs["cold"], outputs["prune+memo"]):
        cold_assignments = cold_doc["assignments"]
        fast_assignments = fast_doc["assignments"]
        assert len(cold_assignments) == len(fast_assignments)
        for cold_a, fast_a in zip(cold_assignments, fast_assignments):
            for field in ("chosen", "score", "concept_score",
                          "context_score", "ambiguity"):
                assert cold_a[field] == fast_a[field]  # bit-identical
            for candidate, score in fast_a["scores"].items():
                assert cold_a["scores"][candidate] == score
    speedup = timings["cold"] / timings["prune+memo"]
    report = metrics.report()
    memo_stats = report["caches"].get("sphere_memo", {})
    pruned = report["counters"].get("candidates_pruned", 0)
    rows = [
        ["cold (exhaustive)", f"{len(docs) / timings['cold']:.2f}", "-"],
        ["prune+memo (default)",
         f"{len(docs) / timings['prune+memo']:.2f}", f"x{speedup:.1f}"],
    ]
    print_table(
        f"Runtime: prune+memo over {len(docs)} repeated-structure docs",
        ["pipeline", "docs/s", "speedup"],
        rows,
    )
    _RESULTS["prune_memo"] = {
        "n_documents": len(docs),
        "cold_docs_per_s": round(len(docs) / timings["cold"], 3),
        "prune_memo_docs_per_s": round(
            len(docs) / timings["prune+memo"], 3
        ),
        "speedup": round(speedup, 2),
        "memo_hit_rate": memo_stats.get("hit_rate"),
        "candidates_pruned": int(pruned),
    }
    floor = 1.3 if SMOKE else 1.5  # smoke workloads see fewer repeats
    assert speedup >= floor, f"prune+memo only x{speedup:.2f}"


def test_lint_cold_vs_warm_incremental(benchmark, tmp_path):
    """reprolint v2: cold whole-tree lint vs warm incremental re-lint.

    The warm run (content hashes unchanged) must reuse every module
    from the analysis cache — parsing and analyzing nothing — and be
    at least 3x faster than the cold run.
    """
    from repro.devtools import AnalysisCache, LintEngine, all_rules

    root = RESULTS_PATH.parent
    targets = [root / "src" / "repro"]
    cache_path = tmp_path / "lint-cache.json"

    def run():
        cold_engine = LintEngine(all_rules(), project_root=root)
        start = time.perf_counter()
        cold = cold_engine.lint_paths(
            targets, cache=AnalysisCache(cache_path)
        )
        cold_s = time.perf_counter() - start

        warm_engine = LintEngine(all_rules(), project_root=root)
        start = time.perf_counter()
        warm = warm_engine.lint_paths(
            targets, cache=AnalysisCache(cache_path)
        )
        warm_s = time.perf_counter() - start
        return cold, warm, cold_s, warm_s, cold_engine, warm_engine

    cold, warm, cold_s, warm_s, cold_engine, warm_engine = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    files = cold_engine.last_run.files
    assert warm == cold                          # identical findings
    assert warm_engine.last_run.analyzed == []   # nothing re-analyzed
    assert warm_engine.last_run.reused == files  # everything from cache
    speedup = cold_s / warm_s
    rows = [
        ["cold (full analysis)", f"{files / cold_s:.1f}", "-"],
        ["warm (hash + cache)", f"{files / warm_s:.1f}",
         f"x{speedup:.1f}"],
    ]
    print_table(
        f"Lint: {files} modules, cold vs warm incremental",
        ["run", "files/s", "speedup"],
        rows,
    )
    _RESULTS["lint_runtime"] = {
        "n_files": files,
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "cold_files_per_s": round(files / cold_s, 1),
        "warm_files_per_s": round(files / warm_s, 1),
        "speedup": round(speedup, 2),
        "warm_analyzed": len(warm_engine.last_run.analyzed),
        "warm_reused": warm_engine.last_run.reused,
    }
    assert speedup >= 3.0, f"warm lint only x{speedup:.2f}"


# -- mmap store ---------------------------------------------------------------

# 100k concepts is the scale the shard format exists for; the smoke
# fixture keeps CI runs (which cache it across builds) under a minute.
STORE_CONCEPTS = 8_000 if SMOKE else 100_000
STORE_SEED = 20260808
STORE_GLOSS_STYLE = "local"  # O(1)/concept glosses: 3.4x faster generation
_CACHE_DIR = Path(__file__).resolve().parent / "_cache"


def _store_fixture() -> dict:
    """Build (or reuse) the big-network store fixture under ``_cache/``.

    Produces four files keyed by concept count — the generated network
    JSON, its ``RXPK`` packed payload, the ``RXPD`` shard, and a meta
    record of the generation parameters plus the network fingerprint.
    The cache is trusted only when the meta parameters match this
    module's constants **and** the shard header carries the recorded
    fingerprint prefix; any drift (new generator defaults, a changed
    fingerprint algorithm, a new shard version) regenerates everything,
    so a stale cache can never silently satisfy the gates.
    """
    from repro.runtime.pack import PackedIndex
    from repro.runtime.store import read_shard_header, write_shard
    from repro.semnet.generator import GeneratorConfig, generate_network
    from repro.semnet.io import load_network, save_network

    stem = f"store-{STORE_CONCEPTS // 1000}k"
    net_path = _CACHE_DIR / f"{stem}.network.json"
    rxpk_path = _CACHE_DIR / f"{stem}.rxpk"
    rxpd_path = _CACHE_DIR / f"{stem}.rxpd"
    meta_path = _CACHE_DIR / f"{stem}.meta.json"
    params = {
        "n_concepts": STORE_CONCEPTS,
        "seed": STORE_SEED,
        "gloss_style": STORE_GLOSS_STYLE,
    }

    def cache_valid() -> bool:
        if not all(
            p.exists() for p in (net_path, rxpk_path, rxpd_path, meta_path)
        ):
            return False
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            header = read_shard_header(rxpd_path)
        except (ValueError, OSError):
            return False
        return (
            meta.get("params") == params
            and header["fingerprint"] is not None
            and meta.get("fingerprint", "").startswith(header["fingerprint"])
        )

    if not cache_valid():
        _CACHE_DIR.mkdir(exist_ok=True)
        network = generate_network(GeneratorConfig(**params))
        save_network(network, net_path)
        # Reload so the fixture fingerprint is the one every consumer of
        # the JSON file sees (save -> load coerces int frequencies).
        network = load_network(net_path)
        fingerprint = network.fingerprint()
        index = PackedIndex(network)
        rxpk_path.write_bytes(index.to_bytes())
        write_shard(index, rxpd_path, fingerprint=fingerprint)
        meta_path.write_text(
            json.dumps({"params": params, "fingerprint": fingerprint})
            + "\n",
            encoding="utf-8",
        )
    else:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        fingerprint = meta["fingerprint"]
    return {
        "network_json": net_path,
        "rxpk": rxpk_path,
        "shard": rxpd_path,
        "fingerprint": fingerprint,
    }


_CHILD_RSS_SCRIPT = """\
import sys
sys.path.insert(0, sys.argv[1])
if len(sys.argv) > 2:
    from repro.runtime.pack import PackedIndex
    index = PackedIndex.from_mmap(sys.argv[2])
    assert len(index) > 0
else:
    from repro.runtime.pack import PackedIndex  # same import cost
rss = private = 0
with open("/proc/self/smaps_rollup", encoding="ascii") as fh:
    for line in fh:
        field, _, rest = line.partition(":")
        if field == "Rss":
            rss = int(rest.split()[0])
        elif field in ("Private_Clean", "Private_Dirty"):
            private += int(rest.split()[0])
print(rss, private)
"""


def _child_memory_kb(shard: "Path | None") -> tuple[int, int]:
    """(RSS, private) kB of a child attaching ``shard`` (or import-only).

    ``private`` is ``Private_Clean + Private_Dirty`` from
    ``/proc/self/smaps_rollup`` — pages charged to this child alone.
    Shard pages the child maps while another process holds the same
    mapping are *shared* page-cache pages and excluded, which is the
    point: they cost the system nothing extra per attacher.
    """
    src = str(Path(__file__).resolve().parent.parent / "src")
    argv = [sys.executable, "-c", _CHILD_RSS_SCRIPT, src]
    if shard is not None:
        argv.append(str(shard))
    out = subprocess.run(
        argv, capture_output=True, text=True, check=True
    ).stdout
    rss, private = out.split()
    return int(rss), int(private)


def test_mmap_cold_attach(benchmark):
    """``from_mmap`` attach vs ``RXPK`` decode on the 100k fixture.

    Decode is O(bytes) — every array is copied out of the payload;
    attach is O(section count) — the tables become memoryview casts
    over the mapping and the string tables stay undecoded.  The gate is
    a 20x attach advantage.  Honesty caveats recorded alongside: the
    shard is freshly written/read here, so even the "cold" attach finds
    its pages in the OS page cache (a true cold-cache attach defers the
    page-in cost to first use, it does not eliminate the advantage),
    and ``first_query_s`` reports the lazy id/string-table
    materialization the first real query pays after attach.

    The page-sharing check runs the attach in a child process while
    this process holds its own attachment to the same shard: every
    shard page the child maps is then mapped by two processes, so it
    lands in the child's *shared* smaps buckets and the child's
    **private** memory (``Private_Clean + Private_Dirty`` from
    ``smaps_rollup``, against an import-only baseline child) may grow
    by only a small fraction of the shard size.  Raw VmRSS is recorded
    too but not gated — on kernels with large-folio page cache, one
    fault maps a whole resident 2 MB folio, inflating RSS with pages
    that are nonetheless shared and evictable.  The fraction gate only
    applies above an 8 MB shard; below that, interpreter allocation
    noise (~1 MB between otherwise identical children) dominates.
    """
    from repro.runtime.pack import PackedIndex

    fixture = _store_fixture()
    shard = fixture["shard"]
    rxpk_blob = fixture["rxpk"].read_bytes()
    shard_bytes = os.path.getsize(shard)

    def run():
        decode_s = []
        for _ in range(3):
            start = time.perf_counter()
            decoded = PackedIndex.from_bytes(rxpk_blob)
            decode_s.append(time.perf_counter() - start)
        probe_id = decoded._ids[0]

        attach_s = []
        first_query_s = None
        for i in range(5):
            start = time.perf_counter()
            attached = PackedIndex.from_mmap(
                shard, expect_fingerprint=fixture["fingerprint"]
            )
            attach_s.append(time.perf_counter() - start)
            if i == 0:
                start = time.perf_counter()
                depth = attached.depth(probe_id)
                first_query_s = time.perf_counter() - start
                assert depth == decoded.depth(probe_id)
            assert len(attached) == len(decoded)
            attached.release_shared()
        return decode_s, attach_s, first_query_s, len(decoded)

    decode_s, attach_s, first_query_s, n = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    cold_attach_s, warm_attach_s = attach_s[0], min(attach_s[1:])
    speedup = min(decode_s) / cold_attach_s

    # Hold an attachment of our own while the children run so their
    # shard pages are multiply-mapped — shared, not private, in smaps.
    holder = PackedIndex.from_mmap(shard)
    try:
        baseline = [_child_memory_kb(None) for _ in range(3)]
        attached = [_child_memory_kb(shard) for _ in range(3)]
    finally:
        holder.release_shared()
    rss_delta = max(
        0, min(r for r, _ in attached) - min(r for r, _ in baseline)
    ) * 1024
    private_delta = max(
        0, min(p for _, p in attached) - min(p for _, p in baseline)
    ) * 1024
    rss_gated = shard_bytes >= 8 * 1024 * 1024

    rows = [
        ["RXPK decode", f"{min(decode_s) * 1e3:.2f}", "-"],
        ["RXPD cold attach", f"{cold_attach_s * 1e3:.2f}",
         f"x{speedup:.0f}"],
        ["RXPD warm attach", f"{warm_attach_s * 1e3:.2f}", "-"],
        ["first query (lazy tables)", f"{first_query_s * 1e3:.2f}", "-"],
    ]
    print_table(
        f"Store: {n} concepts, {shard_bytes / 1e6:.1f} MB shard",
        ["path", "ms", "vs decode"],
        rows,
    )
    _RESULTS["mmap_store"] = {
        "n_concepts": n,
        "shard_bytes": shard_bytes,
        "rxpk_bytes": len(rxpk_blob),
        "decode_s": round(min(decode_s), 6),
        "cold_attach_s": round(cold_attach_s, 6),
        "warm_attach_s": round(warm_attach_s, 6),
        "first_query_s": round(first_query_s, 6),
        "attach_speedup": round(speedup, 1),
        "attach_pages_precached": True,  # fixture freshly written/read
        "child_rss_delta_bytes": rss_delta,  # includes shared file pages
        "child_private_delta_bytes": private_delta,
        "child_private_fraction_of_shard": round(
            private_delta / shard_bytes, 4
        ),
        "child_private_gated": rss_gated,
    }
    assert speedup >= 20.0, (
        f"cold attach only x{speedup:.1f} vs decode (floor 20x)"
    )
    if rss_gated:
        assert private_delta < 0.35 * shard_bytes, (
            f"second-process attach grew private memory by "
            f"{private_delta} B ({private_delta / shard_bytes:.0%} of "
            f"the {shard_bytes} B shard)"
        )


def test_mmap_vs_packed_vs_dict_identity(benchmark, network, corpus, tmp_path):
    """Batch output over mmap, heap-packed, and dict indexes is identical.

    The resilience ladder's contract measured end to end: the same
    documents through ``BatchExecutor`` with (a) a dict
    ``SemanticIndex``, (b) a heap-built ``PackedIndex``, and (c) the
    same packed index written to a shard and re-attached via
    ``from_mmap`` must produce byte-identical JSONL.  Timings are
    recorded for honesty (mmap-backed kernels read through memoryviews
    and may trail the heap arrays slightly); only identity is gated.
    """
    from repro.runtime.pack import PackedIndex
    from repro.runtime.store import write_shard

    config = XSDFConfig()
    docs = _distinct_documents(corpus, N_DOCS)
    packed = PackedIndex(network)
    shard = tmp_path / "lexicon.rxpd"
    write_shard(packed, shard, fingerprint=network.fingerprint())

    def run():
        timings = {}
        outputs = {}
        for label, index in (
            ("dict", None),
            ("packed", packed),
            ("mmap", PackedIndex.from_mmap(shard)),
        ):
            executor = BatchExecutor(
                network, config, workers=1,
                packed=index is not None, index=index,
            )
            executor._ensure_index()
            start = time.perf_counter()
            records = executor.run(docs)
            timings[label] = time.perf_counter() - start
            outputs[label] = [r.to_json_line() for r in records]
            backing = getattr(executor.index, "backing", "heap")
            assert backing == {"dict": "heap", "packed": "heap",
                               "mmap": "mmap"}[label]
            executor.close()
        return timings, outputs

    timings, outputs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outputs["dict"] == outputs["packed"] == outputs["mmap"]
    rows = [
        [label, f"{len(docs) / timings[label]:.2f}"]
        for label in ("dict", "packed", "mmap")
    ]
    print_table(
        f"Store: 3-way identity over {len(docs)} docs",
        ["index backing", "docs/s"],
        rows,
    )
    _RESULTS.setdefault("mmap_store", {})["identity"] = {
        "n_documents": len(docs),
        "identical": True,
        "dict_docs_per_s": round(len(docs) / timings["dict"], 3),
        "packed_docs_per_s": round(len(docs) / timings["packed"], 3),
        "mmap_docs_per_s": round(len(docs) / timings["mmap"], 3),
    }
