"""Runtime throughput: the index/cache fast path and the batch executor.

Two workloads over the generated collection:

* **repeated documents** — the same documents disambiguated many times,
  the traffic shape of a schema-matching loop.  Baseline is the seed
  behavior (a fresh ``XSDF`` per document, nothing shared); the runtime
  serves repeats from its caches and must be at least 2x faster.
* **unique documents** — one pass over distinct documents, serial
  executor vs ``workers=2``.  Parallel output must stay byte-identical
  to serial; the speedup assertion only applies on multi-core hosts.

Results land in ``BENCH_runtime.json`` at the repo root.  Set
``REPRO_BENCH_SMOKE=1`` to shrink the workloads for CI.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from conftest import print_table

from repro.core import XSDF, XSDFConfig
from repro.runtime import BatchExecutor, MetricsRegistry

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
N_DOCS = 4 if SMOKE else 10          # distinct documents per workload
REPEATS = 3 if SMOKE else 8          # copies of each in the repeated load
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

_RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def _write_results():
    """Collect per-test numbers and write BENCH_runtime.json once."""
    yield
    if _RESULTS:
        payload = {"cpu_count": os.cpu_count(), "smoke": SMOKE, **_RESULTS}
        RESULTS_PATH.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )


def _distinct_documents(corpus, n: int):
    """One document per dataset, cycling until ``n`` are collected."""
    docs = []
    per_dataset = [corpus.by_dataset(name) for name in corpus.datasets()]
    i = 0
    while len(docs) < n:
        bucket = per_dataset[i % len(per_dataset)]
        doc = bucket[(i // len(per_dataset)) % len(bucket)]
        docs.append((f"{doc.name}#{len(docs)}", doc.xml))
        i += 1
    return docs


def test_repeated_documents_cached_speedup(benchmark, network, corpus):
    """Index + caches vs fresh-XSDF-per-document on repeated traffic."""
    config = XSDFConfig()
    base_docs = _distinct_documents(corpus, N_DOCS)
    workload = [
        (f"{name}@{r}", xml)
        for r in range(REPEATS)
        for name, xml in base_docs
    ]

    def run():
        start = time.perf_counter()
        baseline = [
            XSDF(network, config).disambiguate_document(xml).to_dict()
            for _, xml in workload
        ]
        baseline_s = time.perf_counter() - start

        metrics = MetricsRegistry()
        executor = BatchExecutor(
            network, config, workers=1, metrics=metrics
        )
        start = time.perf_counter()
        records = executor.run(workload)
        runtime_s = time.perf_counter() - start
        return baseline, records, baseline_s, runtime_s, metrics

    baseline, records, baseline_s, runtime_s, metrics = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert [r.result for r in records] == baseline  # identical senses
    speedup = baseline_s / runtime_s
    caches = metrics.report()["caches"]
    rows = [
        ["seed (fresh XSDF/doc)", f"{len(workload) / baseline_s:.2f}", "-"],
        ["runtime (index+caches)", f"{len(workload) / runtime_s:.2f}",
         f"x{speedup:.1f}"],
    ]
    print_table(
        f"Runtime: {len(workload)} docs ({N_DOCS} distinct x {REPEATS})",
        ["pipeline", "docs/s", "speedup"],
        rows,
    )
    _RESULTS["repeated_documents"] = {
        "n_documents": len(workload),
        "n_distinct": N_DOCS,
        "baseline_docs_per_s": round(len(workload) / baseline_s, 3),
        "runtime_docs_per_s": round(len(workload) / runtime_s, 3),
        "speedup": round(speedup, 2),
        "cache_hit_rates": {
            name: stats["hit_rate"] for name, stats in caches.items()
        },
    }
    assert speedup >= 2.0, f"cached runtime only x{speedup:.2f}"


def test_parallel_batch_throughput(benchmark, network, corpus):
    """Serial vs 2-worker executor on distinct documents."""
    config = XSDFConfig()
    docs = _distinct_documents(corpus, N_DOCS)

    def run():
        timings = {}
        outputs = {}
        for workers in (1, 2):
            executor = BatchExecutor(network, config, workers=workers)
            start = time.perf_counter()
            records = executor.run(docs)
            timings[workers] = time.perf_counter() - start
            outputs[workers] = [r.to_json_line() for r in records]
        return timings, outputs

    timings, outputs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outputs[1] == outputs[2]  # byte-identical merge
    speedup = timings[1] / timings[2]
    rows = [
        [f"workers={w}", f"{len(docs) / timings[w]:.2f}",
         f"x{timings[1] / timings[w]:.1f}"]
        for w in (1, 2)
    ]
    print_table(
        f"Runtime: parallel batch over {len(docs)} distinct docs",
        ["executor", "docs/s", "speedup"],
        rows,
    )
    _RESULTS["parallel_batch"] = {
        "n_documents": len(docs),
        "serial_docs_per_s": round(len(docs) / timings[1], 3),
        "parallel_docs_per_s": round(len(docs) / timings[2], 3),
        "speedup": round(speedup, 2),
    }
    # A single-core host serializes the pool; only assert the win where
    # the hardware can deliver one.
    if (os.cpu_count() or 1) >= 2:
        assert speedup >= 1.05, f"2 workers only x{speedup:.2f}"
