"""Statistical significance of the Figure 9 comparison (extension).

The paper reports raw P/R/F bars; this benchmark adds what a modern
evaluation would require: a paired bootstrap test of XSDF (per-group
optimal configuration) against the stronger published baseline on each
group's shared evaluation nodes.

Expected shape: the Group 1-2 wins are decisive (p < 0.05); the Group
3-4 margins are small and may not separate from sampling noise — which
is precisely the paper's "improvement shrinks toward Group 4" narrative,
now with error awareness.
"""

from __future__ import annotations

from conftest import print_table

from repro.evaluation import make_system_factory
from repro.evaluation.significance import compare_systems

OPTIMAL = {1: "xsdf-concept-d1", 2: "xsdf-concept-d2",
           3: "xsdf-concept-d2", 4: "xsdf-concept-d3"}
BASELINE = {1: "rpd", 2: "vsd", 3: "rpd", 4: "rpd"}


def test_significance_of_comparison(benchmark, corpus, network, tree_cache):
    """Paired bootstrap per group: XSDF vs the stronger baseline."""

    def run():
        results = {}
        for group in (1, 2, 3, 4):
            xsdf = make_system_factory(OPTIMAL[group], network)()
            baseline = make_system_factory(BASELINE[group], network)()
            results[group] = compare_systems(
                xsdf, baseline, corpus.by_group(group), network,
                n_resamples=1000, tree_cache=tree_cache,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for group, outcome in sorted(results.items()):
        rows.append([
            f"Group {group}",
            BASELINE[group].upper(),
            f"{outcome.accuracy_a:.3f}",
            f"{outcome.accuracy_b:.3f}",
            f"{outcome.delta:+.3f}",
            f"{outcome.p_value:.3f}",
            "yes" if outcome.significant() else "no",
        ])
    print_table(
        "Extension: paired bootstrap, XSDF vs stronger baseline",
        ["group", "baseline", "XSDF acc", "baseline acc", "delta",
         "p-value", "significant"],
        rows,
    )
    # The large-ambiguity wins separate cleanly from noise.
    assert results[1].significant()
    assert results[2].delta > 0
    # Every group's delta is non-negative (XSDF never loses here).
    for group in (1, 2, 3, 4):
        assert results[group].delta >= 0
