"""Substrate micro-benchmarks: parser, stemmer, spheres, similarity.

Not a paper table — these track the performance of the building blocks
every experiment rests on, and exercise the synthetic network generator
at sizes beyond the curated lexicon.
"""

from __future__ import annotations

import pytest

from repro.core.context_vector import concept_context_vector
from repro.core.sphere import build_sphere
from repro.datasets.stats import document_tree
from repro.linguistics import PorterStemmer
from repro.semnet import GeneratorConfig, InformationContent, generate_network
from repro.similarity import CombinedSimilarity
from repro.xmltree import parse

_WORDS = [
    "caresses", "ponies", "relational", "rational", "agreement",
    "disambiguation", "semantically", "neighborhood", "structural",
    "experimental", "generalization", "probability", "hopefulness",
]


def test_bench_parser_throughput(benchmark, corpus):
    """Parse every generated document (full collection, one pass)."""
    documents = [doc.xml for doc in corpus]

    def run():
        for xml in documents:
            parse(xml)

    benchmark(run)


def test_bench_stemmer(benchmark):
    """Stem a mixed vocabulary batch."""
    stemmer = PorterStemmer()

    def run():
        for word in _WORDS * 50:
            stemmer.stem(word)

    benchmark(run)


def test_bench_sphere_construction(benchmark, corpus, network, tree_cache):
    """Build radius-3 spheres around every node of a Group 1 document."""
    doc = corpus.by_group(1)[0]
    tree = tree_cache.setdefault(doc.name, document_tree(doc, network))

    def run():
        for node in tree:
            build_sphere(tree, node, 3)

    benchmark(run)


def test_bench_combined_similarity(benchmark, network):
    """Uncached combined similarity over a synthetic pair batch."""
    concepts = [c.id for c in network.concepts()[:60]]
    pairs = [(a, b) for a in concepts[:20] for b in concepts[40:60]]

    def run():
        similarity = CombinedSimilarity(network)  # fresh cache each round
        for a, b in pairs:
            similarity(a, b)

    benchmark(run)


@pytest.mark.parametrize("n_concepts", [500, 2000])
def test_bench_synthetic_network_spheres(benchmark, n_concepts):
    """Concept context vectors over generated networks of growing size."""
    synthetic = generate_network(GeneratorConfig(n_concepts=n_concepts, seed=11))
    sample = [c.id for c in synthetic.concepts()[:: max(1, n_concepts // 50)]]

    def run():
        for concept_id in sample:
            concept_context_vector(synthetic, concept_id, 2)

    benchmark(run)
