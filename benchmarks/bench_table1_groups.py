"""Table 1 — test groups by average node ambiguity and structure.

Paper: Group 1 = ambiguity+/structure+, Group 2 = ambiguity+/structure-,
Group 3 = ambiguity-/structure+, Group 4 = ambiguity-/structure-.

We report the measured average ``Amb_Deg`` per group (per-document
normalization, as used for target selection) and the measured
``Struct_Deg`` with collection-wide normalization (see DESIGN.md for why
corpus characterization normalizes across the collection).  Expected
shape: Groups 1-2 well above Groups 3-4 in ambiguity, Groups 1 and 3
above Groups 2 and 4 in structure.
"""

from __future__ import annotations

from conftest import print_table

from repro.datasets.stats import group_stats, group_struct_degrees

_QUADRANT = {
    1: "ambiguity+ / structure+",
    2: "ambiguity+ / structure-",
    3: "ambiguity- / structure+",
    4: "ambiguity- / structure-",
}


def _compute(corpus, network):
    amb = {g: s.amb_degree for g, s in group_stats(corpus, network).items()}
    struct = group_struct_degrees(corpus, network)
    return amb, struct


def test_table1_group_characterization(benchmark, corpus, network):
    """Regenerate Table 1 and assert the 2x2 quadrant ordering."""
    amb, struct = benchmark.pedantic(
        _compute, args=(corpus, network), rounds=1, iterations=1
    )
    rows = [
        [f"Group {g}", _QUADRANT[g], f"{amb[g]:.4f}", f"{struct[g]:.4f}"]
        for g in sorted(amb)
    ]
    print_table(
        "Table 1: group characterization",
        ["group", "paper quadrant", "Amb_Deg", "Struct_Deg"],
        rows,
    )
    # Ambiguity axis: groups 1-2 above groups 3-4.
    assert min(amb[1], amb[2]) > max(amb[3], amb[4])
    # Structure axis: groups 1 and 3 above groups 2 and 4.
    assert struct[1] > max(struct[2], struct[4])
    assert struct[3] > max(struct[2], struct[4])
