"""Table 2 — correlation between human and system ambiguity ratings.

One representative document per dataset (the paper's Doc 1..Doc 10),
rated by the simulated five-annotator panel and correlated with
``Amb_Deg`` under the paper's four weight configurations:

* Test #1 — all factors equal (w_polysemy = w_depth = w_density = 1)
* Test #2 — polysemy only
* Test #3 — depth focus (w_depth = 1, w_polysemy = 0.2)
* Test #4 — density focus (w_density = 1, w_polysemy = 0.2)

Expected shape: the Group 1 document strongly positive; Groups 3-4
documents scatter around zero with negative cells; all four tests show
comparable behaviour (no single factor dominates).
"""

from __future__ import annotations

from conftest import print_table

from repro.datasets import DATASETS
from repro.evaluation import TABLE2_TESTS, ambiguity_correlation


def _compute(corpus, network, tree_cache):
    table = {}
    for spec in DATASETS:
        document = corpus.by_dataset(spec.name)[0]
        table[spec.name] = {
            test: ambiguity_correlation(
                document, network, weights, tree_cache=tree_cache
            )
            for test, weights in TABLE2_TESTS.items()
        }
    return table


def test_table2_ambiguity_correlation(benchmark, corpus, network, tree_cache):
    """Regenerate Table 2 and assert its headline contrasts."""
    table = benchmark.pedantic(
        _compute, args=(corpus, network, tree_cache), rounds=1, iterations=1
    )
    headers = ["dataset (group)"] + [t.split(" (")[0] for t in TABLE2_TESTS]
    rows = []
    for spec in DATASETS:
        cells = table[spec.name]
        rows.append(
            [f"{spec.name} (G{spec.group})"]
            + [f"{cells[test]:+.3f}" for test in TABLE2_TESTS]
        )
    print_table("Table 2: human-vs-system ambiguity correlation", headers, rows)

    shakespeare = table["shakespeare"]
    # Group 1: strong positive correlation under every configuration.
    assert all(value > 0.3 for value in shakespeare.values())
    # Groups 3-4 contain negative or near-null cells (the paper's
    # divergence finding).
    low_group_values = [
        value
        for spec in DATASETS
        if spec.group in (3, 4)
        for value in table[spec.name].values()
    ]
    assert min(low_group_values) < 0.1
    # All factors have comparable impact: for the Group 1 document the
    # four tests stay within a small band of each other.
    values = list(shakespeare.values())
    assert max(values) - min(values) < 0.25
