"""Table 3 — characteristics of the test documents.

Per-dataset: document count, average node count, label polysemy
(avg/max), node depth, fan-out, and density — the columns of the paper's
Table 3 computed over our generated collection.

Absolute values differ from the paper (synthetic corpora, curated
lexicon); the shape that must hold: the Group 1/2 datasets carry the
highest average polysemy, the maximum polysemy column is dominated by
the 33-sense entry (*head*, in the amazon corpus), and Shakespeare has
the largest documents.
"""

from __future__ import annotations

from conftest import print_table

from repro.datasets import DATASETS, dataset_stats


def test_table3_dataset_characteristics(benchmark, corpus, network):
    """Regenerate Table 3 and check its structural landmarks."""
    stats = benchmark.pedantic(
        dataset_stats, args=(corpus, network), rounds=1, iterations=1
    )
    rows = []
    for spec in DATASETS:
        s = stats[spec.name]
        rows.append(
            [
                f"G{spec.group}",
                spec.name,
                spec.grammar,
                spec.n_docs,
                s.n_nodes,
                f"{s.avg_polysemy:.2f}",
                s.max_polysemy,
                f"{s.avg_depth:.2f}",
                s.max_depth,
                f"{s.avg_fan_out:.2f}",
                s.max_fan_out,
                f"{s.avg_density:.2f}",
                s.max_density,
            ]
        )
    print_table(
        "Table 3: dataset characteristics",
        ["grp", "dataset", "grammar", "docs", "nodes", "poly",
         "max", "depth", "max", "fan", "max", "dens", "max"],
        rows,
    )
    # Document counts follow the paper's Table 3.
    assert {spec.name: spec.n_docs for spec in DATASETS}["shakespeare"] == 10
    assert sum(spec.n_docs for spec in DATASETS) == 60
    # The 33-sense maximum-polysemy entry appears (amazon's `head` tag).
    assert stats["amazon_product"].max_polysemy == network.max_polysemy == 33
    # Shakespeare documents are the largest; high-ambiguity datasets lead
    # the average-polysemy column.
    assert stats["shakespeare"].n_nodes == max(s.n_nodes for s in stats.values())
    high = min(stats["shakespeare"].avg_polysemy,
               stats["amazon_product"].avg_polysemy)
    low = max(s.avg_polysemy for name, s in stats.items()
              if name not in ("shakespeare", "amazon_product"))
    assert high > low
