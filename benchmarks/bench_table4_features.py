"""Table 4 — qualitative feature comparison: XSDF vs RPD vs VSD.

The paper's Table 4 is a capability matrix.  This benchmark derives each
cell from the *implemented* systems (not from hand-written claims): it
exercises the corresponding code path and records whether the feature is
present, then prints the matrix and asserts it matches the published
one.
"""

from __future__ import annotations

from conftest import print_table

from repro.baselines import RootPathDisambiguator, VersatileStructuralDisambiguator
from repro.core import XSDF, XSDFConfig
from repro.core.config import DisambiguationApproach
from repro.similarity import SimilarityWeights

#: (feature, RPD, VSD, XSDF) — the published Table 4 rows.
EXPECTED = [
    ("linguistic pre-processing", True, True, True),
    ("tag tokenization (compound terms)", False, True, True),
    ("addresses XML node ambiguity", False, False, True),
    ("inclusive XML structure context", False, True, True),
    ("flexible w.r.t. context size", False, True, True),
    ("relational information approach", False, True, True),
    ("combines several similarity measures", False, False, True),
    ("disambiguates XML structure and content", False, False, True),
]


def _derive_feature_matrix(network):
    """Derive each capability from the implementations themselves."""
    rpd = RootPathDisambiguator(network)
    vsd = VersatileStructuralDisambiguator(network)
    xsdf = XSDF(network, XSDFConfig())

    def has(obj, name):
        return hasattr(obj, name)

    matrix = {
        "linguistic pre-processing": (True, True, has(xsdf, "pipeline")),
        "tag tokenization (compound terms)": (
            False,  # RPD treats labels as-is (paper Table 4)
            True,
            True,
        ),
        "addresses XML node ambiguity": (
            has(rpd, "select_targets"),
            has(vsd, "select_targets"),
            xsdf.config.ambiguity_threshold is not None,
        ),
        "inclusive XML structure context": (
            False,  # root path only
            True,   # Gaussian-decay crossable edges
            True,   # sphere neighborhood
        ),
        "flexible w.r.t. context size": (
            False,
            True,   # sigma / cutoff
            XSDFConfig(sphere_radius=3).sphere_radius == 3,
        ),
        "relational information approach": (
            False,
            vsd.decay(1) > vsd.decay(2),          # distance weighting
            True,                                  # Struct() proximity
        ),
        "combines several similarity measures": (
            False,
            False,
            SimilarityWeights(1, 1, 1).edge > 0,
        ),
        "disambiguates XML structure and content": (
            False,
            False,
            XSDFConfig(include_values=True).include_values,
        ),
    }
    return matrix


def test_table4_feature_matrix(benchmark, network):
    """Regenerate Table 4 and assert it matches the published matrix."""
    matrix = benchmark.pedantic(
        _derive_feature_matrix, args=(network,), rounds=1, iterations=1
    )

    def mark(flag):
        return "yes" if flag else "-"

    rows = [
        [feature, mark(matrix[feature][0]), mark(matrix[feature][1]),
         mark(matrix[feature][2])]
        for feature, *_ in EXPECTED
    ]
    print_table(
        "Table 4: qualitative comparison",
        ["feature", "RPD [50]", "VSD [29]", "XSDF"],
        rows,
    )
    for feature, rpd_flag, vsd_flag, xsdf_flag in EXPECTED:
        derived = matrix[feature]
        assert bool(derived[0]) == rpd_flag, feature
        assert bool(derived[1]) == vsd_flag, feature
        assert bool(derived[2]) == xsdf_flag, feature
