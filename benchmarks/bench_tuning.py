"""Benchmark (extension) — automatic parameter fine-tuning.

The paper tunes by hand ("manually identified from repeated tests with
different parameter values", Figure 9 footnote) and defers optimization
to future work.  This benchmark runs the implemented grid search per
group and checks it recovers the paper's hand-tuning conclusions — in
particular that the tuned configuration beats the untuned default.
"""

from __future__ import annotations

from conftest import print_table

from repro.core import XSDF, XSDFConfig
from repro.core.tuning import ParameterGrid, tune
from repro.evaluation import evaluate_quality

GRID = ParameterGrid(
    sphere_radius=(1, 2, 3),
    approach=("concept", "context", "combined"),
)


def test_tuning_recovers_optimal_configs(benchmark, corpus, network, tree_cache):
    """Grid-search each group; tuned must beat the untuned default."""

    def run():
        results = {}
        for group in (1, 2, 3, 4):
            docs = corpus.by_group(group)
            tuned = tune(network, docs, GRID)
            default_quality = evaluate_quality(
                XSDF(network, XSDFConfig()), docs, network, tree_cache
            )
            results[group] = (tuned.best, default_quality.prf.f_value)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for group, (best, default_f) in sorted(results.items()):
        rows.append([
            f"Group {group}",
            best.config.approach.value,
            f"d={best.config.sphere_radius}",
            f"{best.f_value:.3f}",
            f"{default_f:.3f}",
        ])
    print_table(
        "Extension: grid-search tuning per group (36-point grid)",
        ["group", "best approach", "best d", "tuned F", "default F"],
        rows,
    )
    for group, (best, default_f) in results.items():
        assert best.f_value >= default_f, group
    # The paper's hand-tuned headline: small context for Group 1 when
    # using the concept-based process.  Verify the search agrees that
    # d=1 is concept-optimal on Group 1.
    concept_trials = [
        t for t in tune(network, corpus.by_group(1), GRID).trials
        if t.config.approach.value == "concept"
    ]
    best_concept = max(concept_trials, key=lambda t: t.f_value)
    assert best_concept.config.sphere_radius == 1
