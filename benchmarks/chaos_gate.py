"""CI chaos gates: fixed-seed fault injection, zero result divergence.

Three hard gates, each exit-code enforced (run all with no arguments,
or name a subset: ``executor``, ``kill-resume``, ``bitrot-scrub``):

``executor``
    Runs the test corpus through :class:`repro.runtime.BatchExecutor`
    twice — once fault-free, once under a fixed-seed
    :class:`FaultInjector` schedule that exercises every recovery path
    (flaky-then-recover retries, a permanent fault, corrupted packed
    payloads for every worker) — and gates on the hard exactness
    contract: every surviving document byte-identical to the fault-free
    run, exactly the scheduled casualty failing (with a structured
    outcome), and the retried/degraded paths proven to have fired.  The
    faulted batch then replays on the same warm executor
    (``pool_reuse_count >= 1``) and must stay byte-identical.

``kill-resume``
    The crash-recovery contract across the real process boundary: a
    ``repro batch --journal`` run is SIGKILLed mid-batch by a seeded
    ``kill_midbatch`` fault, then re-run with ``--resume``.  The gate
    requires the kill to have actually landed (exit -9/137), the resume
    to replay a non-zero number of journaled documents (non-vacuous),
    and the resumed output file to be **byte-identical** to an
    uninterrupted reference run.

``bitrot-scrub``
    The self-healing contract on a live daemon: ``repro serve`` attaches
    an RXPD shard with a fast scrub cadence, a seeded ``bitrot`` fault
    flips one body byte on disk, and the gate requires the scrubber to
    detect + quarantine the shard (``*.quarantined`` on disk), the
    server to fail over to a heap backing with **zero failed requests**
    while hammered throughout, ``/healthz`` to report ``degraded``, and
    SIGTERM to still drain to exit 0.

Exit code 0 on success, 1 with a divergence report otherwise.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time

from repro import XSDFConfig
from repro.datasets import generate_test_corpus
from repro.runtime import BatchExecutor, FaultInjector, FaultSpec, MetricsRegistry
from repro.semnet.lexicon import default_lexicon

#: Fixed chaos seed — the schedule (and therefore the gate) is fully
#: deterministic; bump only together with the expectations below.
CHAOS_SEED = 42

XML = "<library><book><title>bank</title></book></library>"


def gate_executor() -> list[str]:
    """In-process executor chaos: survivors byte-identical, warm pool too."""
    lexicon = default_lexicon()
    corpus = generate_test_corpus()
    docs = []
    for dataset in corpus.datasets():
        docs.append(corpus.by_dataset(dataset)[0])
        if len(docs) == 8:
            break
    batch = [(d.name, d.xml) for d in docs]
    names = [name for name, _ in batch]
    flaky_name, permanent_name = names[1], names[4]

    baseline = {
        r.name: r.to_json_line()
        for r in BatchExecutor(lexicon, XSDFConfig(), workers=1).run(batch)
    }

    metrics = MetricsRegistry()
    executor = BatchExecutor(
        lexicon,
        XSDFConfig(),
        workers=2,
        backoff_base=0.0,
        metrics=metrics,
        oversubscribe=True,  # the gate must exercise the real pool
        injector=FaultInjector(CHAOS_SEED, [
            FaultSpec.flaky(match=flaky_name, fail_attempts=1),
            FaultSpec.raising(match=permanent_name, transient=False),
            FaultSpec.corrupt_packed(),
        ]),
    )
    records = executor.run(batch)
    # Round 2, same executor: the chaos schedule replays identically on
    # the warm persistent pool (the injector is stateless, so the same
    # faults fire), covering the steady state the server actually runs.
    warm_records = executor.run(batch)
    runtime_stats = executor.runtime_stats()
    executor.close()

    problems: list[str] = []
    if [r.name for r in records] != names:
        problems.append("records came back out of input order")
    for record in records:
        if record.name == permanent_name:
            if record.ok:
                problems.append(
                    f"{record.name}: scheduled permanent fault did not fire"
                )
            elif record.outcome is None or record.outcome.stage != "inject":
                problems.append(
                    f"{record.name}: casualty lacks a structured outcome"
                )
            continue
        if not record.ok:
            problems.append(f"{record.name}: unexpected failure {record.error}")
        elif record.to_json_line() != baseline[record.name]:
            problems.append(
                f"{record.name}: DIVERGED from the fault-free run"
            )

    # Warm round: the same schedule on the same (now warm) pool.  The
    # injector fires before the doc cache, so the permanent casualty
    # must fail again, and every survivor must still match baseline.
    for record in warm_records:
        if record.name == permanent_name:
            if record.ok:
                problems.append(
                    f"{record.name}: permanent fault missed the warm pool"
                )
            continue
        if not record.ok:
            problems.append(
                f"{record.name}: unexpected warm-pool failure {record.error}"
            )
        elif record.to_json_line() != baseline[record.name]:
            problems.append(f"{record.name}: DIVERGED on the warm pool")
    if runtime_stats.get("pool_reuse_count", 0) < 1:
        problems.append("second batch did not reuse the warm pool")

    counters = metrics.report()["counters"]
    if not counters.get("outcome_retried"):
        problems.append("flaky-then-recover path never fired")
    if not counters.get("degrade_packed_decode"):
        problems.append("corrupt-packed degradation never fired")

    if not problems:
        survivors = sum(1 for r in records if r.ok)
        print(
            f"executor gate passed (seed {CHAOS_SEED}): "
            f"{survivors}/{len(batch)} survivors bit-identical, "
            f"{int(counters['retries'])} retries, "
            f"{int(counters['degrade_packed_decode'])} worker degradations, "
            f"1 structured casualty; warm-pool replay "
            f"(reuse={runtime_stats['pool_reuse_count']}) bit-identical too"
        )
    return problems


def _batch_env() -> dict:
    """Subprocess env with ``src`` on PYTHONPATH (CI and local runs)."""
    root = pathlib.Path(__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(root / "src")]
        + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    return env


def gate_kill_resume() -> list[str]:
    """SIGKILL a journaled batch mid-run; resume must be byte-identical."""
    problems: list[str] = []
    corpus = generate_test_corpus()
    docs = [d for dataset in corpus.datasets()
            for d in corpus.by_dataset(dataset)][:24]
    if len(docs) < 8:
        return [f"corpus too small for a mid-batch kill ({len(docs)} docs)"]
    env = _batch_env()
    with tempfile.TemporaryDirectory(prefix="repro-killgate-") as tmp:
        doc_dir = os.path.join(tmp, "docs")
        os.makedirs(doc_dir)
        for i, doc in enumerate(docs):
            name = os.path.join(doc_dir, f"doc-{i:03d}.xml")
            with open(name, "w", encoding="utf-8") as handle:
                handle.write(doc.xml)
        pattern = os.path.join(doc_dir, "*.xml")
        ref_out = os.path.join(tmp, "ref.jsonl")
        out = os.path.join(tmp, "out.jsonl")
        journal = os.path.join(tmp, "batch.rxjf")
        base_cmd = [sys.executable, "-m", "repro", "batch", pattern,
                    "--workers", "2"]

        # Reference: the uninterrupted run the resumed output must match.
        ref = subprocess.run(
            base_cmd + ["--out", ref_out], env=env,
            capture_output=True, text=True,
        )
        if ref.returncode != 0:
            return [f"reference batch failed ({ref.returncode}): {ref.stderr}"]

        # Kill leg: a seeded kill_midbatch fault SIGKILLs the process
        # when doc-012 is dispatched — no atexit, no cleanup, exactly
        # the crash the journal exists for.
        kill = subprocess.run(
            base_cmd + [
                "--out", out, "--journal", journal,
                "--chaos-seed", str(CHAOS_SEED),
                "--chaos-fault", "kill_midbatch:*doc-012.xml",
            ],
            env=env, capture_output=True, text=True,
        )
        if kill.returncode not in (-signal.SIGKILL, 128 + signal.SIGKILL):
            problems.append(
                f"kill leg exited {kill.returncode}, expected SIGKILL "
                f"(-9/137): {kill.stderr[-500:]}"
            )
        if not os.path.exists(journal) or os.path.getsize(journal) == 0:
            problems.append("killed run left no journal to resume from")
        if problems:
            return problems

        # Resume leg: same batch, same journal, no fault — completed
        # documents replay from the journal, the rest are scored.
        resume = subprocess.run(
            base_cmd + ["--out", out, "--journal", journal, "--resume"],
            env=env, capture_output=True, text=True,
        )
        if resume.returncode != 0:
            problems.append(
                f"resume exited {resume.returncode}: {resume.stderr[-500:]}"
            )
            return problems
        summary = resume.stdout + resume.stderr
        match = re.search(r"journal replayed=(\d+) scored=(\d+)", summary)
        if match is None:
            problems.append(f"resume summary lacks journal stats: {summary!r}")
            return problems
        replayed, scored = int(match.group(1)), int(match.group(2))
        if replayed < 1:
            # A resume that replays nothing proves nothing: the kill
            # must land after at least one record hit the journal.
            problems.append("vacuous gate: resume replayed 0 documents")
        if scored < 1:
            problems.append("vacuous gate: the kill landed after the batch")
        with open(ref_out, "rb") as handle:
            ref_bytes = handle.read()
        with open(out, "rb") as handle:
            out_bytes = handle.read()
        if ref_bytes != out_bytes:
            problems.append(
                "resumed output DIVERGED from the uninterrupted run"
            )
        if not problems:
            print(
                f"kill-resume gate passed (seed {CHAOS_SEED}): SIGKILL "
                f"mid-batch, resume replayed {replayed} + scored {scored} "
                f"of {len(docs)}, output byte-identical to the "
                f"uninterrupted run"
            )
    return problems


def _http(address: "tuple[str, int]", payload: bytes) -> bytes:
    """One raw HTTP round-trip; returns the full response bytes."""
    with socket.create_connection(address, timeout=30) as sock:
        sock.sendall(payload)
        data = b""
        while chunk := sock.recv(4096):
            data += chunk
    return data


def _post_disambiguate(address: "tuple[str, int]", name: str) -> bytes:
    body = json.dumps({"xml": XML, "name": name}).encode("utf-8")
    return _http(address, (
        f"POST /v1/disambiguate HTTP/1.1\r\nHost: gate\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode("ascii") + body)


def _get_healthz(address: "tuple[str, int]") -> dict:
    raw = _http(address, b"GET /healthz HTTP/1.1\r\nHost: gate\r\n\r\n")
    return json.loads(raw.partition(b"\r\n\r\n")[2])


def gate_bitrot_scrub() -> list[str]:
    """Flip one shard byte under a live server; require quarantine + 200s."""
    from repro.runtime import PackedIndex
    from repro.runtime.store import write_shard

    problems: list[str] = []
    env = _batch_env()
    with tempfile.TemporaryDirectory(prefix="repro-bitrotgate-") as tmp:
        shard = os.path.join(tmp, "lexicon.rxpd")
        network = default_lexicon()
        write_shard(PackedIndex(network), shard,
                    fingerprint=network.fingerprint())

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--shard", shard,
             "--scrub-interval", "0.02",
             "--scrub-slice-bytes", "16384",
             "--no-scrub-repair"],
            stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            announce = proc.stderr.readline()
            if "repro-serve listening on" not in announce:
                return [f"unexpected announce line: {announce!r}"]
            host, port = announce.strip().rsplit(" ", 1)[1].rsplit(":", 1)
            address = (host, int(port))

            health = _get_healthz(address)
            if health.get("index", {}).get("backing") != "mmap":
                problems.append(
                    "gate precondition: shard did not attach as mmap "
                    f"(backing={health.get('index', {}).get('backing')!r})"
                )
            status = _post_disambiguate(address, "pre-rot").split(b"\r\n")[0]
            if status != b"HTTP/1.1 200 OK":
                problems.append(f"pre-rot request answered {status!r}")
            if problems:
                return problems

            # The seeded bit flip: one body byte XORed in place, exactly
            # what a rotting disk or torn write leaves behind.
            injector = FaultInjector(CHAOS_SEED, [FaultSpec.bitrot()])
            offset = injector.bitrot_shard(shard)
            if offset is None:
                return ["bitrot fault did not fire on the shard"]

            # Hammer the server while the scrubber finds the damage and
            # fails over: every single request must stay 200.
            served = 0
            deadline = time.monotonic() + 30.0
            degraded_health: "dict | None" = None
            while time.monotonic() < deadline:
                status = _post_disambiguate(
                    address, f"during-rot-{served}"
                ).split(b"\r\n")[0]
                if status != b"HTTP/1.1 200 OK":
                    problems.append(
                        f"request {served} failed during failover: {status!r}"
                    )
                    return problems
                served += 1
                health = _get_healthz(address)
                if health.get("status") == "degraded" and \
                        health.get("index", {}).get("backing") == "heap":
                    degraded_health = health
                    break
                time.sleep(0.05)
            if degraded_health is None:
                problems.append(
                    f"server never reported degraded+heap within 30s "
                    f"(last status {health.get('status')!r}, backing "
                    f"{health.get('index', {}).get('backing')!r})"
                )
                return problems

            durability = degraded_health.get("durability", {})
            if not durability.get("degraded"):
                problems.append("healthz durability lacks the degraded map")
            scrub = durability.get("scrubber") or {}
            if scrub.get("quarantined", 0) < 1:
                problems.append("scrubber stats report no quarantined shard")
            quarantined = [
                f for f in os.listdir(tmp) if ".quarantined" in f
            ]
            if not quarantined:
                problems.append("no *.quarantined file on disk")
            if os.path.exists(shard):
                problems.append("damaged shard path was not renamed away")

            # Post-failover request on the heap backing, then drain.
            status = _post_disambiguate(address, "post-rot").split(b"\r\n")[0]
            if status != b"HTTP/1.1 200 OK":
                problems.append(f"post-failover request answered {status!r}")

            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=60)
            if code != 0:
                problems.append(f"SIGTERM drain exited {code}, expected 0")
            if not problems:
                print(
                    f"bitrot-scrub gate passed (seed {CHAOS_SEED}): byte "
                    f"flipped at offset {offset}, quarantine -> "
                    f"{quarantined[0]}, {served + 2} requests all 200, "
                    f"healthz degraded on heap backing, drain -> exit 0"
                )
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
    return problems


GATES = {
    "executor": gate_executor,
    "kill-resume": gate_kill_resume,
    "bitrot-scrub": gate_bitrot_scrub,
}


def main(argv: "list[str] | None" = None) -> int:
    names = list(argv if argv is not None else sys.argv[1:]) or list(GATES)
    unknown = [n for n in names if n not in GATES]
    if unknown:
        print(f"unknown gate(s): {', '.join(unknown)} "
              f"(have: {', '.join(GATES)})", file=sys.stderr)
        return 2
    failed = False
    for name in names:
        problems = GATES[name]()
        if problems:
            failed = True
            print(f"chaos gate {name} FAILED (seed {CHAOS_SEED}):",
                  file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
