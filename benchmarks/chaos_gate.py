"""CI chaos gate: fixed-seed fault injection, zero result divergence.

Runs the test corpus through :class:`repro.runtime.BatchExecutor` twice
— once fault-free, once under a fixed-seed :class:`FaultInjector`
schedule that exercises every recovery path (flaky-then-recover
retries, a permanent fault, corrupted packed payloads for every
worker) — and gates on the hard exactness contract:

* every document that *succeeds* under injected faults must produce a
  JSONL line **byte-identical** to the fault-free run;
* exactly the scheduled permanent casualty fails, with a structured
  outcome (``stage="inject"``, not retried);
* the retried and degraded paths actually fired (otherwise the gate
  would pass vacuously).

The faulted batch then runs a **second time on the same executor** —
the persistent pool stays warm between batches — and the gate asserts
byte-identity again plus ``pool_reuse_count >= 1``, so chaos coverage
extends to the warm-pool steady state, not just spin-up.

Exit code 0 on success, 1 with a divergence report otherwise.
"""

from __future__ import annotations

import sys

from repro import XSDFConfig
from repro.datasets import generate_test_corpus
from repro.runtime import BatchExecutor, FaultInjector, FaultSpec, MetricsRegistry
from repro.semnet.lexicon import default_lexicon

#: Fixed chaos seed — the schedule (and therefore the gate) is fully
#: deterministic; bump only together with the expectations below.
CHAOS_SEED = 42


def main() -> int:
    lexicon = default_lexicon()
    corpus = generate_test_corpus()
    docs = []
    for dataset in corpus.datasets():
        docs.append(corpus.by_dataset(dataset)[0])
        if len(docs) == 8:
            break
    batch = [(d.name, d.xml) for d in docs]
    names = [name for name, _ in batch]
    flaky_name, permanent_name = names[1], names[4]

    baseline = {
        r.name: r.to_json_line()
        for r in BatchExecutor(lexicon, XSDFConfig(), workers=1).run(batch)
    }

    metrics = MetricsRegistry()
    executor = BatchExecutor(
        lexicon,
        XSDFConfig(),
        workers=2,
        backoff_base=0.0,
        metrics=metrics,
        oversubscribe=True,  # the gate must exercise the real pool
        injector=FaultInjector(CHAOS_SEED, [
            FaultSpec.flaky(match=flaky_name, fail_attempts=1),
            FaultSpec.raising(match=permanent_name, transient=False),
            FaultSpec.corrupt_packed(),
        ]),
    )
    records = executor.run(batch)
    # Round 2, same executor: the chaos schedule replays identically on
    # the warm persistent pool (the injector is stateless, so the same
    # faults fire), covering the steady state the server actually runs.
    warm_records = executor.run(batch)
    runtime_stats = executor.runtime_stats()
    executor.close()

    problems: list[str] = []
    if [r.name for r in records] != names:
        problems.append("records came back out of input order")
    for record in records:
        if record.name == permanent_name:
            if record.ok:
                problems.append(
                    f"{record.name}: scheduled permanent fault did not fire"
                )
            elif record.outcome is None or record.outcome.stage != "inject":
                problems.append(
                    f"{record.name}: casualty lacks a structured outcome"
                )
            continue
        if not record.ok:
            problems.append(f"{record.name}: unexpected failure {record.error}")
        elif record.to_json_line() != baseline[record.name]:
            problems.append(
                f"{record.name}: DIVERGED from the fault-free run"
            )

    # Warm round: the same schedule on the same (now warm) pool.  The
    # injector fires before the doc cache, so the permanent casualty
    # must fail again, and every survivor must still match baseline.
    for record in warm_records:
        if record.name == permanent_name:
            if record.ok:
                problems.append(
                    f"{record.name}: permanent fault missed the warm pool"
                )
            continue
        if not record.ok:
            problems.append(
                f"{record.name}: unexpected warm-pool failure {record.error}"
            )
        elif record.to_json_line() != baseline[record.name]:
            problems.append(f"{record.name}: DIVERGED on the warm pool")
    if runtime_stats.get("pool_reuse_count", 0) < 1:
        problems.append("second batch did not reuse the warm pool")

    counters = metrics.report()["counters"]
    if not counters.get("outcome_retried"):
        problems.append("flaky-then-recover path never fired")
    if not counters.get("degrade_packed_decode"):
        problems.append("corrupt-packed degradation never fired")

    survivors = sum(1 for r in records if r.ok)
    if problems:
        print(f"chaos gate FAILED (seed {CHAOS_SEED}):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(
        f"chaos gate passed (seed {CHAOS_SEED}): {survivors}/{len(batch)} "
        f"survivors bit-identical, {int(counters['retries'])} retries, "
        f"{int(counters['degrade_packed_decode'])} worker degradations, "
        f"1 structured casualty; warm-pool replay "
        f"(reuse={runtime_stats['pool_reuse_count']}) bit-identical too"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
