"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures.  The
reference lexicon, the generated test collection, and the parsed tree
cache are expensive, so they are built once per session and shared.
Benchmarks print the reproduced table rows (the "same rows/series the
paper reports") in addition to timing a representative computation.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_test_corpus
from repro.semnet import default_lexicon


@pytest.fixture(scope="session")
def network():
    """The curated mini-WordNet (shared, read-only)."""
    return default_lexicon()


@pytest.fixture(scope="session")
def corpus():
    """The full generated test collection (all datasets/groups)."""
    return generate_test_corpus()


@pytest.fixture(scope="session")
def tree_cache():
    """Shared document-name -> XMLTree cache across benchmarks."""
    return {}


def print_table(title: str, headers: list[str], rows: list[list[str]]) -> None:
    """Render one reproduced table to stdout (shown with pytest -s)."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
