"""Daemon smoke: boot ``repro serve``, drive it, drain it, require exit 0.

CI's ``server`` job runs this end-to-end against the real process
boundary (the in-process battery in ``tests/server`` cannot prove the
exit code): start the daemon on an ephemeral port, wait for the stderr
announce line, check ``/healthz``, stream one NDJSON disambiguation,
read ``/metrics``, then SIGTERM and require a clean exit — the
graceful-drain contract.

Usage::

    PYTHONPATH=src python benchmarks/server_smoke.py
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import socket
import subprocess
import sys

XML = "<library><book><title>bank</title></book></library>"


def http(address: tuple[str, int], payload: bytes) -> bytes:
    """One raw HTTP round-trip; returns the full response bytes."""
    with socket.create_connection(address, timeout=30) as sock:
        sock.sendall(payload)
        data = b""
        while chunk := sock.recv(4096):
            data += chunk
    return data


def require(condition: bool, message: str) -> None:
    """Fail the smoke loudly."""
    if not condition:
        raise SystemExit(f"server smoke FAILED: {message}")


def main() -> int:
    """Run the smoke; returns 0 on success."""
    root = pathlib.Path(__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(root / "src")]
        + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stderr=subprocess.PIPE, text=True, env=env,
    )
    try:
        announce = proc.stderr.readline()
        require("repro-serve listening on" in announce,
                f"unexpected announce line: {announce!r}")
        host, port_text = announce.strip().rsplit(" ", 1)[1].rsplit(":", 1)
        address = (host, int(port_text))

        health = http(
            address, b"GET /healthz HTTP/1.1\r\nHost: smoke\r\n\r\n"
        )
        status_line = health.split(b"\r\n")[0]
        require(status_line == b"HTTP/1.1 200 OK",
                f"healthz answered {status_line!r}")
        payload = json.loads(health.partition(b"\r\n\r\n")[2])
        require(payload["ready"] is True, "healthz reports not ready")
        print(f"healthz ok: index {payload['index']['fingerprint'][:12]}..., "
              f"{payload['index']['concepts']} concepts")

        body = json.dumps({"xml": XML, "name": "smoke"}).encode("utf-8")
        response = http(address, (
            f"POST /v1/disambiguate HTTP/1.1\r\nHost: smoke\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("ascii") + body)
        status_line = response.split(b"\r\n")[0]
        require(status_line == b"HTTP/1.1 200 OK",
                f"disambiguate answered {status_line!r}")
        require(b'"envelope"' in response and b'"status": "ok"' in response,
                "NDJSON stream is missing the ok envelope line")
        print("disambiguate ok: NDJSON stream with ok envelope")

        metrics = http(
            address, b"GET /metrics HTTP/1.1\r\nHost: smoke\r\n\r\n"
        )
        snapshot = json.loads(metrics.partition(b"\r\n\r\n")[2])
        require(snapshot["counters"].get("documents_served") == 1,
                "metrics did not count the served document")
        print("metrics ok: documents_served=1")

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        require(code == 0, f"SIGTERM drain exited {code}, expected 0")
        print("drain ok: SIGTERM -> exit 0")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    raise SystemExit(main())
