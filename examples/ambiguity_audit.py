"""Ambiguity audit: rank the most ambiguous nodes of a document set.

Uses the paper's ambiguity degree measure (Section 3.3) as a standalone
tool — before spending any disambiguation effort, report which nodes of
a collection are worth disambiguating, how the threshold trades coverage
for effort, and how the polysemy/depth/density factors contribute.

Run with::

    python examples/ambiguity_audit.py
"""

from repro.core.ambiguity import rank_nodes, select_targets
from repro.datasets import generate_test_corpus
from repro.datasets.stats import document_tree
from repro.semnet import default_lexicon


def main() -> None:
    network = default_lexicon()
    corpus = generate_test_corpus()
    document = corpus.by_group(1)[0]  # a Shakespeare play edition
    tree = document_tree(document, network)

    print(f"document: {document.name} ({len(tree)} nodes)\n")
    print(f"{'rank':<6}{'label':<14}{'Amb_Deg':>8}{'polysemy':>9}"
          f"{'depth':>7}{'density':>8}")
    print("-" * 55)
    for rank, report in enumerate(rank_nodes(tree, network)[:12], start=1):
        print(
            f"{rank:<6}{report.label:<14}{report.degree:>8.4f}"
            f"{report.polysemy:>9.3f}{report.depth_factor:>7.2f}"
            f"{report.density_factor:>8.2f}"
        )

    print("\nthreshold sweep (targets selected per threshold):")
    for threshold in (0.0, 0.005, 0.01, 0.02, 0.05):
        targets = select_targets(tree, network, threshold=threshold)
        labels = sorted({node.label for node in targets})
        preview = ", ".join(labels[:6]) + ("..." if len(labels) > 6 else "")
        print(f"   Thresh_Amb={threshold:<6} -> {len(targets):3d} nodes "
              f"({preview})")


if __name__ == "__main__":
    main()
