"""Bring your own knowledge base.

The paper: "any other knowledge base can be used based on the
application scenario, e.g. ODP for describing semantic relations between
Web pages, or FOAF to identify relations between persons in social
networks."  This example builds a tiny FOAF-style network for a social
feed, validates it, persists it to JSON, and disambiguates a post where
*profile*, *wall*, and *follower* are ambiguous between their social and
everyday senses.

Run with::

    python examples/custom_knowledge_base.py
"""

import tempfile
from pathlib import Path

from repro import XSDF, XSDFConfig
from repro.semnet import NetworkBuilder, load_network, save_network
from repro.semnet.validate import validate_network

FEED = """<?xml version="1.0"?>
<feed>
  <profile>
    <handle>gracek</handle>
    <follower>jstewart</follower>
    <follower>anovak</follower>
  </profile>
  <wall>
    <post>met a director at the studio</post>
  </wall>
</feed>
"""


def build_social_network():
    """A miniature FOAF-like semantic network."""
    b = NetworkBuilder("mini-foaf")
    b.synset("entity", ["entity"], "anything that exists", freq=1)
    b.synset("person", ["person", "agent"], "a human being",
             hypernym="entity", freq=40)
    b.synset("document", ["document"], "a piece of written content",
             hypernym="entity", freq=20)
    b.synset("structure", ["structure"], "something built from parts",
             hypernym="entity", freq=15)

    # The social senses...
    b.synset("profile.social", ["profile", "user profile"],
             "a page describing a person on a social network, listing "
             "their handle, posts, and followers",
             hypernym="document", freq=10)
    b.synset("wall.social", ["wall", "timeline"],
             "the stream of posts a person publishes on their profile",
             hypernym="document", freq=8)
    b.synset("follower.social", ["follower", "subscriber"],
             "a person who subscribes to another person's posts on a "
             "social network", hypernym="person", freq=9)
    b.synset("post.social", ["post", "status update"],
             "a short message published to a wall or feed",
             hypernym="document", freq=12)
    b.synset("handle.social", ["handle", "screen name", "username"],
             "the name a person uses on a social network profile",
             hypernym="document", freq=6)
    b.synset("feed.social", ["feed", "activity stream"],
             "the stream of posts shown to a person on a social network",
             hypernym="document", freq=7)

    # ...and their everyday competitors.
    b.synset("profile.side", ["profile"],
             "an outline of a face seen from the side",
             hypernym="entity", freq=14)
    b.synset("wall.brick", ["wall"],
             "an upright structure of masonry that divides rooms or "
             "encloses a yard", hypernym="structure", freq=30)
    b.synset("follower.disciple", ["follower", "disciple"],
             "a person who accepts the leadership of a religious or "
             "political figure", hypernym="person", freq=11)
    b.synset("post.pole", ["post", "pole"],
             "an upright timber fixed in the ground, as for a fence",
             hypernym="structure", freq=16)
    b.synset("handle.grip", ["handle", "grip"],
             "the part of a tool that you hold in the hand",
             hypernym="structure", freq=13)
    b.synset("feed.fodder", ["feed", "provender"],
             "food given to domestic animals",
             hypernym="entity", freq=9)

    from repro.semnet import Relation
    b.relation("wall.social", Relation.PART_HOLONYM, "profile.social")
    b.relation("handle.social", Relation.PART_HOLONYM, "profile.social")
    b.relation("post.social", Relation.PART_HOLONYM, "wall.social")
    b.relation("follower.social", Relation.DERIVATION, "profile.social")
    b.relation("post.social", Relation.DERIVATION, "feed.social")
    return b.build()


def main() -> None:
    network = build_social_network()
    report = validate_network(network)
    print(f"network: {len(network)} concepts, "
          f"{len(report.warnings())} warnings, ok={report.ok}")

    # Persist and reload: the JSON file is what you would ship.
    path = Path(tempfile.mkdtemp()) / "mini-foaf.json"
    save_network(network, path)
    network = load_network(path)
    print(f"round-tripped through {path.name}\n")

    xsdf = XSDF(network, XSDFConfig(
        sphere_radius=2, strip_target_dimension=True,
    ))
    result = xsdf.disambiguate_document(FEED)
    print(f"{'label':<12}{'sense':<20}gloss")
    print("-" * 70)
    for assignment in result.assignments:
        gloss = network.concept(assignment.concept_id).gloss
        print(f"{assignment.label:<12}{assignment.concept_id:<20}{gloss[:40]}")


if __name__ == "__main__":
    main()
