"""Heterogeneous source integration — the paper's Figure 1 scenario.

Two XML documents describe the *same* Hitchcock movie with different
structures and tag vocabularies (``picture``/``movie``, ``director``/
``directed_by``, ``star``/``actor``+``LastName``).  Syntactic matching
sees almost nothing in common; after XSDF disambiguation both documents
resolve to the same semantic concepts, making the correspondence
explicit — the prerequisite for schema matching and data integration the
paper motivates.

Run with::

    python examples/heterogeneous_integration.py
"""

from repro import XSDF, XSDFConfig
from repro.semnet import default_lexicon

DOC_1 = """<?xml version="1.0"?>
<films>
  <picture title="Rear Window">
    <director>Hitchcock</director>
    <year>1954</year>
    <genre>mystery</genre>
    <cast>
      <star>Stewart</star>
      <star>Kelly</star>
    </cast>
    <plot>A wheelchair bound photographer spies on his neighbors</plot>
  </picture>
</films>
"""

DOC_2 = """<?xml version="1.0"?>
<movies>
  <movie year="1954">
    <name>Rear Window</name>
    <directed_by>Alfred Hitchcock</directed_by>
    <actors>
      <actor><FirstName>Grace</FirstName><LastName>Kelly</LastName></actor>
      <actor><FirstName>James</FirstName><LastName>Stewart</LastName></actor>
    </actors>
  </movie>
</movies>
"""


def concept_labels(xsdf, network, xml):
    """Disambiguate and return {concept id: sorted labels mapped to it}."""
    result = xsdf.disambiguate_document(xml)
    mapping: dict[str, set[str]] = {}
    for assignment in result.assignments:
        mapping.setdefault(assignment.concept_id, set()).add(assignment.label)
    return {cid: sorted(labels) for cid, labels in mapping.items()}


def main() -> None:
    network = default_lexicon()
    xsdf = XSDF(network, XSDFConfig(sphere_radius=2, strip_target_dimension=True))

    map_1 = concept_labels(xsdf, network, DOC_1)
    map_2 = concept_labels(xsdf, network, DOC_2)

    raw_overlap = set()
    for labels in map_1.values():
        raw_overlap.update(labels)
    raw_labels_2 = {label for labels in map_2.values() for label in labels}
    syntactic = raw_overlap & raw_labels_2

    shared = sorted(set(map_1) & set(map_2))
    print(f"syntactic label overlap : {len(syntactic)} labels {sorted(syntactic)}")
    print(f"semantic concept overlap: {len(shared)} concepts\n")
    print(f"{'concept':<18}{'doc 1 labels':<28}{'doc 2 labels':<28}gloss")
    print("-" * 110)
    for concept_id in shared:
        gloss = network.concept(concept_id).gloss
        print(
            f"{concept_id:<18}{', '.join(map_1[concept_id]):<28}"
            f"{', '.join(map_2[concept_id]):<28}{gloss[:36]}"
        )
    if len(shared) > len(syntactic):
        print(
            "\nSemantic alignment exposes correspondences syntactic matching "
            "misses (e.g. picture=movie, star=actor, Kelly=Grace Kelly)."
        )


if __name__ == "__main__":
    main()
