"""Semantic-aware query answering over disambiguated XML.

The paper's first motivating application: a keyword query should match
XML elements by *meaning* — searching "movie" should hit documents that
tag their records ``picture`` or ``film``, but not a ``film`` element
meaning the photographic material.  After XSDF disambiguation every
element carries a concept, so matching reduces to comparing the query
term's senses against node concepts (including hypernym expansion).

Run with::

    python examples/query_expansion.py
"""

from repro import XSDF, XSDFConfig
from repro.semnet import default_lexicon

COLLECTION = {
    "catalog-a": """<films><picture title="Rear Window">
        <director>Hitchcock</director><genre>mystery</genre>
        <cast><star>Kelly</star></cast></picture></films>""",
    "catalog-b": """<movies><movie year="1954"><name>Vertigo</name>
        <directed_by>Alfred Hitchcock</directed_by>
        <actors><actor><LastName>Novak</LastName></actor></actors>
        </movie></movies>""",
    "photo-shop": """<products><product><title>Retro camera pack</title>
        <brand>Retro Supplies</brand><line>film line</line>
        <stock>12</stock><order>PO-1234</order><price>19.99</price>
        <head>fine grain photographic film for the camera</head>
        <state>new</state></product></products>""",
}


def search(query: str, annotated, network) -> list[tuple[str, str, str]]:
    """Documents whose concepts match any sense of ``query`` (or a
    direct hyponym of one — mild semantic expansion)."""
    query_senses = {sense.id for sense in network.senses(query)}
    expanded = set(query_senses)
    for sense_id in query_senses:
        expanded.update(network.hyponyms(sense_id))
    hits = []
    for doc_name, assignments in annotated.items():
        for assignment in assignments:
            if assignment.concept_id in expanded:
                hits.append((doc_name, assignment.label, assignment.concept_id))
    return hits


def main() -> None:
    network = default_lexicon()
    xsdf = XSDF(network, XSDFConfig(sphere_radius=2, strip_target_dimension=True))
    annotated = {
        name: xsdf.disambiguate_document(xml).assignments
        for name, xml in COLLECTION.items()
    }

    for query in ("movie", "actress", "merchandise"):
        print(f"\nquery: {query!r}")
        hits = search(query, annotated, network)
        if not hits:
            print("   no semantic matches")
        for doc_name, label, concept_id in hits:
            print(f"   {doc_name:<12} <{label}>  ->  {concept_id}")
    print(
        "\nNote: 'movie' matches <picture> and <movie> records but not the "
        "photographic 'film' products; 'actress' reaches the Kelly value "
        "via its disambiguated person sense."
    )


if __name__ == "__main__":
    main()
