"""Quickstart: disambiguate the paper's Figure 1 document.

Runs the full XSDF pipeline on the running example from the paper — a
movie description where *picture*, *cast*, *star*, *Kelly*, and
*Stewart* are all lexically ambiguous — and prints the chosen sense,
its gloss, and the semantically annotated XML tree.

Run with::

    python examples/quickstart.py
"""

from repro import XSDF, XSDFConfig
from repro.semnet import default_lexicon

DOCUMENT = """<?xml version="1.0"?>
<films>
  <picture title="Rear Window">
    <director>Hitchcock</director>
    <year>1954</year>
    <genre>mystery</genre>
    <cast>
      <star>Stewart</star>
      <star>Kelly</star>
    </cast>
    <plot>A wheelchair bound photographer spies on his neighbors</plot>
  </picture>
</films>
"""


def main() -> None:
    network = default_lexicon()
    xsdf = XSDF(network, XSDFConfig(sphere_radius=2, strip_target_dimension=True))

    result = xsdf.disambiguate_document(DOCUMENT)
    print(f"{result.n_targets} target nodes out of {result.n_nodes} total\n")
    print(f"{'label':<14}{'sense':<18}{'score':>7}  gloss")
    print("-" * 86)
    for assignment in result.assignments:
        gloss = network.concept(assignment.concept_id).gloss
        print(
            f"{assignment.label:<14}{assignment.concept_id:<18}"
            f"{assignment.score:>7.3f}  {gloss[:48]}"
        )

    print("\nSemantic XML tree (concept-annotated):\n")
    print(xsdf.to_semantic_xml(DOCUMENT))


if __name__ == "__main__":
    main()
