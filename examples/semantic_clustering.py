"""Semantic document similarity across vocabularies.

One of the applications the paper's introduction motivates: grouping
documents by *meaning*.  Two movie catalogs use disjoint tag
vocabularies (``films/picture/star`` vs ``movies/movie/actor``) while a
product feed reuses overlapping words (``title``, ``line``, ``stock``).
Raw tag-label vectors see the two movie catalogs as unrelated; after
XSDF disambiguation both map onto the same concepts, so the semantic
similarity matrix groups them together and keeps the product feed apart.

Run with::

    python examples/semantic_clustering.py
"""

from collections import Counter

from repro import XSDF, XSDFConfig
from repro.semnet import default_lexicon
from repro.similarity import cosine_similarity

DOCUMENTS = {
    "movies-a": """<films><picture title="Rear Window">
        <director>Hitchcock</director><genre>mystery</genre>
        <cast><star>Kelly</star><star>Stewart</star></cast>
        </picture></films>""",
    "movies-b": """<movies><movie year="1958"><name>Vertigo</name>
        <directed_by>Alfred Hitchcock</directed_by>
        <actors><actor><FirstName>Kim</FirstName>
        <LastName>Novak</LastName></actor></actors>
        <plot>A detective follows a stranger through the harbor fog</plot>
        </movie></movies>""",
    "products": """<products><product><title>Retro camera pack</title>
        <brand>Kelly Media</brand><line>camera line</line>
        <stock>9</stock><order>PO-7</order><price>49.99</price>
        <head>great value for the money</head><state>new</state>
        </product></products>""",
}


def label_vector(xsdf, xml) -> Counter:
    """Syntactic profile: raw label frequencies."""
    return Counter(node.label for node in xsdf.build_tree(xml))


def concept_vector(xsdf, xml) -> Counter:
    """Semantic profile: assigned concepts plus one hypernym level."""
    counts: Counter[str] = Counter()
    for assignment in xsdf.disambiguate_document(xml).assignments:
        counts[assignment.concept_id] += 1
        for parent in xsdf.network.hypernyms(assignment.concept_id):
            counts[parent] += 1
    return counts


def print_matrix(title, names, vectors) -> None:
    print(f"\n{title}")
    print(" " * 12 + "".join(f"{name:>12}" for name in names))
    for name_a in names:
        cells = "".join(
            f"{cosine_similarity(vectors[name_a], vectors[name_b]):>12.2f}"
            for name_b in names
        )
        print(f"{name_a:>12}{cells}")


def main() -> None:
    network = default_lexicon()
    xsdf = XSDF(network, XSDFConfig(sphere_radius=2, strip_target_dimension=True))
    names = list(DOCUMENTS)

    syntactic = {name: label_vector(xsdf, xml) for name, xml in DOCUMENTS.items()}
    semantic = {name: concept_vector(xsdf, xml) for name, xml in DOCUMENTS.items()}

    print_matrix("cosine over raw tag labels:", names, syntactic)
    print_matrix("cosine over XSDF concepts:", names, semantic)

    syn = cosine_similarity(syntactic["movies-a"], syntactic["movies-b"])
    sem = cosine_similarity(semantic["movies-a"], semantic["movies-b"])
    print(
        f"\nmovies-a vs movies-b: {syn:.2f} syntactic -> {sem:.2f} semantic: "
        "the two catalogs only look alike once their tags are mapped to "
        "shared concepts."
    )


if __name__ == "__main__":
    main()
