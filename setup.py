"""Legacy setup shim.

The build environment has setuptools but no ``wheel`` package, so PEP 517
editable installs fail with ``invalid command 'bdist_wheel'``.  This shim
lets ``pip install -e . --no-build-isolation --no-use-pep517`` work.
"""

from setuptools import setup

setup()
