"""repro — XSDF: XML Semantic Disambiguation Framework.

A full reproduction of *Resolving XML Semantic Ambiguity* (Charbel,
Tekli, Chbeir, Tekli — EDBT 2015): linguistic pre-processing, ambiguity
degree node selection, sphere neighborhood contexts, and hybrid
concept/context-based disambiguation over a semantic network — plus every
substrate (XML parser/DOM, WordNet-style network engine, curated lexicon,
baselines, datasets, evaluation harness) the experiments need.

Quickstart::

    from repro import XSDF, XSDFConfig
    from repro.semnet import default_lexicon

    xsdf = XSDF(default_lexicon(), XSDFConfig(sphere_radius=1))
    result = xsdf.disambiguate_document("<films><picture>...</picture></films>")
    for assignment in result.assignments:
        print(assignment.label, "->", assignment.concept_id)
"""

from .core.config import AmbiguityWeights, DisambiguationApproach, XSDFConfig
from .core.framework import XSDF
from .core.results import DisambiguationResult, SenseAssignment
from .similarity.combined import SimilarityWeights

__version__ = "1.0.0"

__all__ = [
    "AmbiguityWeights",
    "DisambiguationApproach",
    "DisambiguationResult",
    "SenseAssignment",
    "SimilarityWeights",
    "XSDF",
    "XSDFConfig",
    "__version__",
]
