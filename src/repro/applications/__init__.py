"""Downstream applications the paper motivates, built on XSDF.

Schema/document matching, semantic clustering, and semantic search —
the consumers that make XML sense disambiguation worth having.
"""

from .clustering import (
    Clustering,
    cluster_documents,
    cluster_profiles,
    concept_profile,
    label_profile,
)
from .matching import Correspondence, SemanticMatcher
from .search import Hit, SemanticIndex

__all__ = [
    "Clustering",
    "Correspondence",
    "Hit",
    "SemanticIndex",
    "SemanticMatcher",
    "cluster_documents",
    "cluster_profiles",
    "concept_profile",
    "label_profile",
]
