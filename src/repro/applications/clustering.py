"""Semantic document clustering — the paper's clustering application.

"XML document classification and clustering (grouping together documents
based on their semantic similarities, rather than performing
syntactic-only processing)" — this module provides concept-profile
vectors for documents and a deterministic agglomerative clusterer over
them, so vocabularies that never share a tag still cluster when they
share meaning.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..core.framework import XSDF
from ..similarity.vector import cosine_similarity
from ..xmltree.dom import XMLTree


def concept_profile(xsdf: XSDF, tree: XMLTree) -> dict[str, float]:
    """The semantic fingerprint of one document.

    Counts assigned concepts plus (half-weighted) their direct hypernyms
    so closely related concepts overlap without flattening everything to
    the upper ontology.
    """
    counts: Counter[str] = Counter()
    for assignment in xsdf.disambiguate_tree(tree).assignments:
        counts[assignment.concept_id] += 1.0
        for parent in xsdf.network.hypernyms(assignment.concept_id):
            counts[parent] += 0.5
    return dict(counts)


def label_profile(tree: XMLTree) -> dict[str, float]:
    """The syntactic fingerprint: raw label frequencies (for contrast)."""
    return dict(Counter(node.label for node in tree))


@dataclass
class Clustering:
    """Result of agglomerative clustering: index groups over the input."""

    clusters: list[list[int]] = field(default_factory=list)

    def cluster_of(self, index: int) -> int:
        """The cluster ID holding node ``index`` (-1 when absent)."""
        for cluster_id, members in enumerate(self.clusters):
            if index in members:
                return cluster_id
        raise KeyError(index)

    def __len__(self) -> int:
        return len(self.clusters)


def cluster_profiles(
    profiles: list[dict[str, float]],
    threshold: float = 0.3,
) -> Clustering:
    """Average-linkage agglomerative clustering with a similarity floor.

    Repeatedly merges the most similar cluster pair until no pair's
    average cosine similarity reaches ``threshold``.  Deterministic:
    ties break toward the lowest indices.
    """
    clusters: list[list[int]] = [[i] for i in range(len(profiles))]

    def linkage(a: list[int], b: list[int]) -> float:
        total = sum(
            cosine_similarity(profiles[i], profiles[j]) for i in a for j in b
        )
        return total / (len(a) * len(b))

    while len(clusters) > 1:
        best_pair: tuple[int, int] | None = None
        best_score = threshold
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                score = linkage(clusters[i], clusters[j])
                if score > best_score:
                    best_pair = (i, j)
                    best_score = score
        if best_pair is None:
            break
        i, j = best_pair
        clusters[i] = sorted(clusters[i] + clusters[j])
        del clusters[j]
    clusters.sort(key=lambda members: members[0])
    return Clustering(clusters=clusters)


def cluster_documents(
    xsdf: XSDF,
    documents: list[str],
    threshold: float = 0.3,
) -> Clustering:
    """End-to-end: parse, disambiguate, profile, and cluster XML texts."""
    profiles = [
        concept_profile(xsdf, xsdf.build_tree(text)) for text in documents
    ]
    return cluster_profiles(profiles, threshold=threshold)
