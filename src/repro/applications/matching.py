"""Semantic XML matching — the paper's schema-matching application.

The paper motivates XSDF with "XML schema matching and integration
(considering the semantic meanings and relations between schema
elements)".  This module implements that consumer: given two XML
documents (or schemas rendered as documents), disambiguate both and
produce label correspondences scored by concept identity or semantic
similarity — `picture ≈ movie`, `star ≈ actor` — which syntactic
matchers cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.framework import XSDF
from ..similarity.combined import CombinedSimilarity, ConceptSimilarity
from ..xmltree.dom import NodeKind


@dataclass(frozen=True)
class Correspondence:
    """One matched label pair with its evidence."""

    label_a: str
    label_b: str
    concept_a: str
    concept_b: str
    score: float

    @property
    def exact(self) -> bool:
        """True when both labels resolved to the *same* concept."""
        return self.concept_a == self.concept_b


class SemanticMatcher:
    """Matches element vocabularies of two documents by meaning.

    Parameters
    ----------
    xsdf:
        A configured disambiguation framework (its network also provides
        the similarity used for non-identical concept pairs).
    similarity:
        Concept similarity for soft matches; defaults to the combined
        measure over the framework's network.
    min_score:
        Soft correspondences below this similarity are dropped.
    """

    def __init__(
        self,
        xsdf: XSDF,
        similarity: ConceptSimilarity | None = None,
        min_score: float = 0.5,
    ):
        self._xsdf = xsdf
        self._similarity = similarity or CombinedSimilarity(xsdf.network)
        self._min_score = min_score

    def _element_concepts(self, xml_text: str) -> dict[str, str]:
        """label -> chosen concept for the document's element labels."""
        tree = self._xsdf.build_tree(xml_text)
        result = self._xsdf.disambiguate_tree(tree)
        mapping: dict[str, str] = {}
        for assignment in result.assignments:
            node = tree[assignment.node_index]
            if node.kind is NodeKind.VALUE_TOKEN:
                continue  # schema matching concerns tags, not values
            mapping.setdefault(assignment.label, assignment.concept_id)
        return mapping

    def match(self, xml_a: str, xml_b: str) -> list[Correspondence]:
        """Correspondences between the two documents' tag vocabularies.

        Exact matches (same concept) come first, then soft matches by
        descending similarity; each label participates in at most one
        correspondence (greedy one-to-one assignment).
        """
        concepts_a = self._element_concepts(xml_a)
        concepts_b = self._element_concepts(xml_b)
        scored: list[Correspondence] = []
        for label_a, concept_a in concepts_a.items():
            for label_b, concept_b in concepts_b.items():
                if concept_a == concept_b:
                    score = 1.0
                else:
                    score = self._similarity(concept_a, concept_b)
                if score >= self._min_score:
                    scored.append(
                        Correspondence(label_a, label_b, concept_a,
                                       concept_b, score)
                    )
        scored.sort(key=lambda c: (-c.score, c.label_a, c.label_b))
        taken_a: set[str] = set()
        taken_b: set[str] = set()
        out: list[Correspondence] = []
        for correspondence in scored:
            if correspondence.label_a in taken_a:
                continue
            if correspondence.label_b in taken_b:
                continue
            taken_a.add(correspondence.label_a)
            taken_b.add(correspondence.label_b)
            out.append(correspondence)
        return out
