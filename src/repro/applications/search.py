"""Semantic search over disambiguated XML — the paper's query-rewriting
application.

"Semantic-aware query rewriting and expansion (expanding keyword queries
by including semantically related terms)": an index maps concepts (and
their taxonomic expansions) to the XML nodes that carry them, so a
keyword query matches by meaning — `movie` finds `<picture>` elements,
and `actress` finds the value token `Kelly` once it is disambiguated to
Grace Kelly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.framework import XSDF
from ..semnet.network import SemanticNetwork


@dataclass(frozen=True)
class Hit:
    """One query match."""

    document: str
    label: str
    concept_id: str
    node_index: int
    score: float


@dataclass
class SemanticIndex:
    """Concept -> occurrences index over a document collection."""

    network: SemanticNetwork
    _postings: dict[str, list[Hit]] = field(default_factory=dict)
    _documents: set[str] = field(default_factory=set)

    def add(self, name: str, xsdf: XSDF, xml_text: str) -> int:
        """Disambiguate and index one document; returns entries added."""
        if name in self._documents:
            raise ValueError(f"document {name!r} already indexed")
        self._documents.add(name)
        result = xsdf.disambiguate_document(xml_text)
        for assignment in result.assignments:
            hit = Hit(
                document=name,
                label=assignment.label,
                concept_id=assignment.concept_id,
                node_index=assignment.node_index,
                score=assignment.score,
            )
            self._postings.setdefault(assignment.concept_id, []).append(hit)
        return len(result.assignments)

    def __len__(self) -> int:
        return sum(len(hits) for hits in self._postings.values())

    @property
    def documents(self) -> set[str]:
        """Names of every indexed document."""
        return set(self._documents)

    # -- querying ----------------------------------------------------------

    def expand_query(self, word: str, depth: int = 1) -> set[str]:
        """Concept ids for ``word``: its senses plus hyponyms to ``depth``.

        Hyponym expansion implements the query-*expansion* half: asking
        for ``performer`` also retrieves actors and stars.
        """
        frontier = {sense.id for sense in self.network.senses(word)}
        expanded = set(frontier)
        for _ in range(depth):
            nxt: set[str] = set()
            for concept_id in frontier:
                nxt.update(self.network.hyponyms(concept_id))
            nxt -= expanded
            if not nxt:
                break
            expanded |= nxt
            frontier = nxt
        return expanded

    def search(self, word: str, depth: int = 1) -> list[Hit]:
        """Hits for ``word`` across the collection, best score first."""
        concepts = self.expand_query(word, depth=depth)
        hits: list[Hit] = []
        for concept_id in concepts:
            hits.extend(self._postings.get(concept_id, []))
        hits.sort(key=lambda h: (-h.score, h.document, h.node_index))
        return hits

    def search_documents(self, word: str, depth: int = 1) -> list[str]:
        """Distinct matching document names, best-hit order."""
        seen: dict[str, None] = {}
        for hit in self.search(word, depth=depth):
            seen.setdefault(hit.document, None)
        return list(seen)
