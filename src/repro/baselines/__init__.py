"""Comparative baselines: RPD, VSD, parent/sub-tree contexts, trivia.

Reimplementations of the approaches the paper compares against (Section
2.2, Table 4, Figure 9), sharing the candidate-enumeration and result
types of the core framework so results are directly comparable.
"""

from .bag_of_words import BagOfWordsDisambiguator
from .base import Baseline
from .parent import ParentContextDisambiguator
from .rpd import RootPathDisambiguator
from .subtree import SubtreeContextDisambiguator
from .trivial import FirstSenseBaseline, RandomSenseBaseline
from .vsd import VersatileStructuralDisambiguator

__all__ = [
    "BagOfWordsDisambiguator",
    "Baseline",
    "FirstSenseBaseline",
    "ParentContextDisambiguator",
    "RandomSenseBaseline",
    "RootPathDisambiguator",
    "SubtreeContextDisambiguator",
    "VersatileStructuralDisambiguator",
]
