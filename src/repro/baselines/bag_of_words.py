"""Flat bag-of-words baseline (the traditional WSD context model).

Ignores XML structure entirely: the context of every node is the whole
document treated as an unordered set of labels, every context label
weighted equally (the paradigm the paper's Motivation 3 argues against).
Used by the ablation benchmark that isolates the value of the sphere
neighborhood's structural weighting.
"""

from __future__ import annotations

from ..core.candidates import Candidate, context_sense_ids
from ..semnet.network import SemanticNetwork
from ..similarity.combined import CombinedSimilarity, ConceptSimilarity
from ..xmltree.dom import XMLNode, XMLTree
from .base import Baseline


class BagOfWordsDisambiguator(Baseline):
    """Whole-document unweighted context, concept-comparison scoring."""

    name = "bag-of-words"

    def __init__(
        self,
        network: SemanticNetwork,
        similarity: ConceptSimilarity | None = None,
    ):
        super().__init__(network)
        self._similarity = similarity or CombinedSimilarity(network)
        self._doc_cache: tuple[int, list[list[str]]] | None = None

    def _document_context(self, tree: XMLTree, node: XMLNode) -> list[list[str]]:
        # The context is the same for every node of a tree; cache per tree.
        if self._doc_cache is not None and self._doc_cache[0] == id(tree):
            sense_lists = self._doc_cache[1]
        else:
            sense_lists = [
                sense_ids
                for other in tree
                if (sense_ids := context_sense_ids(other, self.network))
            ]
            self._doc_cache = (id(tree), sense_lists)
        return sense_lists

    def score_candidates(
        self, tree: XMLTree, node: XMLNode, candidates: list[Candidate]
    ) -> dict[Candidate, float]:
        """Scores from plain bag-of-words gloss overlap with the document."""
        sense_lists = self._document_context(tree, node)
        scores: dict[Candidate, float] = {}
        for candidate in candidates:
            total = 0.0
            for sense_ids in sense_lists:
                total += max(
                    self.candidate_similarity(self._similarity, candidate, sid)
                    for sid in sense_ids
                )
            scores[candidate] = total / len(sense_lists) if sense_lists else 0.0
        return scores
