"""Shared machinery for the comparative baselines.

Every baseline implements ``disambiguate_node(tree, node)`` returning a
:class:`~repro.core.results.SenseAssignment` (or None when the node has
no candidates), and inherits ``disambiguate_tree`` which applies it to a
target list — by default every node with at least one known sense, since
none of the published baselines perform ambiguity-based selection (the
paper's Motivation 1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..core.candidates import Candidate, candidate_senses
from ..core.results import DisambiguationResult, SenseAssignment
from ..semnet.network import SemanticNetwork
from ..xmltree.dom import XMLNode, XMLTree


class Baseline(ABC):
    """Base class for XML disambiguation baselines."""

    #: Short identifier used in benchmark tables.
    name: str = "baseline"

    def __init__(self, network: SemanticNetwork):
        self.network = network

    @abstractmethod
    def score_candidates(
        self, tree: XMLTree, node: XMLNode, candidates: list[Candidate]
    ) -> dict[Candidate, float]:
        """Score every candidate sense of ``node`` (higher is better)."""

    def disambiguate_node(
        self, tree: XMLTree, node: XMLNode
    ) -> SenseAssignment | None:
        """Assign the best-scoring sense to one node."""
        candidates = candidate_senses(node, self.network)
        if not candidates:
            return None
        scores = self.score_candidates(tree, node, candidates)
        chosen = max(candidates, key=lambda c: scores.get(c, float("-inf")))
        return SenseAssignment(
            node_index=node.index,
            label=node.label,
            chosen=chosen,
            score=scores.get(chosen, 0.0),
            concept_score=0.0,
            context_score=0.0,
            ambiguity=0.0,
            scores=scores,
        )

    def disambiguate_tree(
        self, tree: XMLTree, targets: list[XMLNode] | None = None
    ) -> DisambiguationResult:
        """Disambiguate ``targets`` (default: every node with senses)."""
        if targets is None:
            targets = [
                node for node in tree if candidate_senses(node, self.network)
            ]
        assignments = []
        for node in targets:
            assignment = self.disambiguate_node(tree, node)
            if assignment is not None:
                assignments.append(assignment)
        return DisambiguationResult(
            assignments=assignments,
            n_nodes=len(tree),
            n_targets=len(targets),
            radius=0,
        )

    def candidate_similarity(
        self, similarity, candidate: Candidate, sense_id: str
    ) -> float:
        """Average per-token similarity for (possibly compound) candidates."""
        total = sum(similarity(part, sense_id) for part in candidate)
        return total / len(candidate)
