"""Parent-node context baseline (Taha & Elmasri, XCDSearch [52]).

Treats the parent node and its children as one canonical entity — "the
simplest semantically meaningful structural entity".  The disambiguation
context of a node is therefore just its parent and siblings (plus its
own children when it is itself a parent), compared with an edge-based
measure.  This is the narrowest structural context in the comparison and
illustrates the paper's Motivation 2.
"""

from __future__ import annotations

from ..core.candidates import Candidate, context_sense_ids
from ..semnet.network import SemanticNetwork
from ..similarity.edge import WuPalmerSimilarity
from ..xmltree.dom import XMLNode, XMLTree
from .base import Baseline


class ParentContextDisambiguator(Baseline):
    """Canonical-entity (parent + children) context disambiguation."""

    name = "parent-context"

    def __init__(self, network: SemanticNetwork):
        super().__init__(network)
        self._edge = WuPalmerSimilarity(network)

    def _context(self, node: XMLNode) -> list[XMLNode]:
        context: list[XMLNode] = []
        if node.parent is not None:
            context.append(node.parent)
            context.extend(
                sibling for sibling in node.parent.children if sibling is not node
            )
        context.extend(node.children)
        return context

    def score_candidates(
        self, tree: XMLTree, node: XMLNode, candidates: list[Candidate]
    ) -> dict[Candidate, float]:
        """Scores candidates against the parent node's sense glosses."""
        sense_lists = [
            sense_ids
            for context_node in self._context(node)
            if (sense_ids := context_sense_ids(context_node, self.network))
        ]
        scores: dict[Candidate, float] = {}
        for candidate in candidates:
            total = 0.0
            for sense_ids in sense_lists:
                total += max(
                    self.candidate_similarity(self._edge, candidate, sid)
                    for sid in sense_ids
                )
            scores[candidate] = total / len(sense_lists) if sense_lists else 0.0
        return scores
