"""RPD — Root Path Disambiguation (Tagarelli et al., ESWC 2009 [50]).

The strongest published XML-specific comparator in the paper's Figure 9.
Context of a node = the labels on its *root path* (the node sequence
from the document root down to the node, plus — per the original
per-path processing — the continuation of that path through the node's
first-child chain).  Every sense of the target label is compared with
all senses of the other labels occurring on the same path, using a
combination of a gloss-based measure [6] and an edge-based measure [59]
over WordNet, and the highest-scoring sense wins.

Characteristics the paper calls out (Table 4): no tag tokenization for
compounds (compound tokens are compared via their parts here only
because candidates are shared machinery), no ambiguity selection, fixed
context (the root path), fixed pre-selected measures, structure-only.
"""

from __future__ import annotations

from ..core.candidates import Candidate, context_sense_ids
from ..semnet.network import SemanticNetwork
from ..similarity.edge import WuPalmerSimilarity
from ..similarity.gloss import ExtendedLeskSimilarity
from ..xmltree.dom import NodeKind, XMLNode, XMLTree
from .base import Baseline


class RootPathDisambiguator(Baseline):
    """Per-root-path disambiguation with gloss+edge similarity."""

    name = "RPD"

    def __init__(self, network: SemanticNetwork):
        super().__init__(network)
        self._edge = WuPalmerSimilarity(network)
        self._gloss = ExtendedLeskSimilarity(network)

    def _path_context(self, node: XMLNode) -> list[XMLNode]:
        """Root path of ``node`` (ancestors), extended downward.

        RPD processes complete root-to-leaf paths; for an internal target
        the path continues through its element children chain so the
        context matches the path(s) the node participates in.
        """
        context = [n for n in node.root_path() if n is not node]
        cursor = node
        while cursor.children:
            element_children = [
                child for child in cursor.children
                if child.kind is NodeKind.ELEMENT
            ]
            cursor = element_children[0] if element_children else cursor.children[0]
            context.append(cursor)
        return context

    def _pair_similarity(self, a: str, b: str) -> float:
        return 0.5 * self._edge(a, b) + 0.5 * self._gloss(a, b)

    def score_candidates(
        self, tree: XMLTree, node: XMLNode, candidates: list[Candidate]
    ) -> dict[Candidate, float]:
        """Scores candidates against senses along the root path."""
        context_nodes = self._path_context(node)
        context_senses: list[list[str]] = []
        for context_node in context_nodes:
            sense_ids = context_sense_ids(context_node, self.network)
            if sense_ids:
                context_senses.append(sense_ids)
        scores: dict[Candidate, float] = {}
        for candidate in candidates:
            total = 0.0
            for sense_ids in context_senses:
                total += max(
                    self.candidate_similarity(self._pair_similarity, candidate, sid)
                    for sid in sense_ids
                )
            scores[candidate] = total / len(context_senses) if context_senses else 0.0
        return scores
