"""Sub-tree context baseline (Theobald et al., WebDB 2003 [56]).

The context of an element is the set of labels in the sub-tree rooted at
it.  The same paradigm identifies the context of each candidate sense in
the semantic network (its neighborhood concepts), and the label context
is compared with each candidate sense context — the sense with the
highest context similarity wins.  This is the original *context-based*
strand XSDF generalizes (Section 2.2.3), restricted to descendants and
with no structural weighting (plain bag-of-words).
"""

from __future__ import annotations

from ..core.candidates import Candidate
from ..core.context_vector import compound_concept_context_vector
from ..semnet.network import SemanticNetwork
from ..similarity.vector import cosine_similarity
from ..xmltree.dom import XMLNode, XMLTree
from .base import Baseline


class SubtreeContextDisambiguator(Baseline):
    """Bag-of-words sub-tree context vs. sense neighborhood contexts."""

    name = "subtree-context"

    def __init__(self, network: SemanticNetwork, concept_radius: int = 2):
        super().__init__(network)
        self._concept_radius = concept_radius
        self._vector_cache: dict[Candidate, dict[str, float]] = {}

    def _label_vector(self, node: XMLNode) -> dict[str, float]:
        """Unweighted (bag-of-words) label frequencies of the sub-tree."""
        vector: dict[str, float] = {}
        for descendant in node.preorder():
            vector[descendant.label] = vector.get(descendant.label, 0.0) + 1.0
        return vector

    def _sense_vector(self, candidate: Candidate) -> dict[str, float]:
        cached = self._vector_cache.get(candidate)
        if cached is None:
            cached = compound_concept_context_vector(
                self.network, candidate, self._concept_radius
            )
            self._vector_cache[candidate] = cached
        return cached

    def score_candidates(
        self, tree: XMLTree, node: XMLNode, candidates: list[Candidate]
    ) -> dict[Candidate, float]:
        """Scores candidates against senses in the node's subtree."""
        label_vector = self._label_vector(node)
        return {
            candidate: cosine_similarity(label_vector, self._sense_vector(candidate))
            for candidate in candidates
        }
