"""Trivial WSD baselines: first sense and random sense.

First-sense is the standard hard-to-beat WSD floor (sense ranks encode
corpus frequency); random-sense calibrates how much signal any informed
method adds.
"""

from __future__ import annotations

import random

from ..core.candidates import Candidate
from ..semnet.network import SemanticNetwork
from ..xmltree.dom import XMLNode, XMLTree
from .base import Baseline


class FirstSenseBaseline(Baseline):
    """Always choose the first-ranked (most frequent) sense."""

    name = "first-sense"

    def score_candidates(
        self, tree: XMLTree, node: XMLNode, candidates: list[Candidate]
    ) -> dict[Candidate, float]:
        """Scores candidates by their sense-rank order."""
        # Candidates are enumerated in sense-rank order; score by rank.
        n = len(candidates)
        return {c: (n - i) / n for i, c in enumerate(candidates)}


class RandomSenseBaseline(Baseline):
    """Choose a uniformly random sense (seeded, hence reproducible).

    The choice is deterministic per (document shape, node index): the
    per-node RNG is seeded with ``seed ^ node.index`` so repeated runs —
    and runs over the same tree in different processes — agree.
    """

    name = "random-sense"

    def __init__(self, network: SemanticNetwork, seed: int = 13):
        super().__init__(network)
        self._seed = seed

    def score_candidates(
        self, tree: XMLTree, node: XMLNode, candidates: list[Candidate]
    ) -> dict[Candidate, float]:
        """Scores candidates with seeded per-node random draws."""
        rng = random.Random(self._seed ^ (node.index * 2654435761))
        scores = {c: rng.random() for c in candidates}
        return scores
