"""VSD — Versatile Structural Disambiguation (Mandreoli et al., CIKM 2005 [29]).

The second comparator in the paper's Figure 9.  VSD combines parent and
descendant context with a *Gaussian decay* edge-weighting: a context
node at tree distance ``dist`` from the target carries weight
``exp(-dist^2 / (2 sigma^2))``, and edges are *crossable* while the
decayed weight stays above a cut-off — nodes reachable through crossable
edges form the context (the "relational information model").  The target
label is compared with each candidate sense of the context labels using
an edge-based measure (Leacock-Chodorow [24]) and the best-supported
sense wins.
"""

from __future__ import annotations

import math

from ..core.candidates import Candidate, context_sense_ids
from ..semnet.network import SemanticNetwork
from ..similarity.edge import LeacockChodorowSimilarity
from ..xmltree.dom import XMLNode, XMLTree
from .base import Baseline


class VersatileStructuralDisambiguator(Baseline):
    """Gaussian-decay structural context + edge-based similarity."""

    name = "VSD"

    def __init__(
        self,
        network: SemanticNetwork,
        sigma: float = 1.5,
        weight_cutoff: float = 0.1,
    ):
        super().__init__(network)
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        if not 0.0 < weight_cutoff < 1.0:
            raise ValueError("weight_cutoff must be in (0, 1)")
        self._sigma = sigma
        self._cutoff = weight_cutoff
        self._edge = LeacockChodorowSimilarity(network)

    def decay(self, distance: int) -> float:
        """The Gaussian decay weight of a context node at ``distance``."""
        return math.exp(-(distance**2) / (2.0 * self._sigma**2))

    def _context(self, tree: XMLTree, node: XMLNode) -> list[tuple[XMLNode, float]]:
        """(node, weight) pairs reachable through crossable edges.

        The decay is monotone in distance, so crossability reduces to a
        maximum radius: the largest distance whose weight clears the
        cut-off.
        """
        max_distance = int(
            math.floor(math.sqrt(-2.0 * self._sigma**2 * math.log(self._cutoff)))
        )
        out = []
        for other in tree:
            if other is node:
                continue
            distance = tree.distance(node, other)
            if distance <= max_distance:
                weight = self.decay(distance)
                if weight >= self._cutoff:
                    out.append((other, weight))
        return out

    def score_candidates(
        self, tree: XMLTree, node: XMLNode, candidates: list[Candidate]
    ) -> dict[Candidate, float]:
        """Scores candidates against the Gaussian-decayed crossable context."""
        context = self._context(tree, node)
        weighted_senses: list[tuple[list[str], float]] = []
        for context_node, weight in context:
            sense_ids = context_sense_ids(context_node, self.network)
            if sense_ids:
                weighted_senses.append((sense_ids, weight))
        scores: dict[Candidate, float] = {}
        for candidate in candidates:
            total = 0.0
            weight_mass = 0.0
            for sense_ids, weight in weighted_senses:
                best = max(
                    self.candidate_similarity(self._edge, candidate, sid)
                    for sid in sense_ids
                )
                total += weight * best
                weight_mass += weight
            scores[candidate] = total / weight_mass if weight_mass else 0.0
        return scores
