"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``disambiguate FILE``
    Run the full XSDF pipeline on an XML file and print either a
    per-node sense report (default) or the concept-annotated semantic
    XML tree (``--xml``).
``batch GLOB [GLOB ...]``
    Disambiguate a whole corpus of XML files through the cached,
    parallel runtime (:mod:`repro.runtime`): JSONL results to a file or
    stdout, optional metrics report (``--metrics-json``), optional
    cProfile hot-frame summary (``--profile``), packed index by default
    (``--dict-index`` for the dict-keyed one), exact pruning and sphere
    memoization on by default (``--no-prune``/``--no-memo``).  Failure
    policy via ``--on-error={fail,skip,quarantine}`` (abort with exit 2
    / record and continue / divert failed documents to a sidecar JSONL)
    with ``--max-retries`` and ``--doc-timeout`` controlling the
    resilience layer.
``serve``
    Run the long-lived disambiguation daemon (:mod:`repro.server`):
    the network loads and the packed index builds once, then
    ``POST /v1/disambiguate`` streams NDJSON annotations byte-identical
    to ``repro batch`` while the caches stay warm across requests.
    ``GET /healthz`` and ``GET /metrics`` expose readiness and the live
    metrics snapshot; ``--rate-limit``/``--max-concurrency``/
    ``--request-timeout`` bound admission, and SIGTERM drains
    gracefully (finish in-flight, refuse new connections, exit 0).
``pack SHARD``
    Write a network's packed index to an on-disk ``RXPD`` shard
    (:mod:`repro.runtime.store`): ``batch``/``serve`` then attach it
    read-only via ``mmap`` — no index build, no decode, and every
    attaching process shares the same physical pages through the OS
    page cache.  Pack the bundled lexicon, a ``--network`` JSON file,
    or a ``--synthetic N`` generated taxonomy; ``--verify`` re-opens
    the shard and checks the full body CRC.
``audit FILE``
    Print the ambiguity-degree ranking of the file's nodes — which
    nodes are worth disambiguating, before spending any effort.
``lexicon``
    Summary statistics of the bundled mini-WordNet, or the sense
    inventory of one word (``--word``).
``lint [PATH ...]``
    Run reprolint (:mod:`repro.devtools`) over files/directories
    (default ``src tests``): text or JSON findings, ``--rules`` filter,
    non-zero exit on any finding.

All pipeline knobs are exposed as flags (radius, approach, threshold,
weights, the strip-target-dimension extension).
"""

from __future__ import annotations

import argparse
import glob as globlib
import os
import sys

from . import __version__
from .core.ambiguity import rank_nodes
from .core.config import DisambiguationApproach, XSDFConfig
from .core.framework import XSDF
from .semnet import default_lexicon
from .similarity.combined import SimilarityWeights

_APPROACHES = {
    "concept": DisambiguationApproach.CONCEPT_BASED,
    "context": DisambiguationApproach.CONTEXT_BASED,
    "combined": DisambiguationApproach.COMBINED,
}


def _workers_arg(value: str) -> int:
    """Argparse type for ``--workers``: an integer or ``auto``.

    Range validation (``>= 1``) stays with the consumer so ``--workers
    0`` keeps its historical "workers must be >= 1" error instead of an
    argparse usage message.
    """
    from .runtime.pool import parse_workers

    try:
        return parse_workers(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XSDF: XML semantic disambiguation (EDBT 2015 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dis = sub.add_parser("disambiguate", help="disambiguate an XML file")
    dis.add_argument("file", help="path to the XML document")
    dis.add_argument("--radius", type=int, default=2,
                     help="sphere context radius d (default 2)")
    dis.add_argument("--approach", choices=sorted(_APPROACHES),
                     default="combined", help="disambiguation process")
    dis.add_argument("--threshold", type=float, default=0.0,
                     help="ambiguity threshold Thresh_Amb (default 0)")
    dis.add_argument("--weights", metavar="EDGE,NODE,GLOSS", default=None,
                     help="similarity weight mix, e.g. 1,1,1")
    dis.add_argument("--strip-target-dimension", action="store_true",
                     help="enable the context-vector bias fix (extension)")
    dis.add_argument("--structure-only", action="store_true",
                     help="ignore text values (structure-only mode)")
    dis.add_argument("--xml", action="store_true",
                     help="emit the semantic XML tree instead of a report")

    batch = sub.add_parser(
        "batch",
        help="disambiguate many XML files through the cached runtime",
    )
    batch.add_argument("patterns", nargs="+", metavar="GLOB",
                       help="file paths or glob patterns of XML documents")
    batch.add_argument("--workers", type=_workers_arg, default=1,
                       metavar="N|auto",
                       help="worker processes (1 = serial, default; "
                            "'auto' = one per CPU usable by this "
                            "process, affinity-aware)")
    batch.add_argument("--chunk-size", type=int, default=None,
                       help="documents per worker task (default: auto)")
    batch.add_argument("--out", default=None,
                       help="write JSONL results here (default: stdout)")
    batch.add_argument("--metrics-json", "--metrics", dest="metrics_json",
                       default=None, metavar="PATH",
                       help="write the per-stage counter/timer/cache "
                            "snapshot (including memo and pruning "
                            "counters) as JSON to PATH for trend "
                            "tracking across runs")
    batch.add_argument("--no-memo", action="store_true",
                       help="disable cross-document sphere memoization "
                            "(results are bit-identical either way)")
    batch.add_argument("--no-prune", action="store_true",
                       help="disable exact candidate pruning (chosen "
                            "senses and scores are identical either "
                            "way; pruning omits provably-losing "
                            "candidates from per-node score tables)")
    batch.add_argument("--no-index", action="store_true",
                       help="disable the precomputed index and caches "
                            "(uncached baseline)")
    batch.add_argument("--dict-index", action="store_true",
                       help="use the dict-keyed SemanticIndex instead of "
                            "the packed flat-array index (same scores)")
    batch.add_argument("--profile", action="store_true",
                       help="profile the batch under cProfile and append "
                            "the hottest frames to the summary (parent "
                            "process only under --workers > 1)")
    batch.add_argument("--cache-size", type=int, default=None,
                       help="bound for the similarity caches "
                            "(default 65536)")
    batch.add_argument("--radius", type=int, default=2,
                       help="sphere context radius d (default 2)")
    batch.add_argument("--approach", choices=sorted(_APPROACHES),
                       default="combined", help="disambiguation process")
    batch.add_argument("--threshold", type=float, default=0.0,
                       help="ambiguity threshold Thresh_Amb (default 0)")
    batch.add_argument("--weights", metavar="EDGE,NODE,GLOSS", default=None,
                       help="similarity weight mix, e.g. 1,1,1")
    batch.add_argument("--strip-target-dimension", action="store_true",
                       help="enable the context-vector bias fix (extension)")
    batch.add_argument("--structure-only", action="store_true",
                       help="ignore text values (structure-only mode)")
    batch.add_argument("--on-error", choices=("fail", "skip", "quarantine"),
                       default="skip",
                       help="failure policy: fail = abort at the first "
                            "finally-failed document (exit 2, partial "
                            "results still written); skip = record the "
                            "failure and continue (default, exit 1 if "
                            "any failed); quarantine = divert failed "
                            "documents to a sidecar JSONL (exit 0)")
    batch.add_argument("--max-retries", type=int, default=2,
                       help="re-dispatch budget for transient per-"
                            "document faults (default 2; permanent "
                            "errors are never retried)")
    batch.add_argument("--doc-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-document wall-clock budget; a "
                            "straggler's worker pool is terminated and "
                            "the document re-dispatched (parallel runs "
                            "only)")
    batch.add_argument("--quarantine", default=None, metavar="PATH",
                       help="sidecar JSONL for quarantined documents "
                            "(default quarantine.jsonl; implies "
                            "nothing unless --on-error=quarantine)")
    batch.add_argument("--network", default=None, metavar="PATH",
                       help="disambiguate against a repro-semnet JSON "
                            "network instead of the bundled lexicon")
    batch.add_argument("--shard", default=None, metavar="RXPD",
                       help="attach the packed index from this RXPD "
                            "shard via mmap instead of building it "
                            "(requires --network; fingerprint-checked)")
    batch.add_argument("--registry", default=None, metavar="TOML",
                       help="a registry.toml manifest of domain "
                            "networks/shards (mutually exclusive with "
                            "--network/--shard)")
    batch.add_argument("--domain", default=None,
                       help="pin the registry domain to serve from "
                            "(default: coverage-routed over the "
                            "manifest's default + fallback domains)")
    batch.add_argument("--journal", default=None, metavar="PATH",
                       help="append each completed document to this "
                            "crash-safe outcome journal (WAL) as it "
                            "finishes; a killed run loses at most the "
                            "in-flight documents")
    batch.add_argument("--resume", action="store_true",
                       help="replay --journal before scoring: documents "
                            "the journal proves complete are re-emitted "
                            "byte-identically instead of re-scored "
                            "(requires --journal)")
    batch.add_argument("--chaos-seed", type=int, default=0, metavar="N",
                       help="seed for --chaos-fault schedules "
                            "(default 0)")
    batch.add_argument("--chaos-fault", action="append", default=None,
                       metavar="KIND[:MATCH[:RATE]]",
                       help="inject a seeded fault schedule (repeatable); "
                            "kinds: raise, slow, corrupt-packed, exit, "
                            "kill_midbatch, bitrot")

    pack = sub.add_parser(
        "pack",
        help="write a network's packed index to an RXPD shard file",
    )
    pack.add_argument("out", metavar="SHARD",
                      help="output shard path (conventionally .rxpd)")
    pack.add_argument("--network", default=None, metavar="PATH",
                      help="pack this repro-semnet JSON network "
                           "(default: the bundled lexicon)")
    pack.add_argument("--synthetic", type=int, default=None, metavar="N",
                      help="pack an N-concept generated synthetic "
                           "network instead")
    pack.add_argument("--seed", type=int, default=7,
                      help="synthetic generation seed (default 7)")
    pack.add_argument("--gloss-style", choices=("sphere", "local"),
                      default="local",
                      help="synthetic gloss synthesis: radius-2 "
                           "neighborhood sampling or the O(1) local "
                           "fast path (default local; --synthetic only)")
    pack.add_argument("--no-fingerprint", action="store_true",
                      help="skip stamping the source network's "
                           "fingerprint into the shard header")
    pack.add_argument("--verify", action="store_true",
                      help="re-open the shard and deep-verify the "
                           "body CRC after writing")

    serve = sub.add_parser(
        "serve",
        help="run the long-lived disambiguation HTTP daemon",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8750,
                       help="bind port (default 8750; 0 binds an "
                            "ephemeral port, announced on stderr)")
    serve.add_argument("--network", default=None, metavar="PATH",
                       help="serve a repro-semnet JSON network instead "
                            "of the bundled lexicon")
    serve.add_argument("--workers", type=_workers_arg, default=1,
                       metavar="N|auto",
                       help="worker processes per session's batch "
                            "executor (1 = serial, default; 'auto' = "
                            "one per usable CPU); pools persist "
                            "across requests")
    serve.add_argument("--max-concurrency", type=int, default=8,
                       help="disambiguation requests admitted at once; "
                            "excess requests get 503 + Retry-After "
                            "(default 8)")
    serve.add_argument("--rate-limit", type=float, default=0.0,
                       metavar="PER_S",
                       help="per-client token-bucket refill rate in "
                            "requests/s; over-budget clients get 429 + "
                            "Retry-After (default 0 = unlimited)")
    serve.add_argument("--burst", type=int, default=8,
                       help="token-bucket burst capacity per client "
                            "(default 8)")
    serve.add_argument("--max-body-bytes", type=int, default=None,
                       help="largest accepted request body; bigger "
                            "bodies get 413 (default 1 MiB)")
    serve.add_argument("--request-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-request wall-clock budget; over-budget "
                            "requests get a 504 timeout envelope "
                            "(default: unbounded)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       metavar="SECONDS",
                       help="how long a SIGTERM drain waits for "
                            "in-flight requests before cancelling "
                            "stragglers (default 10)")
    serve.add_argument("--metrics-json", "--metrics", dest="metrics_json",
                       default=None, metavar="PATH",
                       help="flush the final metrics snapshot here on "
                            "shutdown (live snapshot: GET /metrics)")
    serve.add_argument("--dict-index", action="store_true",
                       help="use the dict-keyed SemanticIndex instead of "
                            "the packed flat-array index (same scores)")
    serve.add_argument("--cache-size", type=int, default=None,
                       help="bound for the similarity caches "
                            "(default 65536)")
    serve.add_argument("--no-memo", action="store_true",
                       help="disable cross-document sphere memoization "
                            "in the default session")
    serve.add_argument("--no-prune", action="store_true",
                       help="disable exact candidate pruning in the "
                            "default session")
    serve.add_argument("--radius", type=int, default=2,
                       help="default sphere context radius d "
                            "(overridable per request)")
    serve.add_argument("--approach", choices=sorted(_APPROACHES),
                       default="combined",
                       help="default disambiguation process "
                            "(overridable per request)")
    serve.add_argument("--threshold", type=float, default=0.0,
                       help="default ambiguity threshold Thresh_Amb")
    serve.add_argument("--weights", metavar="EDGE,NODE,GLOSS", default=None,
                       help="default similarity weight mix, e.g. 1,1,1")
    serve.add_argument("--strip-target-dimension", action="store_true",
                       help="enable the context-vector bias fix by "
                            "default (extension)")
    serve.add_argument("--structure-only", action="store_true",
                       help="ignore text values by default "
                            "(structure-only mode)")
    serve.add_argument("--shard", default=None, metavar="RXPD",
                       help="attach the served index from this RXPD "
                            "shard via mmap instead of building it "
                            "(fingerprint-checked against the served "
                            "network)")
    serve.add_argument("--registry", default=None, metavar="TOML",
                       help="serve every domain of a registry.toml "
                            "manifest; requests pick one with the "
                            "envelope's 'domain' key (mutually "
                            "exclusive with --network/--shard)")
    serve.add_argument("--scrub-interval", type=float, default=0.0,
                       metavar="SECONDS",
                       help="run the background shard integrity "
                            "scrubber, one bounded slice every N "
                            "seconds (default 0 = off); damaged shards "
                            "are quarantined and the server fails over "
                            "to a heap-built index")
    serve.add_argument("--scrub-slice-bytes", type=int, default=1 << 20,
                       metavar="BYTES",
                       help="bytes re-verified per scrub slice "
                            "(default 1 MiB)")
    serve.add_argument("--no-scrub-repair", action="store_true",
                       help="detect + quarantine only; skip re-packing "
                            "a damaged shard from its source network")
    serve.add_argument("--reload-interval", type=float, default=0.0,
                       metavar="SECONDS",
                       help="watch the registry manifest and shard "
                            "files and hot-reload sessions when they "
                            "change (default 0 = SIGHUP only)")

    audit = sub.add_parser("audit", help="rank nodes by ambiguity degree")
    audit.add_argument("file", help="path to the XML document")
    audit.add_argument("--top", type=int, default=15,
                       help="how many nodes to show (default 15)")

    lex = sub.add_parser("lexicon", help="inspect the bundled lexicon")
    lex.add_argument("--word", default=None,
                     help="show the sense inventory of one word")

    match = sub.add_parser(
        "match", help="semantically match two documents' tag vocabularies"
    )
    match.add_argument("file_a", help="first XML document")
    match.add_argument("file_b", help="second XML document")
    match.add_argument("--min-score", type=float, default=0.5,
                       help="drop soft matches below this similarity")

    val = sub.add_parser(
        "validate", help="validate a semantic network JSON file"
    )
    val.add_argument("file", help="path to a repro-semnet JSON document")

    corpus = sub.add_parser(
        "corpus", help="export the generated test collection to a directory"
    )
    corpus.add_argument("directory", help="output directory")
    corpus.add_argument("--seed", type=int, default=2015,
                        help="generation seed (default 2015)")

    rep = sub.add_parser(
        "report",
        help="regenerate every paper table/figure (markdown to stdout)",
    )
    rep.add_argument("--out", default=None,
                     help="write the report to a file instead of stdout")

    lint = sub.add_parser(
        "lint",
        help="check XSDF correctness contracts (reprolint)",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files, directories, or glob patterns "
                           "(default: src tests)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text",
                      help="report format (default text)")
    lint.add_argument("--rules", default=None, metavar="ID[,ID...]",
                      help="run only these rule IDs")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    lint.add_argument("--out", default=None, metavar="FILE",
                      help="write the report to a file instead of stdout")
    lint.add_argument("--changed", action="store_true",
                      help="lint only files changed per git (plus their "
                           "transitive importers)")
    lint.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="parse with N worker processes (default 1)")
    lint.add_argument("--cache", default=None, metavar="FILE",
                      help="incremental analysis cache file "
                           "(default .reprolint-cache.json when --changed)")
    lint.add_argument("--no-cache", action="store_true",
                      help="disable the analysis cache entirely")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="suppress findings recorded in this baseline")
    lint.add_argument("--write-baseline", default=None, metavar="FILE",
                      help="record the current findings as a baseline "
                           "and exit 0")
    return parser


def _make_config(args: argparse.Namespace) -> XSDFConfig:
    weights = SimilarityWeights()
    if args.weights:
        try:
            edge, node, gloss = (float(x) for x in args.weights.split(","))
        except ValueError:
            raise SystemExit(
                f"--weights expects EDGE,NODE,GLOSS numbers, got {args.weights!r}"
            )
        weights = SimilarityWeights(edge, node, gloss)
    return XSDFConfig(
        sphere_radius=args.radius,
        approach=_APPROACHES[args.approach],
        ambiguity_threshold=args.threshold,
        similarity_weights=weights,
        include_values=not args.structure_only,
        strip_target_dimension=args.strip_target_dimension,
        # Batch-only flags; the disambiguate parser keeps the defaults.
        prune=not getattr(args, "no_prune", False),
        memo=not getattr(args, "no_memo", False),
    )


def _read(path: str) -> str:
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}")


def _load_network(path: str):
    from .semnet.io import NetworkFormatError, load_network

    try:
        return load_network(path)
    except NetworkFormatError as exc:
        raise SystemExit(f"unreadable network: {exc}")


def _cmd_disambiguate(args: argparse.Namespace, out) -> int:
    network = default_lexicon()
    xsdf = XSDF(network, _make_config(args))
    text = _read(args.file)
    if args.xml:
        out.write(xsdf.to_semantic_xml(text))
        return 0
    result = xsdf.disambiguate_document(text)
    out.write(
        f"{result.n_targets} targets / {result.n_nodes} nodes "
        f"(radius d={result.radius})\n"
    )
    out.write(f"{'label':<18}{'sense':<22}{'score':>7}  gloss\n")
    for assignment in result.assignments:
        gloss = network.concept(assignment.concept_id).gloss
        out.write(
            f"{assignment.label:<18}{assignment.concept_id:<22}"
            f"{assignment.score:>7.3f}  {gloss[:44]}\n"
        )
    return 0


def _cmd_batch(args: argparse.Namespace, out) -> int:
    import json as jsonlib
    from collections import defaultdict, deque

    from .runtime.executor import (
        DEFAULT_CACHE_SIZE,
        BatchExecutor,
        BatchRecord,
    )
    from .runtime.journal import document_digest
    from .runtime.metrics import MetricsRegistry, batch_summary
    from .runtime.resilience import BatchAbortError

    paths: list[str] = []
    for pattern in args.patterns:
        matches = sorted(globlib.glob(pattern, recursive=True))
        if not matches:
            raise SystemExit(f"no files match {pattern!r}")
        paths.extend(matches)
    documents = [(path, _read(path)) for path in paths]

    network, prebuilt_index, registry, domain_note = _resolve_batch_index(
        args, documents
    )
    injector = _make_injector(args)
    config = _make_config(args)
    journal, run_docs, todo_indices, replayed = _open_journal(
        args, config, network, documents
    )
    # run_docs position -> final record, fed by the executor's
    # record_hook in completion order.  This is both the journal's
    # append point and the KeyboardInterrupt salvage: whatever is here
    # when the batch dies is what the partial output can emit.
    completed_by_pos: dict[int, BatchRecord] = {}
    pending_by_name: dict[str, deque[int]] = defaultdict(deque)
    digest_by_name: dict[str, str] = {}
    for pos, (name, xml) in enumerate(run_docs):
        pending_by_name[name].append(pos)
        digest_by_name[name] = document_digest(xml)

    def _record_hook(record: "BatchRecord") -> None:
        queue = pending_by_name.get(record.name)
        if queue:
            completed_by_pos[queue.popleft()] = record
        if journal is not None:
            journal.append(record, digest_by_name[record.name])

    metrics = MetricsRegistry()
    try:
        executor = BatchExecutor(
            network,
            config,
            workers=args.workers,
            chunk_size=args.chunk_size,
            use_index=not args.no_index,
            packed=not args.dict_index,
            cache_size=(
                args.cache_size if args.cache_size is not None
                else DEFAULT_CACHE_SIZE
            ),
            metrics=metrics,
            max_retries=args.max_retries,
            doc_timeout=args.doc_timeout,
            on_error=args.on_error,
            index=prebuilt_index,
            injector=injector,
            record_hook=_record_hook,
        )
    except ValueError as exc:
        if journal is not None:
            journal.close()
        raise SystemExit(str(exc))
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    aborted: BatchAbortError | None = None
    interrupted = False
    try:
        records = executor.run(run_docs)
    except BatchAbortError as exc:
        # Partial results are still written; the exit code reports the
        # abort.
        aborted = exc
        records = exc.records
    except KeyboardInterrupt:
        # Salvage what completed: the hook saw every finalized record,
        # so the partial output (and the journal, flushed below) keeps
        # the finished work instead of dying with a truncated file.
        interrupted = True
        records = [completed_by_pos[i] for i in sorted(completed_by_pos)]
    finally:
        # Snapshot the index backing before teardown: closing the
        # registry releases its mmap attachments (materializing the
        # tables to heap), which would misreport the run itself.
        index_backing = (
            getattr(executor.index, "backing", "heap")
            if not args.no_index else None
        )
        # One batch per CLI process: drain the persistent pool and
        # unlink the shared index segment before writing results.
        executor.close()
        if registry is not None:
            registry.close()
        if journal is not None:
            journal.close()
    if profiler is not None:
        profiler.disable()
    if args.metrics_json:
        metrics.write_json(args.metrics_json)

    records = _merge_replayed(
        documents, run_docs, todo_indices, replayed, records,
        completed_by_pos, partial=interrupted or aborted is not None,
    )
    failures = [r for r in records if not r.ok]
    quarantined: list = []
    emitted = records
    quarantine_path = None
    if args.on_error == "quarantine" and failures:
        # Failed documents go to the sidecar; the main JSONL keeps only
        # survivors (whose lines stay byte-identical to a clean run).
        quarantined = failures
        emitted = [r for r in records if r.ok]
        quarantine_path = args.quarantine or "quarantine.jsonl"
        with open(quarantine_path, "w", encoding="utf-8") as handle:
            for record in quarantined:
                payload = record.to_dict()
                if record.outcome is not None:
                    payload["outcome"] = record.outcome.to_dict()
                handle.write(jsonlib.dumps(payload, sort_keys=True))
                handle.write("\n")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            for record in emitted:
                handle.write(record.to_json_line())
                handle.write("\n")
    else:
        for record in emitted:
            out.write(record.to_json_line())
            out.write("\n")

    summary = batch_summary(metrics.report(), len(records), len(failures))
    if index_backing is not None:
        # Where the index tables physically lived during the run:
        # "mmap" proves the zero-copy shard attach actually happened,
        # "heap" that the index was (re)built in this process.
        summary += f", index={index_backing}"
    summary += domain_note
    if args.journal:
        summary += (
            f", journal replayed={len(replayed)} "
            f"scored={len(completed_by_pos)} -> {args.journal}"
        )
    if quarantined:
        summary += f", {len(quarantined)} quarantined -> {quarantine_path}"
    if interrupted:
        summary = (
            f"interrupted: wrote {len(records)}/{len(documents)} "
            f"records; " + summary
        )
    stream = sys.stderr if not args.out else out
    stream.write(summary + "\n")
    for record in failures:
        outcome = record.outcome
        detail = (
            f" [stage={outcome.stage or 'pipeline'}, "
            f"attempts={outcome.attempts}]"
            if outcome is not None else ""
        )
        status = "QUARANTINED" if args.on_error == "quarantine" else "FAILED"
        stream.write(f"  {status} {record.name}: {record.error}{detail}\n")
    if aborted is not None:
        stream.write(f"  ABORTED (--on-error=fail): {aborted}\n")
    if profiler is not None:
        stream.write(_profile_summary(profiler))
    if interrupted:
        return 130  # the conventional SIGINT exit code (128 + 2)
    if aborted is not None:
        return 2
    if args.on_error == "quarantine":
        return 0
    return 1 if failures else 0


def _resolve_batch_index(args: argparse.Namespace, documents):
    """The (network, prebuilt index, registry, summary note) for a batch.

    Four sources, in priority order: a registry manifest (domain pinned
    or coverage-routed over the batch's combined vocabulary), an RXPD
    shard attached over an explicit network, a bare network JSON, or
    the bundled lexicon.  Shard fingerprints are always checked against
    the network so a stale shard fails loudly instead of scoring wrong.
    """
    if args.registry and (args.network or args.shard):
        raise SystemExit(
            "--registry is mutually exclusive with --network/--shard"
        )
    if args.domain and not args.registry:
        raise SystemExit("--domain requires --registry")
    if args.shard and not args.network:
        raise SystemExit(
            "--shard requires --network (the shard's source network)"
        )
    if (args.shard or args.registry) and (args.dict_index or args.no_index):
        raise SystemExit(
            "--shard/--registry already provide a packed index; "
            "drop --dict-index/--no-index"
        )
    if args.registry:
        from .runtime.store import NetworkRegistry, RegistryError

        try:
            registry = NetworkRegistry.load(args.registry)
            if args.domain:
                registry.entry(args.domain)  # unknown domains fail here
                domain, coverage = args.domain, None
            else:
                domain, coverage = registry.route(
                    "\n".join(xml for _, xml in documents)
                )
            attached = registry.attach(domain)
        except RegistryError as exc:
            raise SystemExit(str(exc))
        note = f", domain={domain}"
        if coverage is not None:
            note += f" (coverage {coverage:.2f})"
        return attached.network, attached.index, registry, note
    if args.shard:
        from .runtime.pack import PackedIndex, PackedIndexError

        network = _load_network(args.network)
        try:
            index = PackedIndex.from_mmap(
                args.shard, expect_fingerprint=network.fingerprint()
            )
        except (PackedIndexError, OSError) as exc:
            raise SystemExit(f"cannot attach shard {args.shard}: {exc}")
        return network, index, None, ""
    if args.network:
        return _load_network(args.network), None, None, ""
    return default_lexicon(), None, None, ""


def _make_injector(args: argparse.Namespace):
    """A seeded :class:`FaultInjector` from ``--chaos-fault`` flags."""
    if not getattr(args, "chaos_fault", None):
        return None
    from .runtime.faults import FaultInjector, FaultSpec

    try:
        specs = [FaultSpec.parse(text) for text in args.chaos_fault]
    except ValueError as exc:
        raise SystemExit(str(exc))
    return FaultInjector(args.chaos_seed, specs)


def _open_journal(args: argparse.Namespace, config, network, documents):
    """Set up the batch journal and split replayed from to-score work.

    Returns ``(journal, run_docs, todo_indices, replayed)``: the open
    :class:`~repro.runtime.journal.JournalWriter` (or ``None``), the
    documents still needing scores, their indices into ``documents``,
    and ``{document index: journal entry}`` for the completed ones.
    ``--resume`` refuses a journal stamped with a different config or
    network fingerprint — replaying those records would break the
    byte-identity contract.
    """
    if args.resume and not args.journal:
        raise SystemExit("--resume requires --journal")
    if args.journal is None:
        return None, documents, list(range(len(documents))), {}
    from .runtime.journal import (
        JournalError,
        JournalWriter,
        document_digest,
        read_journal,
    )
    from .runtime.memo import config_fingerprint

    meta = {
        "config": config_fingerprint(config),
        "network": network.fingerprint(),
    }
    replayed: dict[int, dict] = {}
    todo = list(range(len(documents)))
    if args.resume:
        try:
            replay = read_journal(args.journal)
        except JournalError as exc:
            raise SystemExit(f"cannot resume: {exc}")
        if not replay.matches(meta["config"], meta["network"]):
            raise SystemExit(
                f"cannot resume: journal {args.journal} was written under "
                f"a different configuration or network; rerun without "
                f"--resume to start over"
            )
        done = replay.completed()
        todo = []
        for i, (name, xml) in enumerate(documents):
            entry = done.get((name, document_digest(xml)))
            if entry is None:
                todo.append(i)
            else:
                replayed[i] = entry
    try:
        journal = JournalWriter(args.journal, meta=meta, resume=args.resume)
    except OSError as exc:
        raise SystemExit(f"cannot open journal {args.journal}: {exc}")
    run_docs = [documents[i] for i in todo]
    return journal, run_docs, todo, replayed


def _merge_replayed(
    documents, run_docs, todo_indices, replayed, records,
    completed_by_pos, partial: bool,
):
    """Merge replayed journal entries and fresh records in input order.

    Replayed entries are reconstituted into :class:`BatchRecord`
    objects whose JSONL rendering is byte-identical to the line the
    crashed run would have written (``to_dict`` round-trips through
    canonical JSON).  Under a partial run (KeyboardInterrupt, abort)
    unfinished documents are simply absent from the output.
    """
    from .runtime.executor import BatchRecord
    from .runtime.resilience import DocOutcome

    if partial:
        scored_by_pos = completed_by_pos
    else:
        scored_by_pos = dict(enumerate(records))
    pos_of_doc = {doc_idx: pos for pos, doc_idx in enumerate(todo_indices)}
    merged = []
    for doc_idx in range(len(documents)):
        entry = replayed.get(doc_idx)
        if entry is not None:
            rec = entry["record"]
            merged.append(BatchRecord(
                name=rec["name"],
                result=rec.get("result"),
                error=rec.get("error"),
                elapsed_s=0.0,
                outcome=(
                    DocOutcome.from_dict(entry["outcome"])
                    if "outcome" in entry else None
                ),
            ))
            continue
        record = scored_by_pos.get(pos_of_doc[doc_idx])
        if record is not None:
            merged.append(record)
    return merged


def _cmd_pack(args: argparse.Namespace, out) -> int:
    import time as timelib

    from .runtime.pack import PackedIndex
    from .runtime.store import verify_shard, write_shard

    if args.network and args.synthetic:
        raise SystemExit("--network and --synthetic are mutually exclusive")
    if args.synthetic is not None:
        from .semnet.generator import GeneratorConfig, generate_network

        try:
            network = generate_network(GeneratorConfig(
                n_concepts=args.synthetic,
                seed=args.seed,
                gloss_style=args.gloss_style,
            ))
        except ValueError as exc:
            raise SystemExit(str(exc))
    elif args.network:
        network = _load_network(args.network)
    else:
        network = default_lexicon()
    start = timelib.perf_counter()
    index = PackedIndex(network)
    fingerprint = None if args.no_fingerprint else network.fingerprint()
    try:
        info = write_shard(index, args.out, fingerprint=fingerprint)
    except OSError as exc:
        raise SystemExit(f"cannot write shard {args.out}: {exc}")
    elapsed = timelib.perf_counter() - start
    out.write(
        f"packed {info['concepts']} concepts -> {info['path']} "
        f"({info['shard_bytes']} bytes, {elapsed:.2f}s)\n"
    )
    if args.verify:
        stats = verify_shard(args.out)
        out.write(
            f"verified: body CRC ok, {stats['ancestor_entries']} closure "
            f"entries, fingerprint {stats['fingerprint'] or 'unstamped'}\n"
        )
    return 0


def _profile_summary(profiler, top: int = 15) -> str:
    """The hottest frames of a batch run, formatted for the summary.

    Sorted by cumulative time so pipeline stages surface above their
    leaf callees; under ``--workers > 1`` only the parent process is
    profiled (pool dispatch + any serial fallback), which the header
    states to avoid misreading worker-side costs as absent.
    """
    import io
    import pstats

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    lines = [
        line for line in buffer.getvalue().splitlines()
        # pstats emits leading banner/blank lines and absolute paths;
        # keep the table only, trimmed to the repo-relative tail.
        if line.strip()
    ]
    return (
        "--- profile (parent process, top frames by cumulative time) ---\n"
        + "\n".join(lines)
        + "\n"
    )


def _cmd_serve(args: argparse.Namespace, out) -> int:
    from .runtime.executor import DEFAULT_CACHE_SIZE
    from .server import ReproServer, ServerApp, ServerConfig
    from .server.lifecycle import announce_to_stderr
    from .server.protocol import DEFAULT_MAX_BODY_BYTES

    if args.registry and (args.network or args.shard):
        raise SystemExit(
            "--registry is mutually exclusive with --network/--shard"
        )
    if args.network:
        network = _load_network(args.network)
    else:
        network = default_lexicon()
    try:
        server_config = ServerConfig(
            host=args.host,
            port=args.port,
            max_concurrency=args.max_concurrency,
            rate_limit=args.rate_limit,
            burst=args.burst,
            max_body_bytes=(
                args.max_body_bytes if args.max_body_bytes is not None
                else DEFAULT_MAX_BODY_BYTES
            ),
            request_timeout=args.request_timeout,
            drain_timeout=args.drain_timeout,
            metrics_json=args.metrics_json,
            packed=not args.dict_index,
            cache_size=(
                args.cache_size if args.cache_size is not None
                else DEFAULT_CACHE_SIZE
            ),
            workers=args.workers,
            shard=args.shard,
            registry=args.registry,
            network_path=args.network,
            scrub_interval=args.scrub_interval,
            scrub_slice_bytes=args.scrub_slice_bytes,
            scrub_repair=not args.no_scrub_repair,
            reload_interval=args.reload_interval,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    app = ServerApp(
        network, config=_make_config(args), server_config=server_config
    )
    return ReproServer(app).serve(announce=announce_to_stderr)


def _cmd_audit(args: argparse.Namespace, out) -> int:
    network = default_lexicon()
    xsdf = XSDF(network, XSDFConfig())
    tree = xsdf.build_tree(_read(args.file))
    out.write(f"{'label':<18}{'Amb_Deg':>8}{'senses':>8}{'depth':>7}\n")
    for report in rank_nodes(tree, network)[: args.top]:
        out.write(
            f"{report.label:<18}{report.degree:>8.4f}"
            f"{network.polysemy(report.label):>8}"
            f"{tree[report.node_index].depth:>7}\n"
        )
    return 0


def _cmd_lexicon(args: argparse.Namespace, out) -> int:
    network = default_lexicon()
    if args.word is None:
        for key, value in network.stats().items():
            out.write(f"{key:>16}: {value}\n")
        return 0
    senses = network.senses(args.word)
    if not senses:
        out.write(f"{args.word!r} is not in the lexicon\n")
        return 1
    for sense in senses:
        out.write(f"{sense.id:<22} {sense.gloss}\n")
    return 0


def _cmd_match(args: argparse.Namespace, out) -> int:
    from .applications.matching import SemanticMatcher

    network = default_lexicon()
    xsdf = XSDF(network, XSDFConfig(
        sphere_radius=2, strip_target_dimension=True,
    ))
    matcher = SemanticMatcher(xsdf, min_score=args.min_score)
    correspondences = matcher.match(_read(args.file_a), _read(args.file_b))
    if not correspondences:
        out.write("no correspondences found\n")
        return 1
    out.write(f"{'label A':<16}{'label B':<16}{'score':>7}  concepts\n")
    for c in correspondences:
        concepts = (
            c.concept_a if c.exact else f"{c.concept_a} ~ {c.concept_b}"
        )
        out.write(
            f"{c.label_a:<16}{c.label_b:<16}{c.score:>7.3f}  {concepts}\n"
        )
    return 0


def _cmd_validate(args: argparse.Namespace, out) -> int:
    from .semnet.io import NetworkFormatError, load_network
    from .semnet.validate import validate_network

    try:
        network = load_network(args.file)
    except NetworkFormatError as exc:
        out.write(f"unreadable network: {exc}\n")
        return 2
    report = validate_network(network)
    for issue in report.issues:
        out.write(f"{issue.severity:>8}  {issue.code:<16} {issue.message}\n")
    if report.ok:
        out.write(
            f"ok: {len(network)} concepts, "
            f"{len(report.warnings())} warning(s)\n"
        )
        return 0
    out.write(f"invalid: {len(report.errors())} error(s)\n")
    return 1


def _cmd_corpus(args: argparse.Namespace, out) -> int:
    from .datasets.export import export_corpus

    manifest = export_corpus(args.directory, seed=args.seed)
    n_docs = sum(len(d["documents"]) for d in manifest["datasets"])
    out.write(
        f"exported {n_docs} documents across "
        f"{len(manifest['datasets'])} datasets to {args.directory}\n"
    )
    return 0


def _cmd_report(args: argparse.Namespace, out) -> int:
    from .evaluation.experiments import full_report

    report = full_report()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
        out.write(f"report written to {args.out}\n")
    else:
        out.write(report)
    return 0


def _git_changed_files(root: str) -> list[str]:
    """Files git considers modified or untracked under ``root``."""
    import subprocess

    changed: set[str] = set()
    commands = (
        ["git", "-C", root, "diff", "--name-only", "HEAD"],
        ["git", "-C", root, "ls-files", "--others", "--exclude-standard"],
    )
    for command in commands:
        try:
            output = subprocess.run(
                command, capture_output=True, text=True, check=True,
            ).stdout
        except (OSError, subprocess.CalledProcessError) as exc:
            raise SystemExit(
                f"--changed needs a git checkout: {' '.join(command)} "
                f"failed ({exc})"
            )
        changed.update(
            os.path.join(root, line)
            for line in output.splitlines() if line.strip()
        )
    return sorted(changed)


def _cmd_lint(args: argparse.Namespace, out) -> int:
    from .devtools import (
        AnalysisCache,
        RULE_CLASSES,
        all_rules,
        apply_baseline,
        find_project_root,
        lint_paths,
        load_baseline,
        write_baseline,
    )
    from .devtools.reporters import render_json, render_sarif, render_text

    if args.list_rules:
        width = max(len(rule_id) for rule_id in RULE_CLASSES)
        for rule_id, rule_class in sorted(RULE_CLASSES.items()):
            out.write(f"{rule_id:<{width}}  {rule_class.description}\n")
        return 0
    try:
        rules = all_rules(
            args.rules.split(",") if args.rules else None
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    paths: list[str] = []
    for pattern in args.paths or ["src", "tests"]:
        matches = sorted(globlib.glob(pattern, recursive=True))
        if matches:
            paths.extend(matches)
        else:
            # Not a glob hit — keep it literal so missing paths error
            # loudly below instead of silently linting nothing.
            paths.append(pattern)
    for path in paths:
        if not os.path.exists(path):
            raise SystemExit(f"cannot lint {path}: no such file or directory")

    project_root = find_project_root(paths[0]) if paths else None
    changed = None
    if args.changed:
        changed = _git_changed_files(str(project_root or "."))
    cache = None
    if not args.no_cache:
        cache_path = args.cache
        if cache_path is None and args.changed:
            cache_path = os.path.join(
                str(project_root or "."), ".reprolint-cache.json"
            )
        if cache_path is not None:
            cache = AnalysisCache(cache_path)
    findings = lint_paths(
        paths, rules=rules, project_root=project_root,
        cache=cache, jobs=max(args.jobs, 1), changed=changed,
    )
    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        out.write(
            f"baseline with {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} written to "
            f"{args.write_baseline}\n"
        )
        return 0
    if args.baseline:
        try:
            findings = apply_baseline(findings, load_baseline(args.baseline))
        except ValueError as exc:
            raise SystemExit(str(exc))
    if args.format == "json":
        report = render_json(findings)
    elif args.format == "sarif":
        report = render_sarif(findings, rules=rules,
                              project_root=project_root)
    else:
        report = render_text(findings)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
        out.write(
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
            f"written to {args.out}\n"
        )
    else:
        out.write(report)
    return 1 if findings else 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    handlers = {
        "disambiguate": _cmd_disambiguate,
        "batch": _cmd_batch,
        "pack": _cmd_pack,
        "serve": _cmd_serve,
        "audit": _cmd_audit,
        "lexicon": _cmd_lexicon,
        "match": _cmd_match,
        "validate": _cmd_validate,
        "report": _cmd_report,
        "corpus": _cmd_corpus,
        "lint": _cmd_lint,
    }
    try:
        return handlers[args.command](args, out)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — conventional clean exit.
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
