"""XSDF core: ambiguity degree, sphere contexts, hybrid disambiguation.

The paper's primary contribution (Sections 3.3-3.5).
"""

from .ambiguity import (
    AmbiguityReport,
    amb_density,
    amb_depth,
    amb_polysemy,
    ambiguity_degree,
    rank_nodes,
    select_targets,
    struct_degree,
    tree_ambiguity_degree,
    tree_struct_degree,
)
from .candidates import Candidate, candidate_senses, context_sense_ids
from .concept_based import ConceptBasedScorer
from .config import AmbiguityWeights, DisambiguationApproach, XSDFConfig
from .context_based import ContextBasedScorer
from .distances import (
    DensityWeightedDistance,
    DirectionWeightedDistance,
    DistancePolicy,
    UniformDistance,
    resolve_policy,
)
from .discourse import (
    disagreement_rate,
    discourse_votes,
    enforce_one_sense_per_discourse,
)
from .tuning import ParameterGrid, TrialResult, TuningResult, tune
from .context_vector import (
    compound_concept_context_vector,
    concept_context_vector,
    context_vector,
    label_frequencies,
    node_context_vector,
    struct_proximity,
)
from .framework import XSDF
from .results import DisambiguationResult, SenseAssignment
from .sphere import Sphere, SphereMember, build_ring, build_sphere

__all__ = [
    "AmbiguityReport",
    "AmbiguityWeights",
    "Candidate",
    "ConceptBasedScorer",
    "ContextBasedScorer",
    "DensityWeightedDistance",
    "DirectionWeightedDistance",
    "DistancePolicy",
    "ParameterGrid",
    "TrialResult",
    "TuningResult",
    "UniformDistance",
    "resolve_policy",
    "tune",
    "disagreement_rate",
    "discourse_votes",
    "enforce_one_sense_per_discourse",
    "DisambiguationApproach",
    "DisambiguationResult",
    "SenseAssignment",
    "Sphere",
    "SphereMember",
    "XSDF",
    "XSDFConfig",
    "amb_density",
    "amb_depth",
    "amb_polysemy",
    "ambiguity_degree",
    "build_ring",
    "build_sphere",
    "candidate_senses",
    "compound_concept_context_vector",
    "concept_context_vector",
    "context_sense_ids",
    "context_vector",
    "label_frequencies",
    "node_context_vector",
    "rank_nodes",
    "select_targets",
    "struct_degree",
    "struct_proximity",
    "tree_ambiguity_degree",
    "tree_struct_degree",
]
