"""XML node ambiguity degree (paper Section 3.3) and structure degree.

Implements Propositions 1-3, the ambiguity degree of Definition 3, the
compound-label special case (average of the token degrees), target-node
selection by threshold, and the ``Struct_Deg`` measure (Eq. 14) used to
characterize the test corpora in Tables 1 and 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..semnet.network import SemanticNetwork
from ..xmltree.dom import XMLNode, XMLTree
from .config import AmbiguityWeights


def amb_polysemy(label: str, network: SemanticNetwork) -> float:
    """Proposition 1: ``(senses(l) - 1) / (Max(senses(SN)) - 1)``.

    0 for monosemous or unknown labels, 1 for the network's most
    polysemous word.  Unknown labels have no senses to choose between,
    which the paper's Assumption 4 treats as minimal ambiguity.
    """
    n_senses = network.polysemy(label)
    maximum = network.max_polysemy
    if maximum <= 1 or n_senses <= 1:
        return 0.0
    return (n_senses - 1) / (maximum - 1)


def amb_depth(node: XMLNode, tree: XMLTree) -> float:
    """Proposition 2: ``1 - depth(x) / Max(depth(T))``.

    Nodes near the root are broader, hence more ambiguous.
    """
    if tree.max_depth == 0:
        return 1.0
    return 1.0 - node.depth / tree.max_depth


def amb_density(node: XMLNode, tree: XMLTree) -> float:
    """Proposition 3: ``1 - density(x) / Max(density(T))``.

    Distinct children labels hint at a node's meaning, lowering its
    ambiguity.
    """
    if tree.max_density == 0:
        return 1.0
    return 1.0 - node.density / tree.max_density


def _single_token_degree(
    token: str,
    node: XMLNode,
    tree: XMLTree,
    network: SemanticNetwork,
    weights: AmbiguityWeights,
) -> float:
    polysemy = amb_polysemy(token, network)
    depth = amb_depth(node, tree)
    density = amb_density(node, tree)
    numerator = weights.polysemy * polysemy
    denominator = (
        weights.depth * (1.0 - depth) + weights.density * (1.0 - density) + 1.0
    )
    return numerator / denominator


def ambiguity_degree(
    node: XMLNode,
    tree: XMLTree,
    network: SemanticNetwork,
    weights: AmbiguityWeights | None = None,
) -> float:
    """Definition 3: ``Amb_Deg(x, T, SN)`` in [0, 1].

    For a compound label (two tokens with no single concept match) the
    degree is the average of the tokens' degrees (the paper's special
    case).
    """
    w = weights or AmbiguityWeights()
    if node.is_compound:
        degrees = [
            _single_token_degree(token, node, tree, network, w)
            for token in node.tokens
        ]
        return sum(degrees) / len(degrees)
    return _single_token_degree(node.label, node, tree, network, w)


@dataclass(frozen=True)
class AmbiguityReport:
    """Per-node ambiguity assessment produced by :func:`rank_nodes`."""

    node_index: int
    label: str
    degree: float
    polysemy: float
    depth_factor: float
    density_factor: float


def rank_nodes(
    tree: XMLTree,
    network: SemanticNetwork,
    weights: AmbiguityWeights | None = None,
) -> list[AmbiguityReport]:
    """Ambiguity reports for every node, most ambiguous first."""
    w = weights or AmbiguityWeights()
    reports = []
    for node in tree:
        reports.append(
            AmbiguityReport(
                node_index=node.index,
                label=node.label,
                degree=ambiguity_degree(node, tree, network, w),
                polysemy=amb_polysemy(node.label, network),
                depth_factor=amb_depth(node, tree),
                density_factor=amb_density(node, tree),
            )
        )
    reports.sort(key=lambda report: (-report.degree, report.node_index))
    return reports


def select_targets(
    tree: XMLTree,
    network: SemanticNetwork,
    threshold: float = 0.0,
    weights: AmbiguityWeights | None = None,
) -> list[XMLNode]:
    """Target nodes with ``Amb_Deg >= threshold`` (paper Section 3.3).

    Nodes whose label (or, for compounds, none of whose tokens) is known
    to the semantic network are never selected — there is no sense
    inventory to disambiguate against.
    """
    w = weights or AmbiguityWeights()
    targets = []
    for node in tree:
        if not _has_any_sense(node, network):
            continue
        if ambiguity_degree(node, tree, network, w) >= threshold:
            targets.append(node)
    return targets


def _has_any_sense(node: XMLNode, network: SemanticNetwork) -> bool:
    if network.has_word(node.label):
        return True
    return any(network.has_word(token) for token in node.tokens)


def struct_degree(
    node: XMLNode,
    tree: XMLTree,
    w_depth: float = 1.0 / 3.0,
    w_fan_out: float = 1.0 / 3.0,
    w_density: float = 1.0 / 3.0,
) -> float:
    """Eq. 14: the structural richness of one node, in [0, 1].

    Sum of normalized depth, fan-out, and density, with weights summing
    to 1 (the experiments use the uniform 1/3 mix).
    """
    total = w_depth + w_fan_out + w_density
    if total <= 0:
        raise ValueError("at least one structure weight must be positive")
    w_depth, w_fan_out, w_density = (
        w_depth / total, w_fan_out / total, w_density / total,
    )
    depth_part = node.depth / tree.max_depth if tree.max_depth else 0.0
    fan_part = node.fan_out / tree.max_fan_out if tree.max_fan_out else 0.0
    density_part = node.density / tree.max_density if tree.max_density else 0.0
    return w_depth * depth_part + w_fan_out * fan_part + w_density * density_part


def tree_ambiguity_degree(
    tree: XMLTree,
    network: SemanticNetwork,
    weights: AmbiguityWeights | None = None,
) -> float:
    """Average ``Amb_Deg`` over all nodes (Table 1 characterization)."""
    degrees = [ambiguity_degree(node, tree, network, weights) for node in tree]
    return sum(degrees) / len(degrees) if degrees else 0.0


def tree_struct_degree(tree: XMLTree) -> float:
    """Average ``Struct_Deg`` over all nodes (Table 1 characterization)."""
    values = [struct_degree(node, tree) for node in tree]
    return sum(values) / len(values) if values else 0.0
