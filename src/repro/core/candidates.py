"""Candidate sense enumeration for XML node labels.

A *candidate* is a tuple of concept ids: a single concept for simple
labels (or compounds matching one concept, e.g. ``first name``), or a
pair ``(s_p, s_q)`` for a true compound label whose two tokens are
looked up separately (the special cases of Definitions 8 and 10).
"""

from __future__ import annotations

from itertools import product

from ..semnet.network import SemanticNetwork
from ..xmltree.dom import XMLNode

#: A sense candidate: one concept id, or one per compound token.
Candidate = tuple[str, ...]


def candidate_senses(node: XMLNode, network: SemanticNetwork) -> list[Candidate]:
    """All sense candidates for ``node``'s label.

    * Label known to the network → one candidate per sense.
    * Compound label, both tokens known → the cross product of the
      tokens' senses (each candidate is a pair).
    * Compound label, one token known → that token's senses.
    * Nothing known → no candidates (the node cannot be disambiguated).
    """
    if network.has_word(node.label):
        return [(sense.id,) for sense in network.senses(node.label)]
    if not node.is_compound:
        return []
    token_senses = [
        [sense.id for sense in network.senses(token)]
        for token in node.tokens
        if network.has_word(token)
    ]
    if not token_senses:
        return []
    if len(token_senses) == 1:
        return [(sense_id,) for sense_id in token_senses[0]]
    return [tuple(combo) for combo in product(*token_senses)]


def context_sense_ids(node: XMLNode, network: SemanticNetwork) -> list[str]:
    """The individual sense ids a *context* node contributes.

    Context nodes enter Definition 8 through ``Max_j Sim(s_p, s_j^i)``;
    for compound context labels with no single concept match, the paper
    processes them "similarly to a compound target node label" — the max
    then ranges over the senses of each token.
    """
    if network.has_word(node.label):
        return [sense.id for sense in network.senses(node.label)]
    if not node.is_compound:
        return []
    out: list[str] = []
    for token in node.tokens:
        out.extend(sense.id for sense in network.senses(token))
    return out
