"""Concept-based semantic disambiguation (paper Definition 8).

For a target node ``x`` with sphere ``S_d(x)`` and candidate sense
``s_p``::

    Concept_Score(s_p) = (1/|S_d(x)|) * sum over x_i in S_d(x) of
        max over senses s_j of x_i's label of
            Sim(s_p, s_j) * w_V(x_i.label)

i.e. every context node votes with its best-matching sense, its vote
scaled by the node's context-vector weight (structural proximity ×
frequency).  For compound candidates ``(s_p, s_q)`` the similarity is
the average of the per-token similarities (Eq. 10).
"""

from __future__ import annotations

from ..semnet.network import SemanticNetwork
from ..similarity.combined import ConceptSimilarity
from .candidates import Candidate, context_sense_ids
from .context_vector import context_vector
from .sphere import Sphere


class ConceptBasedScorer:
    """Scores candidate senses against a sphere context (Definition 8).

    ``sense_cache`` optionally memoizes the inner ``Max_j Sim(s_p,
    s_j^i)`` term per (candidate, context-sense-inventory) key — e.g. a
    :class:`repro.runtime.cache.LRUCache`.  The same context labels
    recur across nodes and documents, so in batch workloads this skips
    most pairwise-similarity lookups entirely; cached values are the
    deterministic max over the identical sense set, leaving every score
    unchanged.
    """

    def __init__(
        self,
        network: SemanticNetwork,
        similarity: ConceptSimilarity,
        sense_cache=None,
    ):
        self._network = network
        self._similarity = similarity
        self._sense_cache = sense_cache
        # Memo for the pruning upper bound's best-sense term, keyed like
        # sense_cache entries; bounds recur exactly as scores do.
        self._bound_cache: dict[tuple[Candidate, tuple[str, ...]], float] = {}

    def _candidate_similarity(self, candidate: Candidate, sense_id: str) -> float:
        """``Sim((s_p, s_q), s_j)`` — the average over candidate parts."""
        total = sum(self._similarity(part, sense_id) for part in candidate)
        return total / len(candidate)

    def _best_sense_similarity(
        self, candidate: Candidate, sense_ids: tuple[str, ...]
    ) -> float:
        """``Max_j Sim(candidate, s_j)`` over one context sense inventory."""
        cache = self._sense_cache
        if cache is None:
            return max(
                self._candidate_similarity(candidate, sense_id)
                for sense_id in sense_ids
            )
        key = (candidate, sense_ids)
        best = cache.get(key)
        if best is None:
            best = max(
                self._candidate_similarity(candidate, sense_id)
                for sense_id in sense_ids
            )
            cache[key] = best
        return best

    def score(self, candidate: Candidate, sphere: Sphere) -> float:
        """``Concept_Score(candidate, S_d(x), SN-bar)`` in [0, 1]."""
        weights = context_vector(sphere)
        total = 0.0
        for member in sphere:
            context_node = member.node
            sense_ids = tuple(context_sense_ids(context_node, self._network))
            if not sense_ids:
                continue
            label_weight = weights[context_node.label]
            total += (
                self._best_sense_similarity(candidate, sense_ids)
                * label_weight
            )
        if not len(sphere):
            return 0.0
        return total / len(sphere)

    def context_inventory(
        self,
        sphere: Sphere,
        vector: dict[str, float] | None = None,
    ) -> list[tuple[tuple[str, ...], float]]:
        """The per-member ``(sense-ids, weight)`` list scoring folds over.

        Built once per sphere (in member order — the accumulation order
        every score follows) and shared between :meth:`score_one`,
        :meth:`upper_bound_one`, and :meth:`score_all`.  ``vector`` lets
        callers supply the sphere's context vector when they already
        hold it (it is read, never mutated).
        """
        weights = vector if vector is not None else context_vector(sphere)
        context: list[tuple[tuple[str, ...], float]] = []
        for member in sphere:
            sense_ids = tuple(context_sense_ids(member.node, self._network))
            if sense_ids:
                context.append((sense_ids, weights[member.node.label]))
        return context

    def score_one(
        self,
        candidate: Candidate,
        context: list[tuple[tuple[str, ...], float]],
        size: int,
    ) -> float:
        """Exact Definition 8 score over a prebuilt context inventory.

        The accumulation is term-for-term the loop :meth:`score_all`
        runs, so scores are bit-identical whether a candidate is scored
        in a batch or alone (exact pruning depends on this).
        """
        total = 0.0
        for sense_ids, label_weight in context:
            total += (
                self._best_sense_similarity(candidate, sense_ids)
                * label_weight
            )
        return total / size if size else 0.0

    def _best_sense_bound(
        self,
        candidate: Candidate,
        sense_ids: tuple[str, ...],
        upper_bound: ConceptSimilarity,
    ) -> float:
        """Upper bound on ``Max_j Sim(candidate, s_j)`` (memoized)."""
        key = (candidate, sense_ids)
        best = self._bound_cache.get(key)
        if best is None:
            best = max(
                sum(upper_bound(part, sense_id) for part in candidate)
                / len(candidate)
                for sense_id in sense_ids
            )
            self._bound_cache[key] = best
        return best

    def upper_bound_one(
        self,
        candidate: Candidate,
        context: list[tuple[tuple[str, ...], float]],
        size: int,
        upper_bound: ConceptSimilarity,
    ) -> float:
        """Float upper bound on :meth:`score_one` for exact pruning.

        Mirrors :meth:`score_one`'s accumulation with every pairwise
        similarity replaced by ``upper_bound`` (a pointwise float
        dominator, e.g. :meth:`repro.similarity.combined
        .CombinedSimilarity.upper_bound`).  Because IEEE rounding is
        monotone and the op sequence is identical, the result dominates
        the exact score in float arithmetic — no epsilon needed.
        """
        total = 0.0
        for sense_ids, label_weight in context:
            total += (
                self._best_sense_bound(candidate, sense_ids, upper_bound)
                * label_weight
            )
        return total / size if size else 0.0

    def score_all(
        self,
        candidates: list[Candidate],
        sphere: Sphere,
        vector: dict[str, float] | None = None,
    ) -> dict[Candidate, float]:
        """Scores for every candidate against one (shared) sphere.

        Computes the context vector and per-node sense inventories once,
        which matters because real documents evaluate dozens of
        candidates against the same context.  Callers that already hold
        the sphere's context vector pass it as ``vector`` (it is read,
        never mutated) so it is not re-derived per scorer.
        """
        context = self.context_inventory(sphere, vector)
        size = len(sphere)
        return {
            candidate: self.score_one(candidate, context, size)
            for candidate in candidates
        }
