"""User-tunable parameters of the XSDF pipeline (paper Figure 3).

The paper stresses that — unlike static predecessors — every stage of
XSDF is user-tunable: the ambiguity-degree weights and threshold
(Section 3.3), the sphere context radius (Section 3.4), the
disambiguation strategy and its weights (Section 3.5), and the semantic
similarity measure mix (Definition 9).  :class:`XSDFConfig` gathers all
of them with the paper's defaults.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..similarity.combined import SimilarityWeights


class DisambiguationApproach(enum.Enum):
    """Which disambiguation process to run (paper Section 3.5)."""

    CONCEPT_BASED = "concept"
    CONTEXT_BASED = "context"
    COMBINED = "combined"


@dataclass(frozen=True)
class AmbiguityWeights:
    """Weights of the polysemy / depth / density ambiguity factors.

    Each lies in [0, 1] and they are *independent* (they do not need to
    sum to one — Definition 3).  ``w_polysemy = 0`` makes every node's
    ambiguity degree 0, effectively disabling target selection.
    """

    polysemy: float = 1.0
    depth: float = 1.0
    density: float = 1.0

    def __post_init__(self) -> None:
        for name in ("polysemy", "depth", "density"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"w_{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class XSDFConfig:
    """Complete parameterization of one XSDF run.

    Attributes
    ----------
    ambiguity_weights:
        The (w_polysemy, w_depth, w_density) mix of Definition 3.
    ambiguity_threshold:
        ``Thresh_Amb`` — nodes with ``Amb_Deg >= threshold`` become
        disambiguation targets; 0 selects every node with a known label.
    sphere_radius:
        The context size ``d`` of Definitions 4-5.  The paper finds
        ``d = 1`` optimal for ambiguous/richly-structured data and
        ``d = 3`` for the rest.
    approach:
        Concept-based, context-based, or the weighted combination.
    concept_weight / context_weight:
        ``w_Concept`` and ``w_Context`` of Eq. 13 (normalized to sum
        to 1 when the combined approach runs).
    similarity_weights:
        The edge/node/gloss mix of Definition 9 (uniform by default, as
        in the paper's experiments).
    vector_measure:
        Vector comparison for the context-based score: ``cosine``
        (paper default), ``jaccard``, or ``pearson``.
    include_values:
        Structure-and-content (True, paper default) vs structure-only.
    distance_policy:
        Extension beyond the paper (default None = Definition 4's edge
        count): a :class:`repro.core.distances.DistancePolicy` (or its
        name, ``"direction"`` / ``"density"``) pricing tree edges, so
        spheres become cost bands.
    strip_target_dimension:
        Extension beyond the paper (default off = paper-faithful): drop
        the target's own label dimension from both context vectors
        before comparing them, removing a self-word bias that favors
        senses with few semantic neighbors.  Dramatically improves the
        context-based process — see the target-dimension ablation.
    prune:
        Exact candidate pruning (default on): run candidates
        best-upper-bound-first and stop once the running best provably
        beats every remaining bound.  The chosen sense and its scores
        are bit-identical to the exhaustive loop; only provably-losing
        candidates are skipped (their entries are then absent from the
        per-candidate ``scores`` breakdown).
    memo:
        Cross-document sphere memoization (default on): identical
        disambiguation situations (target + sphere + config + network)
        replay their memoized outcome instead of recomputing it.
        Results are bit-identical; see :mod:`repro.runtime.memo`.
    """

    ambiguity_weights: AmbiguityWeights = field(default_factory=AmbiguityWeights)
    ambiguity_threshold: float = 0.0
    sphere_radius: int = 2
    approach: DisambiguationApproach = DisambiguationApproach.COMBINED
    concept_weight: float = 0.5
    context_weight: float = 0.5
    similarity_weights: SimilarityWeights = field(default_factory=SimilarityWeights)
    vector_measure: str = "cosine"
    include_values: bool = True
    strip_target_dimension: bool = False
    distance_policy: object | None = None
    prune: bool = True
    memo: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.ambiguity_threshold <= 1.0:
            raise ValueError("ambiguity_threshold must be in [0, 1]")
        if self.sphere_radius < 1:
            raise ValueError("sphere_radius must be >= 1")
        if self.concept_weight < 0 or self.context_weight < 0:
            raise ValueError("approach weights must be non-negative")
        if self.approach is DisambiguationApproach.COMBINED:
            if self.concept_weight + self.context_weight <= 0:
                raise ValueError("combined approach needs a positive weight")
        if self.vector_measure not in ("cosine", "jaccard", "pearson"):
            raise ValueError(f"unknown vector measure {self.vector_measure!r}")

    @property
    def normalized_approach_weights(self) -> tuple[float, float]:
        """(w_Concept, w_Context) normalized to sum to 1 (Eq. 13)."""
        total = self.concept_weight + self.context_weight
        if total <= 0:
            return (0.5, 0.5)
        return (self.concept_weight / total, self.context_weight / total)
