"""Context-based semantic disambiguation (paper Definition 10).

Compares the target node's sphere context vector in the XML tree with
the sphere context vector of each candidate sense in the semantic
network; the sense whose semantic neighborhood "looks most like" the
node's structural neighborhood wins::

    Context_Score(s_p) = cos(V_d(x), V_d(s_p))

For compound candidates the concept spheres are unioned before the
vector is built (Eq. 12).  Concept vectors are cached per (concept,
radius): the same senses recur across target nodes and documents.
"""

from __future__ import annotations

from ..semnet.network import SemanticNetwork
from ..similarity.vector import VECTOR_MEASURES
from .candidates import Candidate
from .context_vector import (
    compound_concept_context_vector,
    concept_context_vector,
    context_vector,
)
from .sphere import Sphere


class ContextBasedScorer:
    """Scores candidate senses by sphere-vector comparison (Definition 10)."""

    def __init__(
        self,
        network: SemanticNetwork,
        radius: int,
        vector_measure: str = "cosine",
        strip_target_dimension: bool = False,
    ):
        if vector_measure not in VECTOR_MEASURES:
            raise ValueError(f"unknown vector measure {vector_measure!r}")
        self._network = network
        self._radius = radius
        self._measure = VECTOR_MEASURES[vector_measure]
        self._strip = strip_target_dimension
        self._vector_cache: dict[Candidate, dict[str, float]] = {}

    def _candidate_vector(self, candidate: Candidate) -> dict[str, float]:
        cached = self._vector_cache.get(candidate)
        if cached is not None:
            return cached
        if len(candidate) == 1:
            vector = concept_context_vector(
                self._network, candidate[0], self._radius
            )
        else:
            vector = compound_concept_context_vector(
                self._network, candidate, self._radius
            )
        self._vector_cache[candidate] = vector
        return vector

    @staticmethod
    def _strip_target_dimensions(
        vector: dict[str, float], sphere: Sphere
    ) -> dict[str, float]:
        """Drop the target's own label/token dimensions from a vector.

        The target label appears in *every* candidate sense's sphere (it
        is the sphere center) and in the XML sphere whenever siblings
        share the label, so it carries no discriminative signal — but
        under cosine normalization it inflates the score of senses with
        *few* neighbors (their vectors concentrate on their own words).

        This is an **extension beyond the paper**: Definition 10 keeps
        the dimension, and the resulting self-word bias is a plausible
        cause of the paper's observation that the context-based process
        underperforms and is context-size-sensitive.  Enable it with
        ``XSDFConfig(strip_target_dimension=True)``; the ablation
        benchmark quantifies the effect.
        """
        drop = {sphere.center.label, *sphere.center.tokens}
        return {k: v for k, v in vector.items() if k not in drop}

    def score(self, candidate: Candidate, sphere: Sphere) -> float:
        """``Context_Score(candidate, S_d(x), SN)`` in [0, 1]."""
        return self.score_all([candidate], sphere)[candidate]

    def score_all(
        self,
        candidates: list[Candidate],
        sphere: Sphere,
        vector: dict[str, float] | None = None,
    ) -> dict[Candidate, float]:
        """Scores for every candidate against one (shared) XML vector.

        ``vector`` lets callers supply the sphere's context vector when
        they already computed it (read-only; stripping builds a new
        dict) instead of re-deriving it here.
        """
        xml_vector = vector if vector is not None else context_vector(sphere)
        if self._strip:
            xml_vector = self._strip_target_dimensions(xml_vector, sphere)
        scores: dict[Candidate, float] = {}
        for candidate in candidates:
            concept_vector = self._candidate_vector(candidate)
            if self._strip:
                concept_vector = self._strip_target_dimensions(
                    concept_vector, sphere
                )
            scores[candidate] = self._measure(xml_vector, concept_vector)
        return scores
