"""Sphere context vectors (paper Definitions 6-7).

The context of a target node is represented as a sparse weighted vector
whose dimensions are the distinct node labels of its sphere
neighborhood.  Weights combine:

* *structural proximity* (Assumption 5): ``Struct(x_i, S_d(x)) =
  1 - Dist(x, x_i) / (d + 1)`` — closer context nodes influence
  disambiguation more, and even the outermost ring keeps a non-null
  weight;
* *occurrence frequency* (Assumption 6): ``Freq(l, S_d(x))`` sums the
  structural proximities of all sphere nodes carrying label ``l``;
* normalization: ``w(l) = 2 * Freq / (|S_d(x)| + 1)`` keeps weights in
  [0, 1].

The same construction applies to concept spheres in the semantic network
(Section 3.5.2): rings follow semantic relations, and each concept
contributes its weight to *every* synonym word it carries — the
"linguistic pre-processing of concept labels" step, which maximizes the
overlap between XML label dimensions and concept word dimensions.
"""

from __future__ import annotations

from ..semnet.network import SemanticNetwork
from ..xmltree.dom import XMLNode, XMLTree
from .sphere import Sphere, build_sphere


def struct_proximity(distance: int, radius: int) -> float:
    """``Struct`` factor of Definition 7 for one context node."""
    return 1.0 - distance / (radius + 1.0)


def label_frequencies(sphere: Sphere) -> dict[str, float]:
    """``Freq(l, S_d(x))`` for every distinct label in the sphere.

    The ``Struct`` factor depends only on the ring distance, so it is
    derived once per distinct distance (same expression and operand
    order as :func:`struct_proximity` — the floats are identical) and
    reused across the members of each ring.
    """
    frequencies: dict[str, float] = {}
    radius_plus_one = sphere.radius + 1.0
    ring_weights: dict[float, float] = {}
    frequencies_get = frequencies.get
    for member in sphere:
        distance = member.distance
        weight = ring_weights.get(distance)
        if weight is None:
            weight = 1.0 - distance / radius_plus_one
            ring_weights[distance] = weight
        label = member.node.label
        frequencies[label] = frequencies_get(label, 0.0) + weight
    return frequencies


def context_vector(sphere: Sphere) -> dict[str, float]:
    """The XML context vector ``V_d(x)`` (Definition 6-7).

    Definition 7 claims ``w = 2 * Freq / (|S|+1)`` lies in [0, 1], but
    its implicit maximum (every sphere node sharing one label at
    ``Struct = 1/2``) only holds for ``d = 1``: for larger radii a label
    concentrated at distance 1 carries ``Struct > 1/2`` per occurrence
    and the ratio exceeds 1 (found by property-based testing).  Weights
    are therefore clamped; relative ordering — all that scoring uses —
    is unaffected except in that degenerate single-label regime.
    """
    normalizer = (len(sphere) + 1.0) / 2.0
    return {
        label: min(1.0, freq / normalizer)
        for label, freq in label_frequencies(sphere).items()
    }


def node_context_vector(
    tree: XMLTree, node: XMLNode, radius: int
) -> dict[str, float]:
    """Convenience: build the sphere and its context vector in one call."""
    return context_vector(build_sphere(tree, node, radius))


def concept_context_vector(
    network: SemanticNetwork, concept_id: str, radius: int
) -> dict[str, float]:
    """The semantic-network context vector ``V_d(s_p)`` of one concept.

    Rings follow all semantic relation types (Definition 2's ``R``); a
    concept at distance ``dist`` contributes ``Struct = 1 - dist/(d+1)``
    to the dimension of each of its synonym words.  Normalization
    divides by ``(|S_d(s_p)| + 1) / 2`` exactly as in the XML case.
    """
    distances = network.sphere(concept_id, radius)
    frequencies: dict[str, float] = {}
    for cid, dist in distances.items():
        weight = struct_proximity(dist, radius)
        for word in network.concept(cid).words:
            frequencies[word] = frequencies.get(word, 0.0) + weight
    normalizer = (len(distances) + 1.0) / 2.0
    return {word: freq / normalizer for word, freq in frequencies.items()}


def compound_concept_context_vector(
    network: SemanticNetwork, concept_ids: tuple[str, ...], radius: int
) -> dict[str, float]:
    """Context vector of a sense *combination* (Definition 10 special case).

    The sphere of ``(s_p, s_q)`` is the union ``S_d(s_p) ∪ S_d(s_q)``; a
    concept reachable from both keeps its minimal distance.
    """
    merged: dict[str, int] = {}
    for concept_id in concept_ids:
        for cid, dist in network.sphere(concept_id, radius).items():
            if cid not in merged or dist < merged[cid]:
                merged[cid] = dist
    frequencies: dict[str, float] = {}
    for cid, dist in merged.items():
        weight = struct_proximity(dist, radius)
        for word in network.concept(cid).words:
            frequencies[word] = frequencies.get(word, 0.0) + weight
    normalizer = (len(merged) + 1.0) / 2.0
    return {word: freq / normalizer for word, freq in frequencies.items()}
