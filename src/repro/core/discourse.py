"""One-sense-per-discourse post-processing (extension).

Gale, Church & Yarowsky's classic observation: within one discourse, a
word overwhelmingly keeps a single sense.  XML documents behave the same
way — every ``<line>`` in one play edition means the spoken verse — but
Definition 8/10 scores each node independently, so a noisy local context
can flip isolated occurrences of a label to a minority sense.

:func:`enforce_one_sense_per_discourse` revisits a
:class:`~repro.core.results.DisambiguationResult` and, for each label
whose occurrences disagree, re-assigns every occurrence to the sense
with the largest *total score mass* across the document — each node
votes with the score it gave that candidate, so confident locals
outvote noisy ones.  Nodes that did not consider the winning candidate
(possible for compound labels with differing token sets) are left
untouched.

This is an extension beyond the paper; the discourse ablation benchmark
quantifies its effect per group.

Voting reads the per-candidate ``scores`` tables, so it composes best
with ``XSDFConfig(prune=False)``: exact candidate pruning (on by
default) omits provably-losing candidates from ``scores``, which leaves
each node's *chosen* sense untouched but shrinks the vote mass
minority senses can accumulate.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import replace

from .candidates import Candidate
from .results import DisambiguationResult, SenseAssignment


def discourse_votes(
    result: DisambiguationResult,
) -> dict[str, dict[Candidate, float]]:
    """Per-label total score mass of every candidate across the document."""
    votes: dict[str, dict[Candidate, float]] = defaultdict(
        lambda: defaultdict(float)
    )
    for assignment in result.assignments:
        for candidate, score in assignment.scores.items():
            votes[assignment.label][candidate] += score
    return {label: dict(cands) for label, cands in votes.items()}


def enforce_one_sense_per_discourse(
    result: DisambiguationResult,
) -> DisambiguationResult:
    """Re-assign disagreeing labels to their document-level best sense.

    Returns a new result; the input is not mutated.  Assignments whose
    label occurs once, or whose occurrences already agree, are reused
    as-is.
    """
    votes = discourse_votes(result)
    winners: dict[str, Candidate] = {}
    for label, candidates in votes.items():
        # Deterministic: highest mass, ties toward the candidate id.
        winners[label] = min(
            candidates, key=lambda c: (-candidates[c], c)
        )
    revised: list[SenseAssignment] = []
    for assignment in result.assignments:
        winner = winners[assignment.label]
        if assignment.chosen == winner or winner not in assignment.scores:
            revised.append(assignment)
            continue
        revised.append(
            replace(
                assignment,
                chosen=winner,
                score=assignment.scores[winner],
            )
        )
    return DisambiguationResult(
        assignments=revised,
        n_nodes=result.n_nodes,
        n_targets=result.n_targets,
        radius=result.radius,
    )


def disagreement_rate(result: DisambiguationResult) -> float:
    """Fraction of multi-occurrence labels whose senses disagree."""
    senses_by_label: dict[str, set[Candidate]] = defaultdict(set)
    occurrences: dict[str, int] = defaultdict(int)
    for assignment in result.assignments:
        senses_by_label[assignment.label].add(assignment.chosen)
        occurrences[assignment.label] += 1
    multi = [label for label, n in occurrences.items() if n > 1]
    if not multi:
        return 0.0
    disagreeing = sum(
        1 for label in multi if len(senses_by_label[label]) > 1
    )
    return disagreeing / len(multi)
