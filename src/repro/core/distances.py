"""Alternative XML tree node distance functions (paper future work).

Section 3.4.1: "our approach can be straightforwardly extended to
consider different kinds of tree node distance functions (including
edge weights, density, or direction)" — the paper defers this to future
work; this module implements it.

A :class:`DistancePolicy` prices each tree edge; sphere construction
(:func:`repro.core.sphere.build_sphere`) then runs a uniform-cost search
instead of plain BFS, and every ring becomes a cost band.  Policies:

* :class:`UniformDistance` — every edge costs 1 (Definition 4, default);
* :class:`DirectionWeightedDistance` — ascending (toward the root) and
  descending edges cost differently, e.g. making a node's subtree count
  as closer context than its ancestors;
* :class:`DensityWeightedDistance` — edges through high fan-out hubs
  cost more: a context node reachable only through a 40-child container
  says less about the target than one reached through a focused chain.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..xmltree.dom import XMLNode


class DistancePolicy(ABC):
    """Prices one tree edge between a parent and one of its children."""

    #: Identifier used in configuration / reporting.
    name: str = "policy"

    @abstractmethod
    def edge_cost(self, parent: XMLNode, child: XMLNode, ascending: bool) -> float:
        """Cost of crossing the (parent, child) edge.

        ``ascending`` is True when the traversal moves from ``child``
        toward ``parent`` (i.e. toward the root).
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class UniformDistance(DistancePolicy):
    """Definition 4: distance = number of edges."""

    name = "uniform"

    def edge_cost(self, parent: XMLNode, child: XMLNode, ascending: bool) -> float:
        """Every edge costs 1 (the paper's plain hop count)."""
        return 1.0


class DirectionWeightedDistance(DistancePolicy):
    """Different costs for ascending vs descending edges.

    ``ascending_cost > descending_cost`` biases the sphere toward the
    target's subtree (descendants describe a node's content); the
    reverse biases it toward ancestors (they describe its role).
    """

    name = "direction"

    def __init__(self, ascending_cost: float = 1.0, descending_cost: float = 1.0):
        if ascending_cost <= 0 or descending_cost <= 0:
            raise ValueError("edge costs must be positive")
        self.ascending_cost = ascending_cost
        self.descending_cost = descending_cost

    def edge_cost(self, parent: XMLNode, child: XMLNode, ascending: bool) -> float:
        """The configured cost for this edge's direction."""
        return self.ascending_cost if ascending else self.descending_cost


class DensityWeightedDistance(DistancePolicy):
    """Hub penalty: edges into/out of high fan-out nodes cost more.

    The cost of an edge is ``1 + penalty * (fan_out(parent) - 1) /
    max_fan_out`` using the parent's fan-out (the hub being crossed), so
    a chain costs ~1 per edge while a 40-way container dilutes its
    children's mutual relevance.
    """

    name = "density"

    def __init__(self, penalty: float = 1.0, max_fan_out: int = 32):
        if penalty < 0:
            raise ValueError("penalty must be non-negative")
        if max_fan_out < 1:
            raise ValueError("max_fan_out must be >= 1")
        self.penalty = penalty
        self.max_fan_out = max_fan_out

    def edge_cost(self, parent: XMLNode, child: XMLNode, ascending: bool) -> float:
        """1 plus a penalty growing with the parent's fan-out."""
        spread = min(max(parent.fan_out - 1, 0), self.max_fan_out)
        return 1.0 + self.penalty * spread / self.max_fan_out


def resolve_policy(policy: DistancePolicy | str | None) -> DistancePolicy:
    """Accept a policy object, a name, or None (uniform)."""
    if policy is None:
        return UniformDistance()
    if isinstance(policy, DistancePolicy):
        return policy
    names = {
        "uniform": UniformDistance,
        "direction": DirectionWeightedDistance,
        "density": DensityWeightedDistance,
    }
    try:
        return names[policy]()
    except KeyError:
        raise ValueError(f"unknown distance policy {policy!r}") from None
