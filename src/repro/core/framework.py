"""The XSDF orchestrator (paper Figure 3).

Chains the four modules end to end:

1. **linguistic pre-processing** — tag names and values are tokenized,
   stop-word-filtered, stemmed, and compound-resolved against the
   semantic network while the XML tree is built;
2. **node selection** — the ambiguity degree measure picks target nodes
   above ``Thresh_Amb``;
3. **context definition** — each target gets a sphere neighborhood of
   the configured radius and its context vector;
4. **semantic disambiguation** — concept-based, context-based, or the
   weighted combination (Eq. 13) picks the best sense per target.

Typical use::

    from repro import XSDF, XSDFConfig
    from repro.semnet import default_lexicon

    xsdf = XSDF(default_lexicon(), XSDFConfig(sphere_radius=2))
    result = xsdf.disambiguate_document(xml_text)
    semantic_xml = xsdf.to_semantic_xml(xml_text)
"""

from __future__ import annotations

from ..linguistics.pipeline import LinguisticPipeline
from ..semnet.ic import InformationContent
from ..semnet.network import SemanticNetwork
from ..similarity.combined import CombinedSimilarity, ConceptSimilarity
from ..xmltree.dom import XMLNode, XMLTree, build_tree
from ..xmltree.parser import parse
from ..xmltree.serializer import serialize_semantic_tree
from .ambiguity import ambiguity_degree, select_targets
from .candidates import Candidate, candidate_senses
from .concept_based import ConceptBasedScorer
from .config import DisambiguationApproach, XSDFConfig
from .context_based import ContextBasedScorer
from .context_vector import context_vector
from .distances import resolve_policy
from .results import DisambiguationResult, SenseAssignment
from .sphere import build_sphere


class XSDF:
    """XML Semantic Disambiguation Framework.

    Parameters
    ----------
    network:
        The reference semantic network (e.g. the curated lexicon).
    config:
        Pipeline parameters; defaults follow the paper.
    similarity:
        Optional pre-built concept similarity (shares caches across
        framework instances); by default a :class:`CombinedSimilarity`
        with the configured weights is created, computing information
        content from the network's frequencies once.
    index:
        Optional :class:`repro.runtime.index.SemanticIndex` or
        :class:`repro.runtime.pack.PackedIndex` built over ``network``.
        Routes the default similarity through precomputed
        taxonomy/IC/gloss tables (the packed form through interned
        flat-array kernels) — sense choices and scores are
        bit-identical with and without it.  Ignored when ``similarity``
        is supplied.
    similarity_cache:
        Optional external pairwise-similarity memo (e.g.
        :class:`repro.runtime.cache.LRUCache`) replacing the default
        unbounded dict inside :class:`CombinedSimilarity`.  Ignored
        when ``similarity`` is supplied.
    sense_cache:
        Optional memo for the concept-based scorer's best-sense term
        (``Max_j Sim(candidate, s_j)`` per context sense inventory);
        scores are unchanged, repeated context labels get cheaper.
    metrics:
        Optional :class:`repro.runtime.metrics.MetricsRegistry`.  When
        set, the pipeline records per-stage latency (parse, select,
        sphere, score) and document/target counters; the default
        ``None`` keeps every hot path exactly as uninstrumented.
    """

    def __init__(
        self,
        network: SemanticNetwork,
        config: XSDFConfig | None = None,
        similarity: ConceptSimilarity | None = None,
        index=None,
        similarity_cache=None,
        sense_cache=None,
        metrics=None,
    ):
        self.network = network
        self.config = config or XSDFConfig()
        self.index = index
        self.similarity_cache = similarity_cache
        self.sense_cache = sense_cache
        self.metrics = metrics
        self.pipeline = LinguisticPipeline(known=network.has_word)
        if similarity is None:
            needs_ic = self.config.similarity_weights.node > 0
            if index is not None:
                ic = index.ic if needs_ic else None
            else:
                ic = InformationContent(network) if needs_ic else None
            similarity = CombinedSimilarity(
                network,
                weights=self.config.similarity_weights,
                ic=ic,
                index=index,
                cache=similarity_cache,
            )
        self._concept_scorer = ConceptBasedScorer(
            network, similarity, sense_cache=sense_cache
        )
        self._distance_policy = (
            None
            if self.config.distance_policy is None
            else resolve_policy(self.config.distance_policy)
        )
        self._context_scorer = ContextBasedScorer(
            network,
            self.config.sphere_radius,
            self.config.vector_measure,
            strip_target_dimension=self.config.strip_target_dimension,
        )

    # -- tree construction -------------------------------------------------

    def build_tree(self, xml_text: str) -> XMLTree:
        """Parse XML text into a pre-processed rooted labeled tree."""
        m = self.metrics
        if m is None:
            document = parse(xml_text)
            return build_tree(
                document.root,
                include_values=self.config.include_values,
                label_processor=self.pipeline.process_label,
                value_processor=self.pipeline.process_value,
            )
        with m.timer("parse"):
            document = parse(xml_text)
            return build_tree(
                document.root,
                include_values=self.config.include_values,
                label_processor=self.pipeline.process_label,
                value_processor=self.pipeline.process_value,
            )

    # -- disambiguation ------------------------------------------------------

    def disambiguate_document(self, xml_text: str) -> DisambiguationResult:
        """Full pipeline: XML text in, sense assignments out."""
        m = self.metrics
        if m is not None:
            m.count("documents")
            with m.timer("document"):
                return self.disambiguate_tree(self.build_tree(xml_text))
        return self.disambiguate_tree(self.build_tree(xml_text))

    def disambiguate_tree(
        self, tree: XMLTree, targets: list[XMLNode] | None = None
    ) -> DisambiguationResult:
        """Run selection + disambiguation over an already-built tree.

        ``targets`` overrides ambiguity-based selection — the evaluation
        harness passes the pre-selected gold nodes so every system
        disambiguates the same set (paper Section 4.3).
        """
        m = self.metrics
        if targets is None:
            if m is None:
                targets = select_targets(
                    tree,
                    self.network,
                    threshold=self.config.ambiguity_threshold,
                    weights=self.config.ambiguity_weights,
                )
            else:
                with m.timer("select"):
                    targets = select_targets(
                        tree,
                        self.network,
                        threshold=self.config.ambiguity_threshold,
                        weights=self.config.ambiguity_weights,
                    )
        assignments = []
        for node in targets:
            assignment = self.disambiguate_node(tree, node)
            if assignment is not None:
                assignments.append(assignment)
        if m is not None:
            m.count("nodes", len(tree))
            m.count("targets", len(targets))
            m.count("assignments", len(assignments))
        return DisambiguationResult(
            assignments=assignments,
            n_nodes=len(tree),
            n_targets=len(targets),
            radius=self.config.sphere_radius,
        )

    def disambiguate_node(
        self, tree: XMLTree, node: XMLNode
    ) -> SenseAssignment | None:
        """Disambiguate a single node; None when it has no candidates."""
        candidates = candidate_senses(node, self.network)
        if not candidates:
            return None
        m = self.metrics
        if m is None:
            sphere = build_sphere(
                tree, node, self.config.sphere_radius,
                policy=self._distance_policy,
            )
            concept_scores, context_scores, combined = self._score(
                candidates, sphere
            )
        else:
            with m.timer("sphere"):
                sphere = build_sphere(
                    tree, node, self.config.sphere_radius,
                    policy=self._distance_policy,
                )
            with m.timer("score"):
                concept_scores, context_scores, combined = self._score(
                    candidates, sphere
                )
        chosen = self._pick(combined)
        return SenseAssignment(
            node_index=node.index,
            label=node.label,
            chosen=chosen,
            score=combined[chosen],
            concept_score=concept_scores.get(chosen, 0.0),
            context_score=context_scores.get(chosen, 0.0),
            ambiguity=ambiguity_degree(
                node, tree, self.network, self.config.ambiguity_weights
            ),
            scores=combined,
        )

    def _score(self, candidates: list[Candidate], sphere):
        """Per-candidate concept, context, and final scores (Eq. 13)."""
        approach = self.config.approach
        concept_scores: dict[Candidate, float] = {}
        context_scores: dict[Candidate, float] = {}
        # Both scorers weight by the same Definition 7 vector; derive it
        # once per sphere instead of once per scorer.
        vector = context_vector(sphere)
        if approach in (
            DisambiguationApproach.CONCEPT_BASED,
            DisambiguationApproach.COMBINED,
        ):
            concept_scores = self._concept_scorer.score_all(
                candidates, sphere, vector=vector
            )
        if approach in (
            DisambiguationApproach.CONTEXT_BASED,
            DisambiguationApproach.COMBINED,
        ):
            context_scores = self._context_scorer.score_all(
                candidates, sphere, vector=vector
            )
        if approach is DisambiguationApproach.CONCEPT_BASED:
            combined = dict(concept_scores)
        elif approach is DisambiguationApproach.CONTEXT_BASED:
            combined = dict(context_scores)
        else:
            w_concept, w_context = self.config.normalized_approach_weights
            combined = {
                candidate: (
                    w_concept * concept_scores[candidate]
                    + w_context * context_scores[candidate]
                )
                for candidate in candidates
            }
        return concept_scores, context_scores, combined

    @staticmethod
    def _pick(scores: dict[Candidate, float]) -> Candidate:
        """Arg-max with a deterministic tie-break (sense-rank order).

        Candidates are enumerated in sense-rank order, so on ties the
        more frequent (earlier) sense wins — the conventional WSD
        fallback.
        """
        best: Candidate | None = None
        best_score = float("-inf")
        for candidate, score in scores.items():
            if score > best_score:
                best = candidate
                best_score = score
        assert best is not None
        return best

    # -- output ------------------------------------------------------------------

    def to_semantic_xml(self, xml_text: str) -> str:
        """Disambiguate and serialize the semantic XML tree (Figure 4)."""
        tree = self.build_tree(xml_text)
        result = self.disambiguate_tree(tree)
        return serialize_semantic_tree(tree, result.concept_map(), self.network)
