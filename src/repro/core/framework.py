"""The XSDF orchestrator (paper Figure 3).

Chains the four modules end to end:

1. **linguistic pre-processing** — tag names and values are tokenized,
   stop-word-filtered, stemmed, and compound-resolved against the
   semantic network while the XML tree is built;
2. **node selection** — the ambiguity degree measure picks target nodes
   above ``Thresh_Amb``;
3. **context definition** — each target gets a sphere neighborhood of
   the configured radius and its context vector;
4. **semantic disambiguation** — concept-based, context-based, or the
   weighted combination (Eq. 13) picks the best sense per target.

Typical use::

    from repro import XSDF, XSDFConfig
    from repro.semnet import default_lexicon

    xsdf = XSDF(default_lexicon(), XSDFConfig(sphere_radius=2))
    result = xsdf.disambiguate_document(xml_text)
    semantic_xml = xsdf.to_semantic_xml(xml_text)
"""

from __future__ import annotations

from ..linguistics.pipeline import LinguisticPipeline
from ..semnet.ic import InformationContent
from ..semnet.network import SemanticNetwork
from ..similarity.combined import CombinedSimilarity, ConceptSimilarity
from ..xmltree.dom import XMLNode, XMLTree, build_tree
from ..xmltree.parser import parse
from ..xmltree.serializer import serialize_semantic_tree
from .ambiguity import ambiguity_degree, select_targets
from .candidates import Candidate, candidate_senses
from .concept_based import ConceptBasedScorer
from .config import DisambiguationApproach, XSDFConfig
from .context_based import ContextBasedScorer
from .context_vector import context_vector
from .distances import resolve_policy
from .results import DisambiguationResult, SenseAssignment
from .sphere import build_sphere


class XSDF:
    """XML Semantic Disambiguation Framework.

    Parameters
    ----------
    network:
        The reference semantic network (e.g. the curated lexicon).
    config:
        Pipeline parameters; defaults follow the paper.
    similarity:
        Optional pre-built concept similarity (shares caches across
        framework instances); by default a :class:`CombinedSimilarity`
        with the configured weights is created, computing information
        content from the network's frequencies once.
    index:
        Optional :class:`repro.runtime.index.SemanticIndex` or
        :class:`repro.runtime.pack.PackedIndex` built over ``network``.
        Routes the default similarity through precomputed
        taxonomy/IC/gloss tables (the packed form through interned
        flat-array kernels) — sense choices and scores are
        bit-identical with and without it.  Ignored when ``similarity``
        is supplied.
    similarity_cache:
        Optional external pairwise-similarity memo (e.g.
        :class:`repro.runtime.cache.LRUCache`) replacing the default
        unbounded dict inside :class:`CombinedSimilarity`.  Ignored
        when ``similarity`` is supplied.
    sense_cache:
        Optional memo for the concept-based scorer's best-sense term
        (``Max_j Sim(candidate, s_j)`` per context sense inventory);
        scores are unchanged, repeated context labels get cheaper.
    sphere_memo:
        Optional :class:`repro.runtime.memo.SphereMemo` replaying whole
        disambiguation outcomes for repeated (target, sphere, config,
        network) situations.  By default one is created when
        ``config.memo`` is on and no custom ``similarity`` callable was
        supplied (a custom callable cannot be fingerprinted into the
        memo key, so memoization is skipped for safety).  Replayed
        results are bit-identical to fresh computation.
    metrics:
        Optional :class:`repro.runtime.metrics.MetricsRegistry`.  When
        set, the pipeline records per-stage latency (parse, select,
        sphere, score) and document/target counters; the default
        ``None`` keeps every hot path exactly as uninstrumented.
    """

    def __init__(
        self,
        network: SemanticNetwork,
        config: XSDFConfig | None = None,
        similarity: ConceptSimilarity | None = None,
        index=None,
        similarity_cache=None,
        sense_cache=None,
        sphere_memo=None,
        metrics=None,
    ):
        self.network = network
        self.config = config or XSDFConfig()
        self.index = index
        self.similarity_cache = similarity_cache
        self.sense_cache = sense_cache
        self.metrics = metrics
        self.pipeline = LinguisticPipeline(known=network.has_word)
        user_supplied_similarity = similarity is not None
        self._user_similarity = user_supplied_similarity
        #: Cumulative degradation-ladder counters (monotone): each rung
        #: that fires while scoring bumps one of these.  The ladder only
        #: swaps *bit-identical* implementations (packed -> dict index ->
        #: network walk, memoized -> fresh, pruned -> exhaustive), so
        #: results never change — only speed and these counters do.
        self.degrade_stats = {
            "index_downgrades": 0,
            "memo_disabled": 0,
            "prune_disabled": 0,
            "packed_decode": 0,
        }
        self._prune_degraded = False
        # Typed faults that trigger an index downgrade instead of a
        # document failure; imported lazily (runtime imports core).
        from ..runtime.pack import PackedIndexError

        self._index_faults: tuple[type[BaseException], ...] = (
            PackedIndexError,
        )
        if similarity is None:
            similarity = self._build_similarity(index)
        self._similarity = similarity
        # Exact pruning needs the combined measure's upper_bound(); any
        # other similarity callable falls back to exhaustive scoring.
        self._prune = self.config.prune and isinstance(
            similarity, CombinedSimilarity
        )
        if (
            sphere_memo is None
            and self.config.memo
            and not user_supplied_similarity
        ):
            from ..runtime.memo import SphereMemo

            sphere_memo = SphereMemo(self.config, network.fingerprint())
        self.sphere_memo = sphere_memo
        #: Cumulative exact-pruning counters (pruned candidates were
        #: *provably* losing; evaluated ones were scored exactly).
        self.prune_stats = {
            "candidates_evaluated": 0,
            "candidates_pruned": 0,
        }
        self._concept_scorer = ConceptBasedScorer(
            network, similarity, sense_cache=sense_cache
        )
        self._distance_policy = (
            None
            if self.config.distance_policy is None
            else resolve_policy(self.config.distance_policy)
        )
        self._context_scorer = ContextBasedScorer(
            network,
            self.config.sphere_radius,
            self.config.vector_measure,
            strip_target_dimension=self.config.strip_target_dimension,
        )

    # -- degradation ladder --------------------------------------------------

    def _build_similarity(self, index) -> CombinedSimilarity:
        """Default combined similarity against the given index rung."""
        needs_ic = self.config.similarity_weights.node > 0
        if index is not None:
            ic = index.ic if needs_ic else None
        else:
            ic = InformationContent(self.network) if needs_ic else None
        return CombinedSimilarity(
            self.network,
            weights=self.config.similarity_weights,
            ic=ic,
            index=index,
            cache=self.similarity_cache,
        )

    @property
    def index_rung(self) -> str:
        """Current rung of the index ladder.

        ``packed`` / ``dict`` / ``network`` for the default similarity
        stack, ``custom`` when the caller supplied its own similarity.
        """
        if self._user_similarity:
            return "custom"
        if self.index is None:
            return "network"
        return "packed" if getattr(self.index, "is_packed", False) else "dict"

    def _downgrade_index(self) -> bool:
        """Drop one rung: packed -> dict index -> bare network walk.

        Rebuilds the similarity/scorer stack against the next rung with
        the same external caches; every rung is bit-identical (the
        pack/index parity contract), so cached values stay valid and
        results are unchanged.  Returns False at the bottom of the
        ladder — or when a user-supplied similarity owns the index —
        letting the fault propagate as a document failure.
        """
        if self._user_similarity or self.index is None:
            return False
        if getattr(self.index, "is_packed", False):
            from ..runtime.index import SemanticIndex

            new_index = SemanticIndex(self.network)
        else:
            new_index = None
        self.index = new_index
        self._similarity = self._build_similarity(new_index)
        self._concept_scorer = ConceptBasedScorer(
            self.network, self._similarity, sense_cache=self.sense_cache
        )
        self._prune = (
            self.config.prune
            and not self._prune_degraded
            and isinstance(self._similarity, CombinedSimilarity)
        )
        self.degrade_stats["index_downgrades"] += 1
        m = self.metrics
        if m is not None:
            m.count("degrade_index_downgrades")
            m.event("degrade", kind="index_downgrade", rung=self.index_rung)
        return True

    def _disable_memo(self) -> None:
        """Memoized -> fresh rung: drop the sphere memo, keep scoring."""
        self.sphere_memo = None
        self.degrade_stats["memo_disabled"] += 1
        m = self.metrics
        if m is not None:
            m.count("degrade_memo_disabled")
            m.event("degrade", kind="memo_disabled")

    def _disable_prune(self) -> None:
        """Pruned -> exhaustive rung: stop bounding, score everything."""
        self._prune = False
        self._prune_degraded = True
        self.degrade_stats["prune_disabled"] += 1
        m = self.metrics
        if m is not None:
            m.count("degrade_prune_disabled")
            m.event("degrade", kind="prune_disabled")

    # -- tree construction -------------------------------------------------

    def build_tree(self, xml_text: str) -> XMLTree:
        """Parse XML text into a pre-processed rooted labeled tree."""
        m = self.metrics
        if m is None:
            document = parse(xml_text)
            return build_tree(
                document.root,
                include_values=self.config.include_values,
                label_processor=self.pipeline.process_label,
                value_processor=self.pipeline.process_value,
            )
        with m.timer("parse"):
            document = parse(xml_text)
            return build_tree(
                document.root,
                include_values=self.config.include_values,
                label_processor=self.pipeline.process_label,
                value_processor=self.pipeline.process_value,
            )

    # -- disambiguation ------------------------------------------------------

    def disambiguate_document(self, xml_text: str) -> DisambiguationResult:
        """Full pipeline: XML text in, sense assignments out."""
        m = self.metrics
        if m is not None:
            m.count("documents")
            with m.timer("document"):
                return self.disambiguate_tree(self.build_tree(xml_text))
        return self.disambiguate_tree(self.build_tree(xml_text))

    def disambiguate_tree(
        self, tree: XMLTree, targets: list[XMLNode] | None = None
    ) -> DisambiguationResult:
        """Run selection + disambiguation over an already-built tree.

        ``targets`` overrides ambiguity-based selection — the evaluation
        harness passes the pre-selected gold nodes so every system
        disambiguates the same set (paper Section 4.3).
        """
        m = self.metrics
        if targets is None:
            if m is None:
                targets = select_targets(
                    tree,
                    self.network,
                    threshold=self.config.ambiguity_threshold,
                    weights=self.config.ambiguity_weights,
                )
            else:
                with m.timer("select"):
                    targets = select_targets(
                        tree,
                        self.network,
                        threshold=self.config.ambiguity_threshold,
                        weights=self.config.ambiguity_weights,
                    )
        assignments = []
        for node in targets:
            assignment = self.disambiguate_node(tree, node)
            if assignment is not None:
                assignments.append(assignment)
        if m is not None:
            m.count("nodes", len(tree))
            m.count("targets", len(targets))
            m.count("assignments", len(assignments))
        return DisambiguationResult(
            assignments=assignments,
            n_nodes=len(tree),
            n_targets=len(targets),
            radius=self.config.sphere_radius,
        )

    def disambiguate_node(
        self, tree: XMLTree, node: XMLNode
    ) -> SenseAssignment | None:
        """Disambiguate a single node; None when it has no candidates."""
        candidates = candidate_senses(node, self.network)
        if not candidates:
            return None
        m = self.metrics
        if m is None:
            sphere = build_sphere(
                tree, node, self.config.sphere_radius,
                policy=self._distance_policy,
            )
            concept_scores, context_scores, combined, chosen = (
                self._score_resilient(candidates, sphere)
            )
        else:
            with m.timer("sphere"):
                sphere = build_sphere(
                    tree, node, self.config.sphere_radius,
                    policy=self._distance_policy,
                )
            with m.timer("score"):
                concept_scores, context_scores, combined, chosen = (
                    self._score_resilient(candidates, sphere)
                )
        return SenseAssignment(
            node_index=node.index,
            label=node.label,
            chosen=chosen,
            score=combined[chosen],
            concept_score=concept_scores.get(chosen, 0.0),
            context_score=context_scores.get(chosen, 0.0),
            ambiguity=ambiguity_degree(
                node, tree, self.network, self.config.ambiguity_weights
            ),
            scores=combined,
        )

    def _score_resilient(self, candidates: list[Candidate], sphere):
        """:meth:`_score_memoized` behind the degradation ladder.

        A typed packed-index fault (``PackedIndexError`` and subclasses
        — CRC mismatch, truncation, inconsistent tables) downgrades the
        index one rung and rescores the node from scratch; anything
        else, or a fault at the bottom of the ladder, propagates as a
        document failure for the executor's fault isolation to record.
        """
        while True:
            try:
                return self._score_memoized(candidates, sphere)
            except self._index_faults:
                if not self._downgrade_index():
                    raise

    def _score_memoized(self, candidates: list[Candidate], sphere):
        """:meth:`_score`, replayed from the sphere memo when possible.

        The memo key (:func:`repro.runtime.memo.sphere_signature`)
        covers the complete input of the scoring function — frozen
        config and network fingerprints, the target, and the ordered
        member sequence — so replayed entries are bit-identical to
        fresh computation.
        """
        memo = self.sphere_memo
        if memo is None:
            return self._score(candidates, sphere)
        try:
            signature = memo.signature(sphere)
            entry = memo.get(signature)
        except Exception:  # lint: disable=broad-except  # memoized -> fresh rung
            self._disable_memo()
            return self._score(candidates, sphere)
        m = self.metrics
        if entry is not None:
            if m is not None:
                m.count("memo_hits")
            chosen, combined_items, concept_items, context_items = entry
            # Fresh dicts per assignment: SenseAssignment exposes the
            # scores mapping, so callers must not share one instance.
            return (
                dict(concept_items),
                dict(context_items),
                dict(combined_items),
                chosen,
            )
        if m is not None:
            m.count("memo_misses")
        concept_scores, context_scores, combined, chosen = self._score(
            candidates, sphere
        )
        try:
            memo.put(
                signature,
                (
                    chosen,
                    tuple(combined.items()),
                    tuple(concept_scores.items()),
                    tuple(context_scores.items()),
                ),
            )
        except Exception:  # lint: disable=broad-except  # memoized -> fresh rung
            self._disable_memo()
        return concept_scores, context_scores, combined, chosen

    def _score(self, candidates: list[Candidate], sphere):
        """Per-candidate concept, context, and final scores (Eq. 13).

        Returns ``(concept_scores, context_scores, combined, chosen)``.
        With pruning active, ``combined`` (and ``concept_scores``)
        contain only the candidates that were actually evaluated —
        every skipped candidate was *provably* below the winner.
        """
        approach = self.config.approach
        # Both scorers weight by the same Definition 7 vector; derive it
        # once per sphere instead of once per scorer.
        vector = context_vector(sphere)
        if (
            self._prune
            and approach is not DisambiguationApproach.CONTEXT_BASED
            and len(candidates) > 1
        ):
            try:
                return self._score_pruned(candidates, sphere, vector)
            except self._index_faults:
                # Typed index faults belong to the index ladder, not the
                # prune rung — let _score_resilient downgrade the index.
                raise
            except Exception:  # lint: disable=broad-except  # pruned -> exhaustive rung
                self._disable_prune()
                # Fall through to the exhaustive path: it never uses
                # upper bounds, and its scores are bit-identical.
        concept_scores: dict[Candidate, float] = {}
        context_scores: dict[Candidate, float] = {}
        if approach in (
            DisambiguationApproach.CONCEPT_BASED,
            DisambiguationApproach.COMBINED,
        ):
            concept_scores = self._concept_scorer.score_all(
                candidates, sphere, vector=vector
            )
        if approach in (
            DisambiguationApproach.CONTEXT_BASED,
            DisambiguationApproach.COMBINED,
        ):
            context_scores = self._context_scorer.score_all(
                candidates, sphere, vector=vector
            )
        if approach is DisambiguationApproach.CONCEPT_BASED:
            combined = dict(concept_scores)
        elif approach is DisambiguationApproach.CONTEXT_BASED:
            combined = dict(context_scores)
        else:
            w_concept, w_context = self.config.normalized_approach_weights
            combined = {
                candidate: (
                    w_concept * concept_scores[candidate]
                    + w_context * context_scores[candidate]
                )
                for candidate in candidates
            }
        self.prune_stats["candidates_evaluated"] += len(candidates)
        if self.metrics is not None:
            self.metrics.count("candidates_evaluated", len(candidates))
        return concept_scores, context_scores, combined, self._pick(combined)

    def _score_pruned(
        self,
        candidates: list[Candidate],
        sphere,
        vector: dict[str, float],
    ):
        """Best-bound-first scoring with an exact early stop.

        Candidates are evaluated in decreasing order of a float upper
        bound on their final score (the cheap context-based component is
        computed exactly for all candidates; only the expensive
        concept-based sum is bounded).  Once the running best provably
        dominates every remaining bound under :meth:`_pick`'s
        ``(score, sense-rank)`` order, the rest are skipped.  Because
        the bound dominates the true score *in float arithmetic* (see
        :meth:`ConceptBasedScorer.upper_bound_one`) and the evaluated
        scores use the identical operation sequence as the exhaustive
        path, the chosen sense and all reported scores are
        bit-identical to exhaustive scoring.
        """
        approach = self.config.approach
        scorer = self._concept_scorer
        context = scorer.context_inventory(sphere, vector)
        size = len(sphere)
        combined_approach = approach is DisambiguationApproach.COMBINED
        if combined_approach:
            w_concept, w_context = self.config.normalized_approach_weights
            context_scores = self._context_scorer.score_all(
                candidates, sphere, vector=vector
            )
        else:
            w_concept, w_context = 1.0, 0.0
            context_scores = {}
        upper = self._similarity.upper_bound
        ranked = []
        for rank, candidate in enumerate(candidates):
            concept_ub = scorer.upper_bound_one(
                candidate, context, size, upper
            )
            if combined_approach:
                bound = (
                    w_concept * concept_ub
                    + w_context * context_scores[candidate]
                )
            else:
                bound = concept_ub
            ranked.append((bound, rank, candidate))
        # Descending bound, ascending sense rank on equal bounds, so the
        # break below can never skip a candidate that _pick would take.
        ranked.sort(key=lambda item: (-item[0], item[1]))
        concept_scores: dict[Candidate, float] = {}
        combined: dict[Candidate, float] = {}
        best: Candidate | None = None
        best_score = float("-inf")
        best_rank = -1
        evaluated = 0
        for bound, rank, candidate in ranked:
            # A remaining candidate can only beat (best_score,
            # best_rank) in _pick's order if its bound exceeds the best
            # score, or ties it with an earlier sense rank.  The sort
            # order makes every later candidate skippable too.
            if bound < best_score or (
                bound == best_score and rank > best_rank
            ):
                break
            concept = scorer.score_one(candidate, context, size)
            concept_scores[candidate] = concept
            if combined_approach:
                score = (
                    w_concept * concept
                    + w_context * context_scores[candidate]
                )
            else:
                score = concept
            combined[candidate] = score
            evaluated += 1
            if score > best_score or (
                score == best_score and rank < best_rank
            ):
                best = candidate
                best_score = score
                best_rank = rank
        stats = self.prune_stats
        stats["candidates_evaluated"] += evaluated
        stats["candidates_pruned"] += len(candidates) - evaluated
        m = self.metrics
        if m is not None:
            m.count("candidates_evaluated", evaluated)
            m.count("candidates_pruned", len(candidates) - evaluated)
        assert best is not None
        return concept_scores, context_scores, combined, best

    @staticmethod
    def _pick(scores: dict[Candidate, float]) -> Candidate:
        """Arg-max with a deterministic tie-break (sense-rank order).

        Candidates are enumerated in sense-rank order, so on ties the
        more frequent (earlier) sense wins — the conventional WSD
        fallback.
        """
        best: Candidate | None = None
        best_score = float("-inf")
        for candidate, score in scores.items():
            if score > best_score:
                best = candidate
                best_score = score
        assert best is not None
        return best

    # -- output ------------------------------------------------------------------

    def to_semantic_xml(self, xml_text: str) -> str:
        """Disambiguate and serialize the semantic XML tree (Figure 4)."""
        tree = self.build_tree(xml_text)
        result = self.disambiguate_tree(tree)
        return serialize_semantic_tree(tree, result.concept_map(), self.network)
