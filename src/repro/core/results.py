"""Result types produced by the XSDF pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from .candidates import Candidate


@dataclass(frozen=True)
class SenseAssignment:
    """The outcome of disambiguating one target node.

    ``chosen`` is the winning candidate (one concept id, or a pair for
    compound labels); ``scores`` records the full per-candidate score
    breakdown so callers can inspect margins and runner-ups.
    """

    node_index: int
    label: str
    chosen: Candidate
    score: float
    concept_score: float
    context_score: float
    ambiguity: float
    scores: dict[Candidate, float] = field(default_factory=dict, hash=False)

    @property
    def concept_id(self) -> str:
        """The primary concept id (first element of the candidate)."""
        return self.chosen[0]

    @property
    def margin(self) -> float:
        """Winning score minus the runner-up score (0 if unique)."""
        others = [s for c, s in self.scores.items() if c != self.chosen]
        if not others:
            return self.score
        return self.score - max(others)


@dataclass
class DisambiguationResult:
    """Everything one XSDF run produced for one document tree."""

    assignments: list[SenseAssignment]
    n_nodes: int
    n_targets: int
    radius: int

    def assignment_for(self, node_index: int) -> SenseAssignment | None:
        """The assignment covering this node, if it was a target."""
        for assignment in self.assignments:
            if assignment.node_index == node_index:
                return assignment
        return None

    def concept_map(self) -> dict[int, str]:
        """Mapping node preorder index -> chosen primary concept id.

        This is the shape :func:`repro.xmltree.serialize_semantic_tree`
        consumes to emit the semantic XML tree.
        """
        return {a.node_index: a.concept_id for a in self.assignments}

    def to_dict(self) -> dict:
        """JSON-ready representation of the result.

        Candidates are rendered as lists of concept ids; per-candidate
        score breakdowns are preserved with ``"+"``-joined keys so the
        document round-trips through ``json.dumps``.
        """
        return {
            "n_nodes": self.n_nodes,
            "n_targets": self.n_targets,
            "radius": self.radius,
            "assignments": [
                {
                    "node_index": a.node_index,
                    "label": a.label,
                    "chosen": list(a.chosen),
                    "score": a.score,
                    "concept_score": a.concept_score,
                    "context_score": a.context_score,
                    "ambiguity": a.ambiguity,
                    "scores": {
                        "+".join(candidate): score
                        for candidate, score in a.scores.items()
                    },
                }
                for a in self.assignments
            ],
        }

    @property
    def coverage(self) -> float:
        """Fraction of targets that received a sense."""
        if self.n_targets == 0:
            return 0.0
        return len(self.assignments) / self.n_targets
