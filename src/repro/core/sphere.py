"""XML sphere neighborhoods (paper Definitions 4-5).

An XML *ring* ``R_d(x)`` is the set of nodes at exactly ``d`` edges from
the target node ``x`` in the undirected document tree; an XML *sphere*
``S_d(x)`` collects the rings at distances up to ``d``.  The sphere is
the disambiguation context: it covers ancestors, descendants, *and*
siblings uniformly, unlike the parent-node / root-path / sub-tree
contexts of prior work (the paper's Motivation 2).

Following the paper's worked example (Figure 7, vector ``V_1(T[2])``
where the target's own label carries weight), the sphere includes its
center at distance 0.  The paper's prose for ``V_2`` counts the sphere
without its center — an internal inconsistency; the center-inclusive
reading reproduces ``V_1`` exactly, and since the alternative only
rescales every weight by the same constant, cosine comparisons and
arg-max decisions are identical under both readings (see DESIGN.md).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

from ..xmltree.dom import XMLNode, XMLTree
from .distances import DistancePolicy


@dataclass(frozen=True)
class SphereMember:
    """One node of a sphere neighborhood with its ring distance.

    ``distance`` is an edge count under the default uniform policy and a
    path cost under weighted distance policies (paper future work,
    :mod:`repro.core.distances`).
    """

    node: XMLNode
    distance: float


class Sphere:
    """The sphere neighborhood ``S_d(x)`` of a target node.

    Iterable over :class:`SphereMember` entries (center first, then by
    increasing ring distance in preorder order within each ring).
    """

    def __init__(self, center: XMLNode, radius: int, members: list[SphereMember]):
        self.center = center
        self.radius = radius
        self.members = members

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def ring(self, distance: int) -> list[XMLNode]:
        """The ring ``R_distance(x)`` inside this sphere."""
        return [m.node for m in self.members if m.distance == distance]

    def labels(self) -> list[str]:
        """Distinct labels present in the sphere, in first-seen order."""
        seen: dict[str, None] = {}
        for member in self.members:
            seen.setdefault(member.node.label, None)
        return list(seen)


def build_sphere(
    tree: XMLTree,
    center: XMLNode,
    radius: float,
    policy: DistancePolicy | None = None,
) -> Sphere:
    """Construct ``S_radius(center)`` over ``tree``.

    With the default uniform policy this is the paper's breadth-first
    ring expansion (each node reached once at its minimal edge count).
    With a weighted :class:`~repro.core.distances.DistancePolicy` it
    becomes a uniform-cost search and rings are cost bands (the distance
    function extension the paper defers to future work).
    """
    if radius < 0:
        raise ValueError("sphere radius must be non-negative")
    if policy is None:
        members = _bfs_members(center, radius)
    else:
        members = _dijkstra_members(center, radius, policy)
    # Deterministic order: ring distance, then preorder index.
    members.sort(key=lambda m: (m.distance, m.node.index))
    return Sphere(center, radius, members)


def _neighbors(node: XMLNode) -> list[tuple[XMLNode, bool]]:
    """(neighbor, ascending) pairs for the undirected tree edges."""
    out: list[tuple[XMLNode, bool]] = []
    if node.parent is not None:
        out.append((node.parent, True))
    out.extend((child, False) for child in node.children)
    return out


def _bfs_members(center: XMLNode, radius: float) -> list[SphereMember]:
    # Hot path (one call per target node): the parent/children edges
    # are iterated inline, in the same parent-first order `_neighbors`
    # yields, without allocating a pair list per visited node.
    visited = {center.index}
    members = [SphereMember(center, 0)]
    queue: deque[tuple[XMLNode, int]] = deque([(center, 0)])
    visited_add = visited.add
    members_append = members.append
    queue_append = queue.append
    while queue:
        node, distance = queue.popleft()
        if distance >= radius:
            continue
        next_distance = distance + 1
        parent = node.parent
        if parent is not None and parent.index not in visited:
            visited_add(parent.index)
            members_append(SphereMember(parent, next_distance))
            queue_append((parent, next_distance))
        for child in node.children:
            if child.index not in visited:
                visited_add(child.index)
                members_append(SphereMember(child, next_distance))
                queue_append((child, next_distance))
    return members


def _dijkstra_members(
    center: XMLNode, radius: float, policy: DistancePolicy
) -> list[SphereMember]:
    best: dict[int, float] = {center.index: 0.0}
    nodes: dict[int, XMLNode] = {center.index: center}
    heap: list[tuple[float, int]] = [(0.0, center.index)]
    while heap:
        cost, index = heapq.heappop(heap)
        if cost > best[index]:
            continue  # stale entry
        node = nodes[index]
        for neighbor, ascending in _neighbors(node):
            if ascending:
                edge = policy.edge_cost(neighbor, node, ascending=True)
            else:
                edge = policy.edge_cost(node, neighbor, ascending=False)
            total = cost + edge
            if total > radius + 1e-12:
                continue
            if total < best.get(neighbor.index, float("inf")):
                best[neighbor.index] = total
                nodes[neighbor.index] = neighbor
                heapq.heappush(heap, (total, neighbor.index))
    return [SphereMember(nodes[i], cost) for i, cost in best.items()]


def build_ring(tree: XMLTree, center: XMLNode, distance: int) -> list[XMLNode]:
    """The ring ``R_distance(center)`` (Definition 4)."""
    return build_sphere(tree, center, distance).ring(distance)
