"""Parameter fine-tuning for XSDF (paper future work).

Section 3.3: "the fine-tuning of parameters is an optimization problem
such that parameters should be chosen to maximize disambiguation quality
(through some cost function such as f-measure)" — the paper defers the
optimizer to future work and tunes by hand.  This module implements the
deferred piece as a deterministic grid search: enumerate candidate
configurations, evaluate each on a development document set, return them
ranked by the cost function.

Example::

    from repro.core.tuning import ParameterGrid, tune

    grid = ParameterGrid(
        sphere_radius=(1, 2, 3),
        approach=("concept", "combined"),
    )
    result = tune(network, dev_documents, grid)
    best_config = result.best.config
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Sequence

from ..semnet.network import SemanticNetwork

if TYPE_CHECKING:  # avoid a core <-> datasets import cycle at runtime
    from ..datasets.corpus import GeneratedDocument
from ..similarity.combined import SimilarityWeights
from .config import DisambiguationApproach, XSDFConfig
from .framework import XSDF

_APPROACHES = {
    "concept": DisambiguationApproach.CONCEPT_BASED,
    "context": DisambiguationApproach.CONTEXT_BASED,
    "combined": DisambiguationApproach.COMBINED,
}


@dataclass(frozen=True)
class ParameterGrid:
    """Axes of the configuration search space.

    Every combination of the given values is evaluated; axes left at
    their defaults contribute a single value, so the grid size is the
    product of the customized axes only.
    """

    sphere_radius: Sequence[int] = (1, 2, 3)
    approach: Sequence[str] = ("concept", "context", "combined")
    ambiguity_threshold: Sequence[float] = (0.0,)
    similarity_weights: Sequence[SimilarityWeights] = (SimilarityWeights(),)
    concept_weight: Sequence[float] = (0.5,)
    strip_target_dimension: Sequence[bool] = (False,)

    def configurations(self) -> Iterator[XSDFConfig]:
        """Yield every configuration in the grid, deterministically."""
        axes = itertools.product(
            self.sphere_radius,
            self.approach,
            self.ambiguity_threshold,
            self.similarity_weights,
            self.concept_weight,
            self.strip_target_dimension,
        )
        for radius, approach, threshold, weights, w_concept, strip in axes:
            yield XSDFConfig(
                sphere_radius=radius,
                approach=_APPROACHES[approach],
                ambiguity_threshold=threshold,
                similarity_weights=weights,
                concept_weight=w_concept,
                context_weight=1.0 - w_concept if w_concept <= 1.0 else 0.0,
                strip_target_dimension=strip,
            )

    def __len__(self) -> int:
        return (
            len(self.sphere_radius)
            * len(self.approach)
            * len(self.ambiguity_threshold)
            * len(self.similarity_weights)
            * len(self.concept_weight)
            * len(self.strip_target_dimension)
        )


@dataclass(frozen=True)
class TrialResult:
    """One evaluated configuration."""

    config: XSDFConfig
    f_value: float
    precision: float
    recall: float


@dataclass
class TuningResult:
    """All trials, best first."""

    trials: list[TrialResult] = field(default_factory=list)

    @property
    def best(self) -> TrialResult:
        """The highest-scoring trial (trials are kept sorted)."""
        if not self.trials:
            raise ValueError("no trials were run")
        return self.trials[0]

    def top(self, k: int) -> list[TrialResult]:
        """The ``k`` best trials, best first."""
        return self.trials[:k]


def tune(
    network: SemanticNetwork,
    documents: "list[GeneratedDocument]",
    grid: ParameterGrid | None = None,
) -> TuningResult:
    """Grid-search XSDF configurations against gold-annotated documents.

    The cost function is the f-value over the documents' pre-selected
    evaluation nodes (the same protocol as the paper's experiments).
    Trees are parsed once and shared across trials.  Ties break toward
    earlier (simpler / smaller-radius) grid entries, keeping the result
    deterministic.
    """
    from ..evaluation.harness import evaluate_quality

    grid = grid or ParameterGrid()
    tree_cache: dict = {}
    trials: list[TrialResult] = []
    for order, config in enumerate(grid.configurations()):
        system = XSDF(network, config)
        quality = evaluate_quality(system, documents, network, tree_cache)
        trials.append(
            TrialResult(
                config=config,
                f_value=quality.prf.f_value,
                precision=quality.prf.precision,
                recall=quality.prf.recall,
            )
        )
    order_index = {id(t): i for i, t in enumerate(trials)}
    trials.sort(key=lambda t: (-t.f_value, order_index[id(t)]))
    return TuningResult(trials=trials)
