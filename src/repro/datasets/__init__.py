"""Synthetic test corpora matching the paper's Table 3 collection."""

from .corpus import Corpus, GeneratedDocument
from .export import export_corpus, load_exported_document
from .registry import DATASETS, GROUPS, DatasetSpec, dataset, generate_test_corpus
from .stats import (
    DocumentStats,
    aggregate,
    compute_stats,
    dataset_stats,
    document_tree,
    group_stats,
)

__all__ = [
    "Corpus",
    "DATASETS",
    "DatasetSpec",
    "DocumentStats",
    "GROUPS",
    "GeneratedDocument",
    "aggregate",
    "compute_stats",
    "dataset",
    "dataset_stats",
    "export_corpus",
    "load_exported_document",
    "document_tree",
    "generate_test_corpus",
    "group_stats",
]
