"""Generated test documents and corpora.

A :class:`GeneratedDocument` bundles the XML text of one synthetic test
document with its *gold annotation*: the mapping from (pre-processed)
node label to the concept id a human annotator would assign in that
document's context.  Within a single document a label is used
consistently (in the Shakespeare corpus *line* always means the spoken
verse), which is exactly how the paper's testers annotated: one sense
per label per document.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GeneratedDocument:
    """One synthetic test document plus its gold senses.

    Attributes
    ----------
    dataset:
        Dataset identifier (e.g. ``shakespeare``).
    group:
        Test group 1-4 (ambiguity × structure quadrant, paper Table 1).
    doc_id:
        Index of the document inside its dataset.
    xml:
        The document text (well-formed, DTD-validated at generation).
    gold:
        Label -> concept id.  Labels are the *pre-processed* node labels
        (lowercase, compounds joined by spaces); absent labels carry no
        gold judgment and are excluded from scoring.
    """

    dataset: str
    group: int
    doc_id: int
    xml: str
    gold: dict[str, str] = field(hash=False)

    @property
    def name(self) -> str:
        """Stable document name: ``<dataset>-<two-digit id>``."""
        return f"{self.dataset}-{self.doc_id:02d}"


@dataclass
class Corpus:
    """A set of generated documents spanning the four test groups."""

    documents: list[GeneratedDocument]

    def by_group(self, group: int) -> list[GeneratedDocument]:
        """Documents of one test group."""
        return [doc for doc in self.documents if doc.group == group]

    def by_dataset(self, dataset: str) -> list[GeneratedDocument]:
        """Documents of one named dataset."""
        return [doc for doc in self.documents if doc.dataset == dataset]

    def datasets(self) -> list[str]:
        """Dataset names present, in first-seen order."""
        seen: dict[str, None] = {}
        for doc in self.documents:
            seen.setdefault(doc.dataset, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self):
        return iter(self.documents)
