"""Export the generated test collection to disk.

Writes the synthetic corpora as plain ``.xml`` files (one directory per
dataset) together with machine-readable gold annotations and the DTD
grammars, so the collection can be inspected, diffed, versioned, or fed
to external tools::

    corpus/
      MANIFEST.json             seed, counts, per-dataset index
      shakespeare/
        shakespeare.dtd
        gold.json               label -> concept id
        shakespeare-00.xml
        ...
"""

from __future__ import annotations

import json
from pathlib import Path

from .corpus import Corpus
from .registry import DATASETS, generate_test_corpus


def export_corpus(
    directory: str | Path,
    corpus: Corpus | None = None,
    seed: int = 2015,
) -> dict:
    """Write the collection under ``directory``; returns the manifest.

    ``corpus`` defaults to the standard generated collection for
    ``seed``.  Existing files are overwritten (the export is a pure
    function of the seed, so overwriting is reproducible by design).
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    corpus = corpus or generate_test_corpus(seed)
    manifest: dict = {"seed": seed, "datasets": []}
    for spec in DATASETS:
        dataset_dir = root / spec.name
        dataset_dir.mkdir(exist_ok=True)
        (dataset_dir / spec.grammar).write_text(
            spec.dtd.strip() + "\n", encoding="utf-8"
        )
        documents = corpus.by_dataset(spec.name)
        gold = documents[0].gold if documents else {}
        with open(dataset_dir / "gold.json", "w", encoding="utf-8") as handle:
            json.dump(gold, handle, indent=1, sort_keys=True)
            handle.write("\n")
        names = []
        for document in documents:
            filename = f"{document.name}.xml"
            (dataset_dir / filename).write_text(
                document.xml, encoding="utf-8"
            )
            names.append(filename)
        manifest["datasets"].append(
            {
                "name": spec.name,
                "group": spec.group,
                "grammar": spec.grammar,
                "documents": names,
            }
        )
    with open(root / "MANIFEST.json", "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=1)
        handle.write("\n")
    return manifest


def load_exported_document(path: str | Path) -> tuple[str, dict]:
    """Read one exported document and its dataset's gold map.

    Returns ``(xml_text, gold)``; companion to :func:`export_corpus`
    for tools that consume the on-disk layout.
    """
    document_path = Path(path)
    xml_text = document_path.read_text(encoding="utf-8")
    gold_path = document_path.parent / "gold.json"
    with open(gold_path, encoding="utf-8") as handle:
        gold = json.load(handle)
    return xml_text, gold
