"""Per-dataset synthetic corpus generators (one module per grammar)."""

from . import (
    amazon,
    bib,
    cdcatalog,
    club,
    foodmenu,
    imdb,
    personnel,
    plantcatalog,
    shakespeare,
    sigmod,
)

__all__ = [
    "amazon",
    "bib",
    "cdcatalog",
    "club",
    "foodmenu",
    "imdb",
    "personnel",
    "plantcatalog",
    "shakespeare",
    "sigmod",
]
