"""Group 2 corpus: product feeds (``amazon_product.dtd``).

High ambiguity but *poor* structure: flat uniform records whose field
tags are heavily polysemous (*title*, *line*, *stock*, *order*, *head*,
*state*) with no nesting beyond the record — the quadrant where the
paper finds larger contexts (d=3) necessary because the immediate
neighborhood carries little signal.
"""

from __future__ import annotations

import random

from ..corpus import GeneratedDocument
from .common import company_name, element, price, render

DTD = """
<!ELEMENT products (product+)>
<!ELEMENT product (title, brand, line, stock, order, price, head, state)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT brand (#PCDATA)>
<!ELEMENT line (#PCDATA)>
<!ELEMENT stock (#PCDATA)>
<!ELEMENT order (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT head (#PCDATA)>
<!ELEMENT state (#PCDATA)>
"""

GOLD = {
    "product": "merchandise.n.01",
    "title": "title.n.02",
    "brand": "brand.n.01",
    "line": "line.n.06",
    "stock": "stock.n.01",
    "state": "state.n.02",
    "order": "order.n.01",
    "price": "monetary_value.n.01",
    "head": "head.n.16",
}

_PRODUCT_KINDS = [
    "camera", "lamp", "kettle", "backpack", "blender", "notebook",
    "monitor", "keyboard", "teapot", "scarf", "wallet",
]

_REVIEW_HEADS = [
    "great value for the money", "stopped working after a week",
    "exactly as described", "quality of the merchandise surprised me",
    "would buy again", "shipping was slow",
]


def generate(doc_id: int, rng: random.Random) -> GeneratedDocument:
    """Generate one product feed document."""

    def product():
        kind = rng.choice(_PRODUCT_KINDS)
        return element(
            "product",
            element("title", text=f"{company_name(rng)} {kind}"),
            element("brand", text=company_name(rng)),
            element("line", text=f"{kind} line"),
            element("stock", text=str(rng.randint(0, 40))),
            element("order", text=f"PO-{rng.randint(1000, 9999)}"),
            element("price", text=price(rng)),
            element("head", text=rng.choice(_REVIEW_HEADS)),
            element("state", text=rng.choice(
                ["new", "used", "refurbished", "open box"])),
        )

    root = element(
        "products", *[product() for _ in range(rng.randint(3, 5))]
    )
    return GeneratedDocument(
        dataset="amazon_product",
        group=2,
        doc_id=doc_id,
        xml=render(root, DTD),
        gold=dict(GOLD),
    )
