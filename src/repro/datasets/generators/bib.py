"""Group 3 corpus: bibliography records (Niagara ``bib.dtd``).

Classic book bibliography: wide structure, mostly specific tags, with
*book*/*volume*, *edition*, and *price* carrying mild polysemy.
"""

from __future__ import annotations

import random

from ..corpus import GeneratedDocument
from .common import company_name, element, person_name, price, render, year

DTD = """
<!ELEMENT bib (book+)>
<!ELEMENT book (title, author+, publisher, year, price, edition?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (first, last)>
<!ELEMENT first (#PCDATA)>
<!ELEMENT last (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT edition (#PCDATA)>
"""

GOLD = {
    "bib": "bibliography.n.01",
    "book": "book.n.01",
    "title": "title.n.02",
    "author": "author.n.01",
    "publisher": "publisher.n.01",
    "year": "year.n.01",
    "price": "monetary_value.n.01",
    "edition": "edition.n.01",
}

_SUBJECTS = [
    "Modern Database Systems", "A History of Printing",
    "The Craft of Indexing", "Distributed Algorithms in Practice",
    "Foundations of Information Retrieval", "The Paper Trade",
    "Queries and Answers", "Semantics for Working Programmers",
]


def generate(doc_id: int, rng: random.Random) -> GeneratedDocument:
    """Generate one bibliography document."""

    def book():
        children = [element("title", text=rng.choice(_SUBJECTS))]
        for _ in range(rng.randint(1, 2)):
            given, family = person_name(rng)
            children.append(
                element(
                    "author",
                    element("first", text=given),
                    element("last", text=family),
                )
            )
        children.extend(
            [
                element("publisher", text=company_name(rng)),
                element("year", text=year(rng, 1980, 2014)),
                element("price", text=price(rng, 15, 90)),
            ]
        )
        if rng.random() < 0.4:
            children.append(element("edition", text=str(rng.randint(1, 5))))
        return element("book", *children)

    root = element("bib", *[book() for _ in range(rng.randint(3, 5))])
    return GeneratedDocument(
        dataset="niagara_bib",
        group=3,
        doc_id=doc_id,
        xml=render(root, DTD),
        gold=dict(GOLD),
    )
