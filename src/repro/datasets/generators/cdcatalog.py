"""Group 4 corpus: CD catalogs (W3Schools ``cd_catalog.dtd``).

Low ambiguity, poor structure: a flat catalog of uniform records.  The
residual polysemy (*title*, *artist*, *company*, *country*) is exactly
what keeps Group 4 interesting for the correlation study (Table 2).
"""

from __future__ import annotations

import random

from ..corpus import GeneratedDocument
from .common import COUNTRIES, company_name, element, person_name, price, render, year

DTD = """
<!ELEMENT catalog (cd+)>
<!ELEMENT cd (title, artist, country, company, price, year)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT artist (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT company (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT year (#PCDATA)>
"""

GOLD = {
    "catalog": "catalog.n.01",
    "cd": "cd.n.01",
    "title": "title.n.02",
    "artist": "artist.n.02",
    "country": "country.n.02",
    "company": "company.n.01",
    "price": "monetary_value.n.01",
    "year": "year.n.01",
}

_ALBUMS = [
    "Empire Burlesque", "Hide Your Heart", "Greatest Hits of the Road",
    "Still Got the Blues", "One Night Only", "Romanza for Strings",
    "Midnight Ferry", "Paper Lanterns", "The Long Echo",
]


def generate(doc_id: int, rng: random.Random) -> GeneratedDocument:
    """Generate one CD catalog document."""

    def cd():
        given, family = person_name(rng)
        return element(
            "cd",
            element("title", text=rng.choice(_ALBUMS)),
            element("artist", text=f"{given} {family}"),
            element("country", text=rng.choice(COUNTRIES)),
            element("company", text=company_name(rng)),
            element("price", text=price(rng, 8, 25)),
            element("year", text=year(rng, 1985, 2014)),
        )

    root = element("catalog", *[cd() for _ in range(rng.randint(2, 3))])
    return GeneratedDocument(
        dataset="cd_catalog",
        group=4,
        doc_id=doc_id,
        xml=render(root, DTD),
        gold=dict(GOLD),
    )
