"""Group 4 corpus: sports club rosters (Niagara ``club.dtd``).

Member records with mildly ambiguous roles: *club* (society / golf club
/ nightclub), *position* (job / location / posture), *coach* (trainer /
carriage).
"""

from __future__ import annotations

import random

from ..corpus import GeneratedDocument
from .common import CITIES, element, person_name, render

DTD = """
<!ELEMENT club (city, coach, member+)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT coach (#PCDATA)>
<!ELEMENT member (name, age, position, team?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT age (#PCDATA)>
<!ELEMENT position (#PCDATA)>
<!ELEMENT team (#PCDATA)>
"""

GOLD = {
    "club": "club.n.01",
    "city": "city.n.01",
    "coach": "coach.n.01",
    "member": "member.n.01",
    "name": "name.n.01",
    "age": "age.n.01",
    "position": "position.n.02",
    "team": "team.n.01",
    "president": "president.n.01",
    "secretary": "secretary.n.01",
    "treasurer": "treasurer.n.01",
}

_POSITIONS = ["captain", "president", "secretary", "treasurer", "player"]
_TEAMS = ["first team", "second team", "veterans"]


def generate(doc_id: int, rng: random.Random) -> GeneratedDocument:
    """Generate one club roster document."""

    def member():
        given, family = person_name(rng)
        children = [
            element("name", text=f"{given} {family}"),
            element("age", text=str(rng.randint(18, 59))),
            element("position", text=rng.choice(_POSITIONS)),
        ]
        if rng.random() < 0.5:
            children.append(element("team", text=rng.choice(_TEAMS)))
        return element("member", *children)

    given, family = person_name(rng)
    root = element(
        "club",
        element("city", text=rng.choice(CITIES)),
        element("coach", text=f"{given} {family}"),
        *[member() for _ in range(rng.randint(2, 3))],
    )
    return GeneratedDocument(
        dataset="niagara_club",
        group=4,
        doc_id=doc_id,
        xml=render(root, DTD),
        gold=dict(GOLD),
    )
