"""Shared helpers for the synthetic corpus generators.

Provides a tiny fluent element builder over the parser's
:class:`~repro.xmltree.parser.Element` model, DTD validation plumbing,
and the name/title pools the generators draw values from.
"""

from __future__ import annotations

import random

from ...xmltree.dtd import parse_dtd
from ...xmltree.parser import Element, Text
from ...xmltree.serializer import serialize_element


def element(name: str, *children, text: str | None = None, **attributes) -> Element:
    """Build an :class:`Element` with children / text / attributes."""
    node = Element(name=name, attributes={k: str(v) for k, v in attributes.items()})
    if text is not None:
        node.children.append(Text(str(text)))
    node.children.extend(children)
    return node


def render(root: Element, dtd_text: str | None = None) -> str:
    """Serialize ``root``; validate against ``dtd_text`` when given.

    Generators always pass their grammar here, so every emitted document
    is structurally honest by construction.
    """
    if dtd_text is not None:
        parse_dtd(dtd_text).validate(root)
    return '<?xml version="1.0"?>\n' + serialize_element(root)


#: Pools of person names for value generation.  Includes the Figure 1
#: celebrities (Kelly, Stewart, Hitchcock, Grant, Novak) on purpose —
#: their surname collisions are the paper's running ambiguity example.
FIRST_NAMES = [
    "Grace", "James", "Alfred", "Cary", "Kim", "Gene", "Emmett", "John",
    "Mary", "Robert", "Linda", "Michael", "Barbara", "William", "Susan",
    "David", "Karen", "Richard", "Nancy", "Thomas", "Laura", "Paul",
    "Anna", "Mark", "Julia", "Peter", "Alice", "Henry", "Clara", "Frank",
]

LAST_NAMES = [
    "Kelly", "Stewart", "Hitchcock", "Grant", "Novak", "Miller", "Smith",
    "Johnson", "Brown", "Davis", "Wilson", "Moore", "Taylor", "Anderson",
    "Thomas", "Jackson", "White", "Harris", "Martin", "Thompson",
    "Garcia", "Martinez", "Robinson", "Clark", "Lewis", "Lee", "Walker",
    "Hall", "Allen", "Young",
]

CITIES = [
    "Springfield", "Madison", "Georgetown", "Franklin", "Clinton",
    "Arlington", "Salem", "Fairview", "Bristol", "Dover", "Hudson",
    "Kingston", "Milton", "Newport", "Oxford",
]

STATES = [
    "California", "Texas", "Ohio", "Georgia", "Virginia", "Oregon",
    "Vermont", "Kansas", "Nevada", "Utah", "Iowa", "Maine",
]

COUNTRIES = [
    "USA", "UK", "France", "Germany", "Italy", "Spain", "Canada",
    "Norway", "Sweden", "Japan",
]

COMPANY_SUFFIXES = ["Records", "Media", "Press", "Books", "Music", "House"]


def person_name(rng: random.Random) -> tuple[str, str]:
    """A (first, last) name pair."""
    return rng.choice(FIRST_NAMES), rng.choice(LAST_NAMES)


def company_name(rng: random.Random) -> str:
    """A plausible company name."""
    return f"{rng.choice(LAST_NAMES)} {rng.choice(COMPANY_SUFFIXES)}"


def year(rng: random.Random, start: int = 1950, end: int = 2014) -> int:
    """A publication/production year."""
    return rng.randint(start, end)


def price(rng: random.Random, low: float = 5.0, high: float = 120.0) -> str:
    """A price string with two decimals."""
    return f"{rng.uniform(low, high):.2f}"
