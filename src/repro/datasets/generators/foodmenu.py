"""Group 4 corpus: breakfast menus (W3Schools ``food_menu.dtd``).

The least ambiguous dataset in the paper (average tag polysemy 2.375):
*menu*, *food*, *name*, *price*, *description*, *calories* with flat
structure.
"""

from __future__ import annotations

import random

from ..corpus import GeneratedDocument
from .common import element, price, render

DTD = """
<!ELEMENT menu (food+)>
<!ELEMENT food (name, price, description, calories)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT calories (#PCDATA)>
"""

GOLD = {
    "menu": "menu.n.01",
    "food": "food.n.01",
    "name": "name.n.01",
    "price": "monetary_value.n.01",
    "description": "description.n.01",
    "calories": "calorie.n.01",
    "waffles": "waffle.n.01",
    "toast": "toast.n.01",
    "breakfast": "breakfast.n.01",
}

_DISHES = [
    ("Belgian Waffles", "two waffles with plenty of real maple syrup"),
    ("Strawberry Waffles", "light waffles covered with strawberry berry "
                           "topping and whipped cream"),
    ("Berry Berry Waffles", "waffles covered with assorted fresh berry "
                            "topping"),
    ("French Toast", "thick slices of toast made from our homemade "
                     "bread"),
    ("Homestyle Breakfast", "two eggs with bacon or sausage, toast, and "
                            "our ever popular coffee"),
    ("Pancake Stack", "three pancakes with syrup and whipped cream"),
]


def generate(doc_id: int, rng: random.Random) -> GeneratedDocument:
    """Generate one breakfast menu document."""

    def food(dish):
        name, description = dish
        return element(
            "food",
            element("name", text=name),
            element("price", text=price(rng, 4, 11)),
            element("description", text=description),
            element("calories", text=str(rng.randrange(400, 1000, 50))),
        )

    dishes = rng.sample(_DISHES, k=rng.randint(3, 4))
    root = element("menu", *[food(dish) for dish in dishes])
    return GeneratedDocument(
        dataset="food_menu",
        group=4,
        doc_id=doc_id,
        xml=render(root, DTD),
        gold=dict(GOLD),
    )
