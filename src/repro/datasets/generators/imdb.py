"""Group 3 corpus: movie records (``movies.dtd``, IMDB-style).

The paper's running example domain (Figure 1).  Exercises compound tag
names (``directed_by``, ``FirstName``/``LastName``) and value-level
ambiguity: the celebrity surnames *Kelly*, *Stewart*, *Grant* each have
several person senses in the lexicon.
"""

from __future__ import annotations

import random

from ..corpus import GeneratedDocument
from .common import element, render, year

DTD = """
<!ELEMENT movies (movie+)>
<!ELEMENT movie (name, directed_by, genre, actors, plot?)>
<!ATTLIST movie year CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT directed_by (#PCDATA)>
<!ELEMENT genre (#PCDATA)>
<!ELEMENT actors (actor+)>
<!ELEMENT actor (FirstName, LastName)>
<!ELEMENT FirstName (#PCDATA)>
<!ELEMENT LastName (#PCDATA)>
<!ELEMENT plot (#PCDATA)>
"""

GOLD = {
    "movie": "movie.n.01",
    "name": "name.n.01",
    # ``directed_by`` tokenizes to [directed, by]; "by" is a stop word and
    # "directed" stems to "direct" (unknown) -> the label stays compound.
    "genre": "genre.n.01",
    "actor": "actor.n.01",
    # Compound concept matches: FirstName -> "first name" (one concept).
    "first name": "first_name.n.01",
    "last name": "last_name.n.01",
    "plot": "plot.n.02",
    "year": "year.n.01",
    # Celebrity values (one intended person per surname in this corpus).
    "kelly": "kelly.n.01",
    "stewart": "stewart.n.01",
    "grant": "grant.n.02",
    "novak": "novak.n.01",
    "hitchcock": "hitchcock.n.01",
    "mystery": "mystery.n.01",
    "thriller": "thriller.n.01",
    "comedy": "comedy.n.01",
    "drama": "drama.n.01",
    "romance": "romance.n.01",
    "western": "western.n.01",
}

_MOVIE_TITLES = [
    "Rear Window", "The Silent Harbor", "Night Train to Lisbon",
    "A Corner of the Sky", "The Last Reel", "Shadows on Main Street",
    "The Glass Lighthouse", "Dial Again Tomorrow", "The Forgotten Coast",
    "Letters from the Balcony",
]

_GENRES = ["mystery", "thriller", "comedy", "drama", "romance", "western"]

#: (first, last) pairs kept consistent with the gold surname senses.
_ACTORS = [
    ("Grace", "Kelly"), ("James", "Stewart"), ("Cary", "Grant"),
    ("Kim", "Novak"), ("Mary", "Miller"), ("John", "Walker"),
]

_PLOTS = [
    "A wheelchair bound photographer spies on his neighbors",
    "A detective follows a stranger through the harbor fog",
    "A retired singer returns for one final concert",
    "Two reporters uncover a plot inside the city council",
    "A family inherits a lighthouse with a hidden room",
]


def generate(doc_id: int, rng: random.Random) -> GeneratedDocument:
    """Generate one movie collection document."""

    def actor(pair):
        first, last = pair
        return element(
            "actor",
            element("FirstName", text=first),
            element("LastName", text=last),
        )

    def movie():
        cast = rng.sample(_ACTORS, k=rng.randint(2, 3))
        children = [
            element("name", text=rng.choice(_MOVIE_TITLES)),
            element("directed_by", text="Alfred Hitchcock"),
            element("genre", text=rng.choice(_GENRES)),
            element("actors", *[actor(pair) for pair in cast]),
        ]
        if rng.random() < 0.7:
            children.append(element("plot", text=rng.choice(_PLOTS)))
        return element("movie", *children, year=year(rng, 1950, 1965))

    root = element("movies", *[movie() for _ in range(rng.randint(2, 3))])
    return GeneratedDocument(
        dataset="imdb_movies",
        group=3,
        doc_id=doc_id,
        xml=render(root, DTD),
        gold=dict(GOLD),
    )
