"""Group 4 corpus: personnel records (Niagara ``personnel.dtd``).

Contact-book structure with the paper's flagship Table 2 example: the
*state* tag under *address*, obvious to humans but 7-way ambiguous in
the lexicon.
"""

from __future__ import annotations

import random

from ..corpus import GeneratedDocument
from .common import CITIES, STATES, element, person_name, render

DTD = """
<!ELEMENT personnel (person+)>
<!ELEMENT person (name, email, url?, address)>
<!ELEMENT name (given, family)>
<!ELEMENT given (#PCDATA)>
<!ELEMENT family (#PCDATA)>
<!ELEMENT email (#PCDATA)>
<!ELEMENT url (#PCDATA)>
<!ELEMENT address (street, city, state, zip)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT state (#PCDATA)>
<!ELEMENT zip (#PCDATA)>
"""

GOLD = {
    "personnel": "personnel.n.01",
    "person": "person.n.01",
    "name": "name.n.01",
    "email": "email.n.01",
    "url": "url.n.01",
    "address": "address.n.02",
    "street": "street.n.01",
    "city": "city.n.01",
    "state": "state.n.01",
    "zip": "zip_code.n.01",
    # The bare word "family" has no surname sense in the lexicon (as in
    # WordNet, where only "family name" carries it); annotators map the
    # elliptical tag to the nearest available sense, the social unit.
    "family": "family.n.01",
}

_STREETS = ["Oak", "Maple", "Cedar", "Elm", "Pine", "Walnut", "Chestnut"]


def generate(doc_id: int, rng: random.Random) -> GeneratedDocument:
    """Generate one personnel document."""

    def person():
        given, family = person_name(rng)
        handle = f"{given.lower()}.{family.lower()}"
        children = [
            element(
                "name",
                element("given", text=given),
                element("family", text=family),
            ),
            element("email", text=f"{handle}@example.org"),
        ]
        if rng.random() < 0.5:
            children.append(element("url", text=f"https://example.org/{handle}"))
        children.append(
            element(
                "address",
                element(
                    "street",
                    text=f"{rng.randint(10, 999)} {rng.choice(_STREETS)} Street",
                ),
                element("city", text=rng.choice(CITIES)),
                element("state", text=rng.choice(STATES)),
                element("zip", text=f"{rng.randint(10000, 99999)}"),
            )
        )
        return element("person", *children)

    root = element("personnel", *[person() for _ in range(rng.randint(2, 3))])
    return GeneratedDocument(
        dataset="niagara_personnel",
        group=4,
        doc_id=doc_id,
        xml=render(root, DTD),
        gold=dict(GOLD),
    )
