"""Group 4 corpus: plant catalogs (W3Schools ``plant_catalog.dtd``).

Flat records with the famous *plant* homonymy (flora vs. factory) and
the *light* / *zone* / *common* collisions.
"""

from __future__ import annotations

import random

from ..corpus import GeneratedDocument
from .common import element, price, render

DTD = """
<!ELEMENT catalog (plant+)>
<!ELEMENT plant (common, botanical, zone, light, price, availability)>
<!ELEMENT common (#PCDATA)>
<!ELEMENT botanical (#PCDATA)>
<!ELEMENT zone (#PCDATA)>
<!ELEMENT light (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT availability (#PCDATA)>
"""

GOLD = {
    "catalog": "catalog.n.01",
    "plant": "plant.n.02",
    "common": "common_name.n.01",
    "botanical": "botanical_name.n.01",
    "zone": "zone.n.01",
    "light": "light.n.01",
    "price": "monetary_value.n.01",
    "availability": "availability.n.01",
    "shade": "shade.n.01",
    "sun": "sun.n.01",
}

_PLANTS = [
    ("Bloodroot", "Sanguinaria canadensis"),
    ("Columbine", "Aquilegia canadensis"),
    ("Marsh Marigold", "Caltha palustris"),
    ("Primrose", "Primula vulgaris"),
    ("Bluebell", "Hyacinthoides hispanica"),
    ("Anemone", "Anemone blanda"),
    ("Hosta", "Hosta plantaginea"),
    ("Fern", "Matteuccia struthiopteris"),
]

_LIGHT = ["full sun", "mostly shade", "sun or shade", "mostly sun"]


def generate(doc_id: int, rng: random.Random) -> GeneratedDocument:
    """Generate one plant catalog document."""

    def plant(entry):
        common, botanical = entry
        return element(
            "plant",
            element("common", text=common),
            element("botanical", text=botanical),
            element("zone", text=str(rng.randint(2, 9))),
            element("light", text=rng.choice(_LIGHT)),
            element("price", text=price(rng, 2, 12)),
            element("availability", text=f"{rng.randint(1, 12):02d}{rng.randint(1, 28):02d}2014"),
        )

    entries = rng.sample(_PLANTS, k=rng.randint(2, 3))
    root = element("catalog", *[plant(entry) for entry in entries])
    return GeneratedDocument(
        dataset="plant_catalog",
        group=4,
        doc_id=doc_id,
        xml=render(root, DTD),
        gold=dict(GOLD),
    )
