"""Group 1 corpus: Shakespeare play editions (``shakespeare.dtd``).

High ambiguity *and* rich structure: the tag vocabulary (*play*, *act*,
*scene*, *speech*, *line*, *speaker*, *title*) is heavily polysemous in
the lexicon while the documents are deep, wide, and label-diverse — the
quadrant where the paper's approach shines (Figure 8-9, Group 1).
"""

from __future__ import annotations

import random

from ..corpus import GeneratedDocument
from .common import element, render

DTD = """
<!ELEMENT play (title, fm, personae, act+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT fm (p+)>
<!ELEMENT p (#PCDATA)>
<!ELEMENT personae (persona+)>
<!ELEMENT persona (#PCDATA)>
<!ELEMENT act (title, prologue?, scene+, epilogue?)>
<!ELEMENT prologue (line+)>
<!ELEMENT epilogue (line+)>
<!ELEMENT scene (title, stagedir?, speech+)>
<!ELEMENT stagedir (#PCDATA)>
<!ELEMENT speech (speaker, line+)>
<!ELEMENT speaker (#PCDATA)>
<!ELEMENT line (#PCDATA)>
"""

#: Gold senses for the pre-processed tag labels of this grammar.
GOLD = {
    "play": "play.n.01",
    "title": "title.n.02",
    "fm": "front_matter.n.01",
    "persona": "persona.n.01",
    "act": "act.n.01",
    "prologue": "prologue.n.01",
    "epilogue": "epilogue.n.01",
    "scene": "scene.n.01",
    "stagedir": "stage_direction.n.01",
    "speech": "speech.n.02",
    "speaker": "speaker.n.01",
    "line": "line.n.01",
    # Frequent value tokens with a clear in-context sense.
    "stage": "stage.n.03",
    "tragedy": "tragedy.n.01",
    "drama": "drama.n.01",
}

_TITLES = [
    "The Tragedy of the Winter Court", "A Midsummer Reckoning",
    "The Merchant of the Northern Isles", "The Life of King Edgar",
    "Much Sorrow About the Crown", "The Comedy of the Twin Heralds",
    "The Lamentable Reign of Queen Maud", "Twelfth Knight",
    "The Taming of the Tempest", "Loves Labour Rewarded",
]

# Pure proper names: speaker tags carry no common-noun tokens, so a
# speaker's d=1 context is its parent speech (which pins the gold sense)
# while larger radii pull in the polysemous verse vocabulary — the noise
# the paper blames for degrading large contexts on Group 1.
_PERSONAE = [
    "ORSINO", "MIRANDA", "EDGAR", "MAUD", "BELCH", "MALVOLIO",
    "VIOLA", "SEBASTIAN", "FESTE", "OLIVIA", "CESARIO", "ANTONIO",
]

_LINE_WORDS = [
    "crown", "king", "night", "love", "ghost", "storm",
    "throne", "grave", "honor", "blood", "heart",
    "fortune", "kingdom", "daughter", "banner", "feast", "council",
]


def _line(rng: random.Random) -> str:
    words = rng.sample(_LINE_WORDS, k=rng.randint(4, 7))
    return "O " + " ".join(words)


def generate(doc_id: int, rng: random.Random) -> GeneratedDocument:
    """Generate one play edition."""
    personae = rng.sample(_PERSONAE, k=rng.randint(6, 9))

    def speech():
        return element(
            "speech",
            element("speaker", text=rng.choice(personae)),
            *[element("line", text=_line(rng)) for _ in range(rng.randint(2, 4))],
        )

    def scene(act_no: int, scene_no: int):
        children = [element("title", text=f"Scene {scene_no} of act {act_no}")]
        if rng.random() < 0.4:
            children.append(
                element("stagedir", text="Enter the player upon the stage")
            )
        children.extend(speech() for _ in range(rng.randint(2, 4)))
        return element("scene", *children)

    def act(act_no: int):
        children = [element("title", text=f"Act {act_no}")]
        if act_no == 1 and rng.random() < 0.5:
            children.append(
                element("prologue", element("line", text=_line(rng)))
            )
        children.extend(
            scene(act_no, s + 1) for s in range(rng.randint(2, 3))
        )
        if rng.random() < 0.25:
            children.append(
                element("epilogue", element("line", text=_line(rng)))
            )
        return element("act", *children)

    root = element(
        "play",
        element("title", text=rng.choice(_TITLES)),
        element(
            "fm",
            element("p", text="Text placed in the public domain"),
            element("p", text="A drama edition for the tragedy stage"),
        ),
        element("personae", *[element("persona", text=p) for p in personae]),
        *[act(a + 1) for a in range(rng.randint(3, 4))],
    )
    return GeneratedDocument(
        dataset="shakespeare",
        group=1,
        doc_id=doc_id,
        xml=render(root, DTD),
        gold=dict(GOLD),
    )
