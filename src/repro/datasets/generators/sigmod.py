"""Group 3 corpus: conference proceedings pages (``ProceedingsPage.dtd``).

Low ambiguity, rich structure: bibliographic tags are mostly specific
(*proceedings*, *conference*, *editor*, *publisher*, *abstract*) while
documents are wide (many articles) with diverse children labels.
"""

from __future__ import annotations

import random

from ..corpus import GeneratedDocument
from .common import element, person_name, render, year

DTD = """
<!ELEMENT proceedings (conference, volume, number, editor, publisher, article+)>
<!ELEMENT conference (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT number (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT article (title, authors, page, abstract?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT authors (author+)>
<!ELEMENT author (first, last)>
<!ELEMENT first (#PCDATA)>
<!ELEMENT last (#PCDATA)>
<!ELEMENT page (#PCDATA)>
<!ELEMENT abstract (#PCDATA)>
"""

GOLD = {
    "proceedings": "proceedings.n.01",
    "conference": "conference.n.01",
    "volume": "volume.n.01",
    "number": "issue.n.01",
    "editor": "editor.n.01",
    "publisher": "publisher.n.01",
    "article": "article.n.01",
    "title": "title.n.02",
    "author": "author.n.01",
    "page": "page.n.01",
    "abstract": "abstract.n.01",
    "paper": "paper.n.02",
    "journal": "journal.n.01",
}

_TOPICS = [
    "query optimization", "schema matching", "stream processing",
    "index structures", "transaction recovery", "graph databases",
    "data integration", "semantic caching", "view maintenance",
    "workload forecasting",
]


def generate(doc_id: int, rng: random.Random) -> GeneratedDocument:
    """Generate one proceedings page."""
    start_page = 1

    def article():
        nonlocal start_page
        length = rng.randint(8, 18)
        first, last = start_page, start_page + length
        start_page = last + 1
        topic = rng.choice(_TOPICS)
        author_nodes = []
        for _ in range(rng.randint(1, 3)):
            given, family = person_name(rng)
            author_nodes.append(
                element(
                    "author",
                    element("first", text=given),
                    element("last", text=family),
                )
            )
        children = [
            element("title", text=f"A paper on {topic}"),
            element("authors", *author_nodes),
            element("page", text=f"{first}-{last}"),
        ]
        if rng.random() < 0.5:
            children.append(
                element(
                    "abstract",
                    text=f"This article studies {topic} for the journal reader",
                )
            )
        return element("article", *children)

    given, family = person_name(rng)
    root = element(
        "proceedings",
        element("conference", text=f"Record Conference {year(rng, 1995, 2014)}"),
        element("volume", text=str(rng.randint(20, 44))),
        element("number", text=str(rng.randint(1, 4))),
        element("editor", text=f"{given} {family}"),
        element("publisher", text="Database Press"),
        *[article() for _ in range(rng.randint(4, 6))],
    )
    return GeneratedDocument(
        dataset="sigmod_record",
        group=3,
        doc_id=doc_id,
        xml=render(root, DTD),
        gold=dict(GOLD),
    )
