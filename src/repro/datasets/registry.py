"""The dataset registry: ten datasets, four test groups (paper Table 3).

Each :class:`DatasetSpec` carries the generator, the grammar name, the
group assignment, and the document count of the published table::

    Group 1: shakespeare (10 docs)               — ambiguity+, structure+
    Group 2: amazon_product (10 docs)            — ambiguity+, structure-
    Group 3: sigmod_record (6), imdb_movies (6),
             niagara_bib (8)                     — ambiguity-, structure+
    Group 4: cd_catalog (4), food_menu (4),
             plant_catalog (4), niagara_personnel (4),
             niagara_club (4)                    — ambiguity-, structure-

Note: Table 3's per-dataset counts sum to 60 while the paper's prose
says "80 test documents" — an inconsistency in the original; we follow
the per-dataset counts, which drive every experiment.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable

from .corpus import Corpus, GeneratedDocument
from .generators import (
    amazon,
    bib,
    cdcatalog,
    club,
    foodmenu,
    imdb,
    personnel,
    plantcatalog,
    shakespeare,
    sigmod,
)

#: A document generator: (doc_id, rng) -> GeneratedDocument.
Generator = Callable[[int, random.Random], GeneratedDocument]


@dataclass(frozen=True)
class DatasetSpec:
    """One row of the paper's Table 3."""

    name: str
    group: int
    grammar: str
    n_docs: int
    generate: Generator
    dtd: str
    gold: dict

    def documents(self, seed: int = 2015) -> list[GeneratedDocument]:
        """Generate this dataset's documents deterministically.

        The per-document RNG is seeded from a stable digest (str hashes
        are salted per process, so ``hash()`` would not reproduce).
        """
        out = []
        for doc_id in range(self.n_docs):
            key = f"{seed}:{self.name}:{doc_id}".encode()
            digest = hashlib.sha256(key).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            out.append(self.generate(doc_id, rng))
        return out


DATASETS: tuple[DatasetSpec, ...] = (
    DatasetSpec("shakespeare", 1, "shakespeare.dtd", 10,
                shakespeare.generate, shakespeare.DTD, shakespeare.GOLD),
    DatasetSpec("amazon_product", 2, "amazon_product.dtd", 10,
                amazon.generate, amazon.DTD, amazon.GOLD),
    DatasetSpec("sigmod_record", 3, "ProceedingsPage.dtd", 6,
                sigmod.generate, sigmod.DTD, sigmod.GOLD),
    DatasetSpec("imdb_movies", 3, "movies.dtd", 6,
                imdb.generate, imdb.DTD, imdb.GOLD),
    DatasetSpec("niagara_bib", 3, "bib.dtd", 8,
                bib.generate, bib.DTD, bib.GOLD),
    DatasetSpec("cd_catalog", 4, "cd_catalog.dtd", 4,
                cdcatalog.generate, cdcatalog.DTD, cdcatalog.GOLD),
    DatasetSpec("food_menu", 4, "food_menu.dtd", 4,
                foodmenu.generate, foodmenu.DTD, foodmenu.GOLD),
    DatasetSpec("plant_catalog", 4, "plant_catalog.dtd", 4,
                plantcatalog.generate, plantcatalog.DTD, plantcatalog.GOLD),
    DatasetSpec("niagara_personnel", 4, "personnel.dtd", 4,
                personnel.generate, personnel.DTD, personnel.GOLD),
    DatasetSpec("niagara_club", 4, "club.dtd", 4,
                club.generate, club.DTD, club.GOLD),
)

GROUPS: dict[int, tuple[str, ...]] = {
    1: ("shakespeare",),
    2: ("amazon_product",),
    3: ("sigmod_record", "imdb_movies", "niagara_bib"),
    4: ("cd_catalog", "food_menu", "plant_catalog", "niagara_personnel",
        "niagara_club"),
}


def dataset(name: str) -> DatasetSpec:
    """Look a dataset spec up by name."""
    for spec in DATASETS:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown dataset {name!r}")


def generate_test_corpus(seed: int = 2015) -> Corpus:
    """Generate the full test collection (all datasets, all groups)."""
    documents: list[GeneratedDocument] = []
    for spec in DATASETS:
        documents.extend(spec.documents(seed))
    return Corpus(documents)
