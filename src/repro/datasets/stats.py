"""Document statistics for Tables 1 and 3.

Computes the per-document and per-dataset structural characteristics the
paper reports: node counts, label polysemy, depth, fan-out, density —
plus the average ``Amb_Deg`` / ``Struct_Deg`` pair that defines the four
test groups.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.ambiguity import tree_ambiguity_degree, tree_struct_degree
from ..linguistics.pipeline import LinguisticPipeline
from ..semnet.network import SemanticNetwork
from ..xmltree.dom import XMLTree, build_tree
from ..xmltree.parser import parse
from .corpus import Corpus, GeneratedDocument


@dataclass(frozen=True)
class DocumentStats:
    """Structural statistics of one document tree (Table 3 columns)."""

    n_nodes: int
    avg_polysemy: float
    max_polysemy: int
    avg_depth: float
    max_depth: int
    avg_fan_out: float
    max_fan_out: int
    avg_density: float
    max_density: int
    amb_degree: float
    struct_degree: float


def document_tree(
    document: GeneratedDocument, network: SemanticNetwork
) -> XMLTree:
    """Build the pre-processed tree of a generated document."""
    pipeline = LinguisticPipeline(known=network.has_word)
    return build_tree(
        parse(document.xml).root,
        label_processor=pipeline.process_label,
        value_processor=pipeline.process_value,
    )


def compute_stats(tree: XMLTree, network: SemanticNetwork) -> DocumentStats:
    """All Table 1/3 statistics for one tree."""
    polysemies = [network.polysemy(node.label) for node in tree]
    depths = [node.depth for node in tree]
    fan_outs = [node.fan_out for node in tree]
    densities = [node.density for node in tree]
    n = len(tree)
    return DocumentStats(
        n_nodes=n,
        avg_polysemy=sum(polysemies) / n,
        max_polysemy=max(polysemies),
        avg_depth=sum(depths) / n,
        max_depth=max(depths),
        avg_fan_out=sum(fan_outs) / n,
        max_fan_out=max(fan_outs),
        avg_density=sum(densities) / n,
        max_density=max(densities),
        amb_degree=tree_ambiguity_degree(tree, network),
        struct_degree=tree_struct_degree(tree),
    )


def aggregate(stats: list[DocumentStats]) -> DocumentStats:
    """Average a list of per-document stats (max fields take the max)."""
    if not stats:
        raise ValueError("cannot aggregate empty stats")
    n = len(stats)
    return DocumentStats(
        n_nodes=round(sum(s.n_nodes for s in stats) / n),
        avg_polysemy=sum(s.avg_polysemy for s in stats) / n,
        max_polysemy=max(s.max_polysemy for s in stats),
        avg_depth=sum(s.avg_depth for s in stats) / n,
        max_depth=max(s.max_depth for s in stats),
        avg_fan_out=sum(s.avg_fan_out for s in stats) / n,
        max_fan_out=max(s.max_fan_out for s in stats),
        avg_density=sum(s.avg_density for s in stats) / n,
        max_density=max(s.max_density for s in stats),
        amb_degree=sum(s.amb_degree for s in stats) / n,
        struct_degree=sum(s.struct_degree for s in stats) / n,
    )


def dataset_stats(
    corpus: Corpus, network: SemanticNetwork
) -> dict[str, DocumentStats]:
    """Aggregated statistics per dataset (the rows of Table 3)."""
    out: dict[str, DocumentStats] = {}
    for name in corpus.datasets():
        per_doc = [
            compute_stats(document_tree(doc, network), network)
            for doc in corpus.by_dataset(name)
        ]
        out[name] = aggregate(per_doc)
    return out


def collection_struct_degree(trees: list[XMLTree]) -> float:
    """``Struct_Deg`` averaged over a document set with *shared* maxima.

    Eq. 14 normalizes by ``Max(depth(T))`` etc.; when characterizing a
    whole collection (Table 1), per-document normalization would rate a
    uniformly flat catalog as "deep" (every leaf sits at its tiny local
    maximum).  Normalizing by the collection-wide maxima instead makes
    the group characterization meaningful: deep/wide/diverse documents
    score high, flat ones low.
    """
    if not trees:
        raise ValueError("cannot characterize an empty collection")
    max_depth = max(tree.max_depth for tree in trees) or 1
    max_fan = max(tree.max_fan_out for tree in trees) or 1
    max_density = max(tree.max_density for tree in trees) or 1
    total = 0.0
    n = 0
    for tree in trees:
        for node in tree:
            total += (
                node.depth / max_depth
                + node.fan_out / max_fan
                + node.density / max_density
            ) / 3.0
            n += 1
    return total / n


def group_struct_degrees(
    corpus: Corpus, network: SemanticNetwork
) -> dict[int, float]:
    """Collection-normalized ``Struct_Deg`` per test group (Table 1).

    All four groups share the same normalization maxima so the values
    are comparable across the 2x2 ambiguity-structure quadrants.
    """
    trees_by_group: dict[int, list[XMLTree]] = {}
    all_trees: list[XMLTree] = []
    for doc in corpus:
        tree = document_tree(doc, network)
        trees_by_group.setdefault(doc.group, []).append(tree)
        all_trees.append(tree)
    max_depth = max(tree.max_depth for tree in all_trees) or 1
    max_fan = max(tree.max_fan_out for tree in all_trees) or 1
    max_density = max(tree.max_density for tree in all_trees) or 1
    out: dict[int, float] = {}
    for group, trees in sorted(trees_by_group.items()):
        total = 0.0
        n = 0
        for tree in trees:
            for node in tree:
                total += (
                    node.depth / max_depth
                    + node.fan_out / max_fan
                    + node.density / max_density
                ) / 3.0
                n += 1
        out[group] = total / n
    return out


def group_stats(
    corpus: Corpus, network: SemanticNetwork
) -> dict[int, DocumentStats]:
    """Aggregated statistics per test group (the cells of Table 1)."""
    out: dict[int, DocumentStats] = {}
    for group in (1, 2, 3, 4):
        docs = corpus.by_group(group)
        if not docs:
            continue
        per_doc = [
            compute_stats(document_tree(doc, network), network) for doc in docs
        ]
        out[group] = aggregate(per_doc)
    return out
