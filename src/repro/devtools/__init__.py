"""reprolint: an AST-based invariant checker for XSDF's contracts.

The test suite proves behavior on the inputs it runs; this package
checks the *shape* of the code against the contracts the reproduction
depends on — ``index=`` fast-path parity guards, cache purity,
pipeline determinism, executor picklability, paper-citation
consistency, and exception/API hygiene — before any test executes.
Stdlib ``ast`` + ``tokenize`` only, like everything else in the tree.

Typical use::

    from repro.devtools import all_rules, LintEngine, render_text

    engine = LintEngine(all_rules(), project_root=".")
    findings = engine.lint_paths(["src", "tests"])
    print(render_text(findings))

or from the command line::

    python -m repro lint src tests --format json

Suppressions use one syntax tree-wide: ``# lint: disable=rule-id`` on
the offending line, ``# lint: disable-file=rule-id`` for a whole file
(see :mod:`repro.devtools.pragmas`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from .analysis_cache import AnalysisCache
from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import (
    Finding,
    LintContext,
    LintEngine,
    LintRunStats,
    ProjectRule,
    Rule,
    expand_paths,
)
from .model import ModuleInfo, ProjectModel, build_module
from .pragmas import PRAGMA_RULE_ID, PragmaIndex
from .reporters import render_json, render_sarif, render_text
from .rules import RULE_CLASSES, all_rules

__all__ = [
    "AnalysisCache",
    "Finding",
    "LintContext",
    "LintEngine",
    "LintRunStats",
    "ModuleInfo",
    "PRAGMA_RULE_ID",
    "PragmaIndex",
    "ProjectModel",
    "ProjectRule",
    "RULE_CLASSES",
    "Rule",
    "all_rules",
    "apply_baseline",
    "build_module",
    "expand_paths",
    "find_project_root",
    "lint_paths",
    "load_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "write_baseline",
]


def find_project_root(start: str | Path | None = None) -> Path:
    """The nearest ancestor of ``start`` holding DESIGN.md or PAPER.md.

    The definition cross-reference rule needs the paper catalogue;
    walking up from the linted path makes ``repro lint`` work from any
    working directory.  Falls back to ``start`` itself when no
    catalogue file is found.
    """
    origin = Path(start) if start is not None else Path.cwd()
    origin = origin if origin.is_dir() else origin.parent
    for candidate in (origin, *origin.resolve().parents):
        if (candidate / "DESIGN.md").is_file() or \
                (candidate / "PAPER.md").is_file():
            return candidate
    return origin


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    project_root: str | Path | None = None,
    *,
    cache: AnalysisCache | None = None,
    jobs: int = 1,
    changed: Iterable[str | Path] | None = None,
) -> list[Finding]:
    """Lint files/directories with the full (or given) rule set.

    Convenience wrapper used by the CLI and the CI gate; the project
    root for the citation catalogue is discovered from the first path
    unless given explicitly.  ``cache``/``jobs``/``changed`` pass
    through to :meth:`LintEngine.lint_paths` for incremental and
    parallel runs.
    """
    path_list = list(paths)
    if project_root is None and path_list:
        project_root = find_project_root(path_list[0])
    engine = LintEngine(
        rules if rules is not None else all_rules(),
        project_root=project_root,
    )
    return engine.lint_paths(path_list, cache=cache, jobs=jobs,
                             changed=changed)
