"""Incremental analysis cache: blake2b content hashes + import graph.

One JSON document per cache file::

    {
      "version": 1,
      "signature": "<engine version | rule ids | catalogue hash>",
      "modules": {
        "<path key>": {
          "hash":     "<blake2b of the file bytes>",
          "name":     "<dotted module name>",
          "imports":  ["<raw dotted import targets>", ...],
          "findings": [{rule, path, line, col, message}, ...]
        }, ...
      }
    }

The signature folds in everything that can change a finding besides
the file itself: the engine version, the active rule IDs, and the
DESIGN.md/PAPER.md citation catalogue.  A signature mismatch discards
the whole cache — cheap, and it makes staleness impossible by
construction.

Soundness of per-module reuse rests on one invariant the engine keeps:
a module's findings depend only on that module and the modules it
transitively imports.  Editing one file therefore dirties exactly the
file plus its transitive importers, which is what
:meth:`repro.devtools.model.ProjectModel.transitive_importers`
computes.
"""

from __future__ import annotations

import json
from pathlib import Path

CACHE_FORMAT_VERSION = 1


class AnalysisCache:
    """Load/store per-module lint results keyed by content hash."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def load(self, signature: str) -> dict[str, dict]:
        """Cached module entries, or ``{}`` on miss/mismatch/corruption."""
        try:
            with open(self.path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict) or \
                data.get("version") != CACHE_FORMAT_VERSION or \
                data.get("signature") != signature:
            return {}
        modules = data.get("modules")
        return modules if isinstance(modules, dict) else {}

    def save(self, signature: str, modules: dict[str, dict]) -> None:
        """Persist the entries; failures are silent (a cache is advisory)."""
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "signature": signature,
            "modules": modules,
        }
        try:
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
            tmp.replace(self.path)
        except OSError:
            pass


__all__ = ["AnalysisCache", "CACHE_FORMAT_VERSION"]
