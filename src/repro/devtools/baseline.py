"""Checked-in finding baselines: adopt a rule before the tree is clean.

A baseline file records the findings a tree is *known* to have, so a
new rule can gate CI immediately — existing debt is acknowledged in a
reviewed file while anything new fails the build.  One JSON document::

    {
      "version": 1,
      "entries": [
        {"rule": "...", "path": "...", "message": "..."},
        ...
      ]
    }

Matching deliberately ignores line and column: moving code around must
not churn the baseline, while a *new* violation (different message or
file) still fires.  Entries are sorted on write so diffs review well.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from .engine import Finding

BASELINE_FORMAT_VERSION = 1


def load_baseline(path: str | Path) -> list[dict]:
    """The baseline's entries; raises ``ValueError`` on a bad document.

    A missing or malformed baseline is a configuration error, not an
    empty baseline — silently treating it as empty would fail CI with
    every baselined finding at once and point the blame at the code.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or \
            data.get("version") != BASELINE_FORMAT_VERSION or \
            not isinstance(data.get("entries"), list):
        raise ValueError(
            f"baseline {path} must be "
            f'{{"version": {BASELINE_FORMAT_VERSION}, "entries": [...]}}'
        )
    for entry in data["entries"]:
        if not isinstance(entry, dict) or \
                not {"rule", "path", "message"} <= set(entry):
            raise ValueError(
                f"baseline {path}: every entry needs rule/path/message"
            )
    return data["entries"]


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> None:
    """Write the findings as a fresh baseline document."""
    entries = sorted(
        (
            {"message": f.message, "path": f.path, "rule": f.rule}
            for f in findings
        ),
        key=lambda e: (e["path"], e["rule"], e["message"]),
    )
    payload = {"version": BASELINE_FORMAT_VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[dict]
) -> list[Finding]:
    """The findings not covered by the baseline.

    Each baseline entry absorbs at most as many findings as it was
    recorded for — the match key is ``(rule, path, message)``, so a
    *second* identical violation in the same file is still new.
    """
    budget: dict[tuple[str, str, str], int] = {}
    for entry in entries:
        key = (entry["rule"], entry["path"], entry["message"])
        budget[key] = budget.get(key, 0) + 1
    fresh: list[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.message)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            fresh.append(finding)
    return fresh


__all__ = [
    "BASELINE_FORMAT_VERSION",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]
