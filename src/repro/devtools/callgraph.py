"""A conservative call graph over the project model.

Resolution is deliberately modest — exactly the cases that are static
facts of the AST, nothing speculative:

* direct calls to names bound in the same module (top-level functions,
  classes → ``__init__``) or imported from another module in the run;
* ``module.attr(...)`` through an ``import module [as alias]`` binding;
* ``self.method(...)`` / ``cls.method(...)`` within a class, following
  statically-known base classes in the model;
* ``ClassName.method(...)`` and ``instance.method(...)`` where the
  instance was assigned ``ClassName(...)`` in the same scope.

Anything else resolves to ``None`` and downstream analyses treat it as
unknown.  Global qualnames are ``module:Class.method`` /
``module:function``.
"""

from __future__ import annotations

import ast

from .model import FunctionInfo, ModuleInfo, ProjectModel


class CallGraph:
    """Caller → callee edges between the model's functions."""

    def __init__(self, model: ProjectModel):
        self.model = model
        self._functions: dict[str, tuple[ModuleInfo, FunctionInfo]] = {}
        for info in model.modules.values():
            for fn_info in info.functions.values():
                self._functions[f"{info.name}:{fn_info.qualname}"] = (
                    info, fn_info
                )
        self._edges: dict[str, frozenset[str]] = {}
        self._instance_types: dict[int, dict[str, str]] = {}

    def qualnames(self) -> list[str]:
        """Every function's global qualname, sorted for determinism."""
        return sorted(self._functions)

    def function(self, qualname: str) -> tuple[ModuleInfo, FunctionInfo]:
        """The ``(module, function)`` pair behind a global qualname."""
        return self._functions[qualname]

    def has_function(self, qualname: str) -> bool:
        """Whether the model defines this qualname."""
        return qualname in self._functions

    def callees(self, qualname: str) -> frozenset[str]:
        """Resolved callees of one function (cached)."""
        cached = self._edges.get(qualname)
        if cached is not None:
            return cached
        info, fn_info = self._functions[qualname]
        out = set()
        for node in fn_info.local_nodes:
            if isinstance(node, ast.Call):
                target = self.resolve_call(info, node, fn_info)
                if target is not None:
                    out.add(target)
        resolved = frozenset(out)
        self._edges[qualname] = resolved
        return resolved

    def reachable(self, qualname: str, limit: int = 500) -> set[str]:
        """Functions transitively callable from ``qualname`` (bounded)."""
        seen: set[str] = set()
        stack = [qualname]
        while stack and len(seen) < limit:
            current = stack.pop()
            if current in seen or current not in self._functions:
                continue
            seen.add(current)
            stack.extend(self.callees(current))
        return seen

    # -- resolution ----------------------------------------------------------

    def resolve_call(
        self,
        info: ModuleInfo,
        call: ast.Call,
        fn_info: FunctionInfo | None = None,
    ) -> str | None:
        """The global qualname this call dispatches to, if static."""
        func = call.func
        if isinstance(func, ast.Name):
            return self.resolve_name(info, func.id, fn_info)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(info, func, fn_info)
        return None

    def resolve_name(
        self,
        info: ModuleInfo,
        name: str,
        fn_info: FunctionInfo | None = None,
    ) -> str | None:
        """Resolve a bare name to a function/constructor qualname."""
        if fn_info is not None:
            nested = f"{fn_info.qualname}.{name}"
            if nested in info.functions:
                return f"{info.name}:{nested}"
        if name in info.functions:
            return f"{info.name}:{name}"
        if name in info.classes:
            return self._constructor(info.name, name)
        binding = info.bindings.get(name)
        if binding is None:
            return None
        return self._resolve_binding(binding)

    def _resolve_binding(self, binding: tuple) -> str | None:
        if binding[0] == "module":
            return None  # a module object, not a callable
        _, module_name, symbol = binding
        target = self.model.modules.get(module_name)
        if target is None:
            # ``from pkg import name`` may re-export through __init__.
            return None
        if symbol in target.functions:
            return f"{target.name}:{symbol}"
        if symbol in target.classes:
            return self._constructor(target.name, symbol)
        return None

    def _constructor(self, module_name: str, class_name: str) -> str | None:
        method = self._find_method(module_name, class_name, "__init__")
        if method is not None:
            return method
        return None

    def _resolve_attribute(
        self,
        info: ModuleInfo,
        func: ast.Attribute,
        fn_info: FunctionInfo | None,
    ) -> str | None:
        base = func.value
        if not isinstance(base, ast.Name):
            return None
        if base.id in ("self", "cls") and fn_info is not None and \
                fn_info.class_name is not None:
            return self._find_method(info.name, fn_info.class_name, func.attr)
        binding = info.bindings.get(base.id)
        if binding is not None and binding[0] == "module":
            target = self.model.modules.get(binding[1])
            if target is not None:
                if func.attr in target.functions:
                    return f"{target.name}:{func.attr}"
                if func.attr in target.classes:
                    return self._constructor(target.name, func.attr)
            return None
        # ClassName.method(...)
        class_site = self._resolve_class_name(info, base.id)
        if class_site is not None:
            return self._find_method(class_site[0], class_site[1], func.attr)
        # instance.method(...) where instance = ClassName(...) locally
        if fn_info is not None:
            types = self._scope_instance_types(info, fn_info)
            class_name = types.get(base.id)
            if class_name is not None:
                class_site = self._resolve_class_name(info, class_name)
                if class_site is not None:
                    return self._find_method(
                        class_site[0], class_site[1], func.attr
                    )
        return None

    def _resolve_class_name(
        self, info: ModuleInfo, name: str
    ) -> tuple[str, str] | None:
        """``(module_name, class_name)`` for a name visible in ``info``."""
        if name in info.classes:
            return (info.name, name)
        binding = info.bindings.get(name)
        if binding is not None and binding[0] == "symbol":
            target = self.model.modules.get(binding[1])
            if target is not None and binding[2] in target.classes:
                return (target.name, binding[2])
        return None

    def _find_method(
        self, module_name: str, class_name: str, method: str
    ) -> str | None:
        """Look a method up through the statically-known base chain."""
        seen: set[tuple[str, str]] = set()
        stack = [(module_name, class_name)]
        while stack:
            mod_name, cls_name = stack.pop()
            if (mod_name, cls_name) in seen:
                continue
            seen.add((mod_name, cls_name))
            info = self.model.modules.get(mod_name)
            if info is None:
                continue
            methods = info.class_methods.get(cls_name, {})
            if method in methods:
                return f"{mod_name}:{methods[method].qualname}"
            for base in info.class_bases.get(cls_name, ()):
                base_site = self._resolve_class_name(info, base)
                if base_site is not None:
                    stack.append(base_site)
        return None

    def _scope_instance_types(
        self, info: ModuleInfo, fn_info: FunctionInfo
    ) -> dict[str, str]:
        """Local names assigned ``ClassName(...)`` in this function."""
        cached = self._instance_types.get(id(fn_info))
        if cached is not None:
            return cached
        types: dict[str, str] = {}
        for node in fn_info.local_nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name) and \
                    isinstance(node.value, ast.Call) and \
                    isinstance(node.value.func, ast.Name):
                callee = node.value.func.id
                if self._resolve_class_name(info, callee) is not None:
                    types[node.targets[0].id] = callee
                else:
                    types.pop(node.targets[0].id, None)
        self._instance_types[id(fn_info)] = types
        return types


__all__ = ["CallGraph"]
