"""Intra-procedural dataflow for reprolint.

Three small analyses, each conservative by construction:

* **Reaching definitions** (:class:`Definitions`) — a line-ordered
  approximation good enough to answer "what expression did this name
  last come from?" inside one scope; the determinism-flow and
  worker-boundary rules use it to type names as set-valued or
  unpicklable.
* **Purity inference** (:func:`infer_purity`) — a fixpoint over the
  call graph classifying each function ``pure`` / ``impure`` /
  ``unknown`` from its own mutations and its callees' verdicts.
* **Exception-propagation summaries** (:func:`exception_summaries`) —
  per function, the set of *typed repro error* names that can escape
  it, folding callee summaries through ``try``/``except`` structure to
  a fixpoint.  The exception-flow rule builds its reachability checks
  on top.

Shared submission-point helpers (used by picklable-submit and
worker-boundary) also live here so both rule modules import one
definition of what a pool boundary looks like.
"""

from __future__ import annotations

import ast
import builtins
import re

from .model import ModuleInfo, ProjectModel, local_nodes

# -- submission-point detection (shared by rules 4 and worker-boundary) -----

SUBMIT_METHODS = frozenset({
    "map", "map_async", "imap", "imap_unordered", "starmap",
    "starmap_async", "apply", "apply_async", "submit",
})
SUBMIT_KEYWORDS = frozenset({"initializer", "callback"})
POOL_RECEIVER = re.compile(r"pool|executor", re.IGNORECASE)


def is_pool_receiver(receiver: ast.AST) -> bool:
    """Whether the call receiver names a pool/executor."""
    if isinstance(receiver, ast.Name):
        return bool(POOL_RECEIVER.search(receiver.id))
    if isinstance(receiver, ast.Attribute):
        return bool(POOL_RECEIVER.search(receiver.attr))
    return False


def submitted_callables(node: ast.Call) -> list[ast.AST]:
    """Callable expressions crossing a worker boundary at this call."""
    out: list[ast.AST] = []
    if isinstance(node.func, ast.Attribute) and \
            node.func.attr in SUBMIT_METHODS and node.args and \
            is_pool_receiver(node.func.value):
        out.append(node.args[0])
    for keyword in node.keywords:
        if keyword.arg in SUBMIT_KEYWORDS:
            out.append(keyword.value)
    return out


def is_submit_site(node: ast.Call) -> bool:
    """Whether this call hands work to a pool/executor."""
    return bool(submitted_callables(node))


# -- reaching definitions ----------------------------------------------------


class Definitions:
    """Line-ordered reaching definitions for one scope.

    ``reaching(name, line)`` returns the value expression of the latest
    binding of ``name`` at or before ``line``, or ``None`` when the
    name is unbound / bound by something we cannot evaluate (loop
    targets, ``with`` targets, tuple unpacking).
    """

    def __init__(self) -> None:
        self._defs: dict[str, list[tuple[int, ast.expr | None]]] = {}

    @classmethod
    def from_nodes(cls, nodes: list[ast.AST]) -> "Definitions":
        """Scan one scope's local nodes for name bindings."""
        defs = cls()
        for node in nodes:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    defs._bind_target(target, node.value, node.lineno)
            elif isinstance(node, ast.AnnAssign):
                defs._bind_target(node.target, node.value, node.lineno)
            elif isinstance(node, ast.NamedExpr):
                defs._bind_target(node.target, node.value, node.lineno)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                defs._bind_target(node.target, None, node.lineno)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        defs._bind_target(item.optional_vars, None,
                                          node.lineno)
        for name in defs._defs:
            defs._defs[name].sort(key=lambda entry: entry[0])
        return defs

    def _bind_target(self, target: ast.AST, value: ast.expr | None,
                     line: int) -> None:
        if isinstance(target, ast.Name):
            self._defs.setdefault(target.id, []).append((line, value))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, None, line)

    def reaching(self, name: str, line: int) -> ast.expr | None:
        """Latest known value of ``name`` at ``line`` (or None)."""
        best: ast.expr | None = None
        found = False
        for def_line, value in self._defs.get(name, ()):
            if def_line <= line:
                best, found = value, True
            else:
                break
        return best if found else None

    def is_bound(self, name: str) -> bool:
        """Whether the scope binds ``name`` at all."""
        return name in self._defs


_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})


def is_set_valued(expr: ast.AST, defs: Definitions | None = None,
                  depth: int = 0) -> bool:
    """Whether ``expr`` statically evaluates to a set/frozenset."""
    if depth > 6:
        return False
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return is_set_valued(func.value, defs, depth + 1)
        return False
    if isinstance(expr, ast.BinOp) and \
            isinstance(expr.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)):
        return is_set_valued(expr.left, defs, depth + 1) or \
            is_set_valued(expr.right, defs, depth + 1)
    if isinstance(expr, ast.Name) and defs is not None:
        value = defs.reaching(expr.id, expr.lineno)
        if value is not None:
            return is_set_valued(value, defs, depth + 1)
    return False


# -- typed repro errors ------------------------------------------------------

BUILTIN_EXCEPTIONS = frozenset(
    name for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)

_TYPED_SUFFIXES = ("Error", "Fault", "Abort")


def is_typed_error_name(name: str) -> bool:
    """Whether ``name`` looks like a typed repro error class."""
    return name.endswith(_TYPED_SUFFIXES) and name not in BUILTIN_EXCEPTIONS


def caught_names(type_node: ast.AST | None) -> set[str]:
    """Exception class names a handler catches; ``{"*"}`` for catch-all."""
    if type_node is None:
        return {"*"}
    if isinstance(type_node, ast.Name):
        if type_node.id in ("Exception", "BaseException"):
            return {"*"}
        return {type_node.id}
    if isinstance(type_node, ast.Attribute):
        return {type_node.attr}
    if isinstance(type_node, ast.Tuple):
        names: set[str] = set()
        for element in type_node.elts:
            names |= caught_names(element)
        return names
    return set()


def typed_caught_names(type_node: ast.AST | None) -> set[str]:
    """The typed repro error names among a handler's caught classes."""
    return {name for name in caught_names(type_node)
            if name != "*" and is_typed_error_name(name)}


def raised_name(node: ast.Raise) -> str | None:
    """The exception class name a raise statement throws (best effort)."""
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


class _Hierarchy:
    """Class → ancestor names within the model (plus literal names)."""

    def __init__(self, model: ProjectModel):
        self._bases: dict[str, set[str]] = {}
        for info in model.modules.values():
            for cls, bases in info.class_bases.items():
                self._bases.setdefault(cls, set()).update(bases)

    def ancestors(self, name: str) -> set[str]:
        out: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            for base in self._bases.get(current, ()):
                if base not in out:
                    out.add(base)
                    stack.append(base)
        return out

    def catches(self, caught: set[str], name: str) -> bool:
        if "*" in caught or name in caught:
            return True
        return bool(self.ancestors(name) & caught)


def exception_summaries(
    model: ProjectModel, callgraph
) -> dict[str, frozenset[str]]:
    """Typed error names escaping each function, to a fixpoint.

    Keys are global qualnames (``module:Class.method``).  A call to an
    unresolved target contributes nothing — the summary is a lower
    bound, which is the sound direction for "this handler is
    reachable"-style checks.
    """
    hierarchy = _Hierarchy(model)
    summaries: dict[str, frozenset[str]] = {
        qualname: frozenset() for qualname in callgraph.qualnames()
    }

    def escapes(info_module: ModuleInfo, fn_node: ast.AST) -> frozenset[str]:
        out: set[str] = set()

        def visit_stmts(stmts, caught: frozenset[str],
                        handler_types: frozenset[str]) -> None:
            for stmt in stmts:
                visit(stmt, caught, handler_types)

        def visit(node: ast.AST, caught: frozenset[str],
                  handler_types: frozenset[str]) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                return
            if isinstance(node, ast.Try):
                body_caught = caught | frozenset(
                    name
                    for handler in node.handlers
                    for name in caught_names(handler.type)
                )
                visit_stmts(node.body, body_caught, handler_types)
                for handler in node.handlers:
                    visit_stmts(handler.body, caught,
                                frozenset(caught_names(handler.type)))
                visit_stmts(node.orelse, caught, handler_types)
                visit_stmts(node.finalbody, caught, handler_types)
                return
            if isinstance(node, ast.Raise):
                name = raised_name(node)
                if name is None:
                    # Bare re-raise: the caught typed errors escape again.
                    for caught_type in handler_types:
                        if is_typed_error_name(caught_type) and \
                                not hierarchy.catches(set(caught),
                                                      caught_type):
                            out.add(caught_type)
                elif is_typed_error_name(name) and \
                        not hierarchy.catches(set(caught), name):
                    out.add(name)
            if isinstance(node, ast.Call):
                target = callgraph.resolve_call(info_module, node)
                if target is not None:
                    for name in summaries.get(target, ()):
                        if not hierarchy.catches(set(caught), name):
                            out.add(name)
            for child in ast.iter_child_nodes(node):
                visit(child, caught, handler_types)

        visit_stmts(getattr(fn_node, "body", []), frozenset(), frozenset())
        return frozenset(out)

    for _ in range(20):
        changed = False
        for qualname in callgraph.qualnames():
            info_module, fn_info = callgraph.function(qualname)
            updated = escapes(info_module, fn_info.node)
            if updated != summaries[qualname]:
                summaries[qualname] = updated
                changed = True
        if not changed:
            break
    return summaries


# -- purity inference --------------------------------------------------------

MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "sort", "reverse", "add", "discard", "update", "setdefault",
})

_IMPURE_CALLS = frozenset({"print", "open", "input", "setattr", "delattr"})


def _locally_impure(fn_info) -> bool:
    params = set(fn_info.arg_names)
    for node in fn_info.local_nodes:
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _IMPURE_CALLS:
                return True
            if isinstance(func, ast.Attribute) and \
                    func.attr in MUTATOR_METHODS and \
                    isinstance(func.value, ast.Name) and \
                    func.value.id in params | {"self", "cls"}:
                return True
        if isinstance(node, (ast.Subscript, ast.Attribute)) and \
                isinstance(getattr(node, "ctx", None),
                           (ast.Store, ast.Del)) and \
                isinstance(node.value, ast.Name) and \
                node.value.id in params | {"self", "cls"}:
            return True
        if isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, (ast.Subscript, ast.Attribute)) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id in params | {"self", "cls"}:
                return True
    return False


def infer_purity(model: ProjectModel, callgraph) -> dict[str, str]:
    """``pure`` / ``impure`` / ``unknown`` per global qualname.

    Starts optimistic and demotes to a fixpoint: a function is impure
    if it mutates its inputs/globals or calls an impure function;
    unknown if any call target cannot be resolved; pure otherwise.
    """
    verdicts: dict[str, str] = {}
    local_impure: dict[str, bool] = {}
    has_unresolved: dict[str, bool] = {}
    for qualname in callgraph.qualnames():
        info_module, fn_info = callgraph.function(qualname)
        local_impure[qualname] = _locally_impure(fn_info)
        unresolved = False
        for node in fn_info.local_nodes:
            if isinstance(node, ast.Call) and \
                    callgraph.resolve_call(info_module, node) is None:
                unresolved = True
                break
        has_unresolved[qualname] = unresolved
        verdicts[qualname] = "impure" if local_impure[qualname] else "pure"

    for _ in range(20):
        changed = False
        for qualname in callgraph.qualnames():
            if verdicts[qualname] == "impure":
                continue
            callee_verdicts = [
                verdicts.get(callee, "unknown")
                for callee in callgraph.callees(qualname)
            ]
            if "impure" in callee_verdicts:
                updated = "impure"
            elif has_unresolved[qualname] or "unknown" in callee_verdicts:
                updated = "unknown"
            else:
                updated = "pure"
            if updated != verdicts[qualname]:
                verdicts[qualname] = updated
                changed = True
        if not changed:
            break
    return verdicts


__all__ = [
    "BUILTIN_EXCEPTIONS",
    "Definitions",
    "MUTATOR_METHODS",
    "POOL_RECEIVER",
    "SUBMIT_KEYWORDS",
    "SUBMIT_METHODS",
    "caught_names",
    "exception_summaries",
    "infer_purity",
    "is_pool_receiver",
    "is_set_valued",
    "is_submit_site",
    "is_typed_error_name",
    "local_nodes",
    "raised_name",
    "submitted_callables",
    "typed_caught_names",
]
