"""The reprolint engine: rule registry, one-pass AST dispatch, runner.

Design goals, in order:

1. **One walk per file.**  Every rule registers interest in AST node
   types by defining ``visit_<NodeType>`` methods; the engine walks the
   tree exactly once and dispatches each node to the rules that asked
   for its type.  Rules that need intra-function context (the
   ``index=``-parity and purity checks) receive the ``FunctionDef``
   node and perform a bounded sub-walk of that function's body — the
   file-level pass stays single.
2. **Stable rule IDs.**  IDs are part of the suppression contract
   (``# lint: disable=rule-id``) and of CI output; they never change
   once shipped.
3. **stdlib only.**  ``ast`` + ``tokenize`` — the checker must run in
   the same dependency-free environment as the library it guards.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from .pragmas import PRAGMA_RULE_ID, PragmaIndex


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to ``path:line:col``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        """The conventional clickable ``path:line:col`` prefix."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        """JSON-ready representation (used by the JSON reporter)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``/``description`` and implement any of:

    * ``visit_<NodeType>(self, node, ctx)`` — called from the single
      file walk for every node of that type;
    * ``begin_file(self, ctx)`` — called once before the walk (e.g. to
      scan comments);
    * ``end_file(self, ctx)`` — called once after the walk.

    ``scope`` restricts where the rule applies: a tuple of path
    fragments, at least one of which must occur in the posix-normalized
    file path.  ``None`` means the rule applies everywhere.
    """

    id: str = ""
    description: str = ""
    scope: tuple[str, ...] | None = None

    def applies_to(self, path: str) -> bool:
        """Whether this rule's scope covers ``path``."""
        if self.scope is None:
            return True
        posix = path.replace("\\", "/")
        return any(fragment in posix for fragment in self.scope)

    def begin_file(self, ctx: "LintContext") -> None:
        """Per-file setup hook (default: nothing)."""

    def end_file(self, ctx: "LintContext") -> None:
        """Per-file teardown hook (default: nothing)."""


@dataclass
class LintContext:
    """Everything a rule may consult while checking one file."""

    path: str
    source: str
    tree: ast.Module
    comments: list[tuple[int, str]]
    pragmas: PragmaIndex
    project_root: Path
    findings: list[Finding] = field(default_factory=list)

    def report(
        self,
        rule_id: str,
        node: ast.AST | None,
        message: str,
        line: int | None = None,
        col: int | None = None,
    ) -> None:
        """File a finding unless a pragma suppresses it at that line."""
        at_line = line if line is not None else getattr(node, "lineno", 1)
        at_col = col if col is not None else getattr(node, "col_offset", 0)
        if self.pragmas.is_disabled(rule_id, at_line):
            return
        self.findings.append(Finding(
            rule=rule_id, path=self.path,
            line=at_line, col=at_col, message=message,
        ))


class LintEngine:
    """Runs a set of rules over files or source strings."""

    def __init__(
        self,
        rules: Sequence[Rule],
        project_root: str | Path | None = None,
    ):
        ids = [rule.id for rule in rules]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate rule IDs: {sorted(ids)}")
        if PRAGMA_RULE_ID in ids:
            raise ValueError(f"rule ID {PRAGMA_RULE_ID!r} is reserved")
        self.rules = list(rules)
        self.rule_ids = frozenset(ids)
        self.project_root = Path(project_root) if project_root else Path.cwd()

    # -- per-source entry points --------------------------------------------

    def lint_source(self, source: str, path: str = "<string>") -> list[Finding]:
        """Lint one source string presented as ``path``.

        Syntax errors become findings under the reserved ``pragma``-like
        ``parse-error`` pseudo-rule rather than exceptions: a broken
        file must fail the lint run, not crash it.
        """
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [Finding(
                rule="parse-error", path=path,
                line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                message=f"cannot parse: {exc.msg}",
            )]
        comments = _collect_comments(source)
        pragmas = PragmaIndex.parse(comments, self.rule_ids)
        ctx = LintContext(
            path=path, source=source, tree=tree,
            comments=comments, pragmas=pragmas,
            project_root=self.project_root,
        )
        for error in pragmas.errors:
            ctx.findings.append(Finding(
                rule=PRAGMA_RULE_ID, path=path,
                line=error.line, col=0, message=error.message,
            ))
        active = [rule for rule in self.rules if rule.applies_to(path)]
        dispatch = _build_dispatch(active)
        for rule in active:
            rule.begin_file(ctx)
        for node in ast.walk(tree):
            for handler in dispatch.get(type(node).__name__, ()):
                handler(node, ctx)
        for rule in active:
            rule.end_file(ctx)
        ctx.findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return ctx.findings

    def lint_file(self, path: str | Path) -> list[Finding]:
        """Lint one file from disk."""
        file_path = Path(path)
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [Finding(
                rule="parse-error", path=str(path), line=1, col=0,
                message=f"cannot read: {exc}",
            )]
        return self.lint_source(source, path=str(path))

    def lint_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        """Lint files and directories (recursed for ``*.py``)."""
        findings: list[Finding] = []
        for path in expand_paths(paths):
            findings.extend(self.lint_file(path))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings


def expand_paths(paths: Iterable[str | Path]) -> list[Path]:
    """Resolve files/directories into a sorted, de-duplicated file list.

    Directories are walked recursively for ``*.py``; explicit file
    arguments are kept as-is (whatever their suffix), so a scratch file
    can be linted directly.
    """
    seen: set[Path] = set()
    ordered: list[Path] = []
    for path in paths:
        p = Path(path)
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                ordered.append(candidate)
    return ordered


def _collect_comments(source: str) -> list[tuple[int, str]]:
    """All ``(line, text)`` comment tokens of a source string."""
    comments: list[tuple[int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The AST parse already surfaced (or will surface) the problem.
        pass
    return comments


def _build_dispatch(
    rules: Sequence[Rule],
) -> dict[str, list[Callable[[ast.AST, LintContext], None]]]:
    """Map AST node-type name -> the active rules' visit handlers."""
    dispatch: dict[str, list[Callable[[ast.AST, LintContext], None]]] = {}
    for rule in rules:
        for attr in dir(rule):
            if attr.startswith("visit_"):
                dispatch.setdefault(attr[len("visit_"):], []).append(
                    getattr(rule, attr)
                )
    return dispatch
