"""The reprolint engine: project model, rule dispatch, incremental runs.

v2 design goals, in order:

1. **One parse per file, one model per run.**  Every file is parsed
   once into a :class:`~repro.devtools.model.ModuleInfo`; the
   :class:`~repro.devtools.model.ProjectModel` links them through the
   import graph and lazily derives the call graph and dataflow
   summaries.  File-scoped rules keep the v1 shape — ``visit_<NodeType>``
   handlers fed from a single walk — while :class:`ProjectRule`
   subclasses see the whole model through ``check_module``.
2. **Stable rule IDs.**  IDs are part of the suppression contract
   (``# lint: disable=rule-id``) and of CI output; they never change
   once shipped.
3. **Warm runs touch only changed modules.**  With an
   :class:`~repro.devtools.analysis_cache.AnalysisCache`, unchanged
   modules (by blake2b content hash) reuse their cached findings and a
   changed module re-analyzes exactly itself plus its transitive
   importers.
4. **stdlib only.**  ``ast`` + ``tokenize`` — the checker must run in
   the same dependency-free environment as the library it guards.
"""

from __future__ import annotations

import ast
import hashlib
import multiprocessing
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from .model import (
    ModuleInfo,
    ProjectModel,
    arg_names as _walk_arg_names,
    build_module,
    content_hash,
    local_nodes as _walk_local_nodes,
    module_name_for_path,
    parse_payload,
    resolve_targets,
)
from .pragmas import PRAGMA_RULE_ID, PragmaIndex

#: Folded into the cache signature: bump when findings semantics change.
ENGINE_VERSION = "2.0"


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to ``path:line:col``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        """The conventional clickable ``path:line:col`` prefix."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        """JSON-ready representation (used by the JSON reporter)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Rule:
    """Base class for file-scoped lint rules.

    Subclasses set ``id``/``description`` and implement any of:

    * ``visit_<NodeType>(self, node, ctx)`` — called from the single
      file walk for every node of that type;
    * ``begin_file(self, ctx)`` — called once before the walk (e.g. to
      scan comments);
    * ``end_file(self, ctx)`` — called once after the walk.

    ``scope`` restricts where the rule applies: a tuple of path
    fragments, at least one of which must occur in the posix-normalized
    file path.  ``None`` means the rule applies everywhere.
    """

    id: str = ""
    description: str = ""
    scope: tuple[str, ...] | None = None

    def applies_to(self, path: str) -> bool:
        """Whether this rule's scope covers ``path``."""
        if self.scope is None:
            return True
        posix = path.replace("\\", "/")
        return any(fragment in posix for fragment in self.scope)

    def begin_file(self, ctx: "LintContext") -> None:
        """Per-file setup hook (default: nothing)."""

    def end_file(self, ctx: "LintContext") -> None:
        """Per-file teardown hook (default: nothing)."""


class ProjectRule(Rule):
    """Rules that consult the whole-project model.

    Instead of per-node visits, a project rule implements
    ``check_module(ctx)``, called once per module after the model is
    built; ``ctx.module`` / ``ctx.model`` expose the import graph, the
    call graph, and the dataflow summaries.  Findings must still be
    reported per module (through ``ctx.report``) and may depend only on
    the module and the modules it transitively imports — that is the
    invariant the incremental cache's importer-closure invalidation
    rests on.
    """

    def check_module(self, ctx: "LintContext") -> None:
        """Check one module against the project model."""
        raise NotImplementedError


@dataclass
class LintContext:
    """Everything a rule may consult while checking one file."""

    path: str
    source: str
    tree: ast.Module
    comments: list[tuple[int, str]]
    pragmas: PragmaIndex
    project_root: Path
    module: ModuleInfo | None = None
    model: ProjectModel | None = None
    findings: list[Finding] = field(default_factory=list)

    def report(
        self,
        rule_id: str,
        node: ast.AST | None,
        message: str,
        line: int | None = None,
        col: int | None = None,
    ) -> None:
        """File a finding unless a pragma suppresses it at that line."""
        at_line = line if line is not None else getattr(node, "lineno", 1)
        at_col = col if col is not None else getattr(node, "col_offset", 0)
        if self.pragmas.is_disabled(rule_id, at_line):
            return
        self.findings.append(Finding(
            rule=rule_id, path=self.path,
            line=at_line, col=at_col, message=message,
        ))

    def local_nodes(self, fn: ast.AST) -> list[ast.AST]:
        """Function-local nodes, served from the model's per-function
        cache when available (one walk shared by every rule)."""
        if self.module is not None:
            info = self.module.function_at(fn)
            if info is not None:
                return info.local_nodes
        return _walk_local_nodes(fn)

    def arg_names(self, fn) -> list[str]:
        """Parameter names of ``fn``, via the model cache when possible."""
        if self.module is not None:
            info = self.module.function_at(fn)
            if info is not None:
                return info.arg_names
        return _walk_arg_names(fn)


@dataclass
class LintRunStats:
    """What one ``lint_paths`` run actually did (cache observability)."""

    files: int
    analyzed: list[str] = field(default_factory=list)
    reused: int = 0


class LintEngine:
    """Runs a set of rules over files or source strings."""

    def __init__(
        self,
        rules: Sequence[Rule],
        project_root: str | Path | None = None,
    ):
        ids = [rule.id for rule in rules]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate rule IDs: {sorted(ids)}")
        if PRAGMA_RULE_ID in ids:
            raise ValueError(f"rule ID {PRAGMA_RULE_ID!r} is reserved")
        self.rules = list(rules)
        self.rule_ids = frozenset(ids)
        self.project_root = Path(project_root) if project_root else Path.cwd()
        # Pragmas are validated against the full registry, not just the
        # active subset: a ``--rules exception-flow`` run over a file
        # carrying a legitimate broad-except suppression must not
        # invent pragma errors.
        from .rules import RULE_CLASSES  # runtime import: rules imports us
        self.known_pragma_ids = self.rule_ids | frozenset(RULE_CLASSES)
        self.last_run: LintRunStats | None = None
        self._signature: str | None = None

    @property
    def signature(self) -> str:
        """Cache key: engine version + rule IDs + citation catalogue."""
        if self._signature is None:
            digest = hashlib.blake2b(digest_size=8)
            for name in ("DESIGN.md", "PAPER.md"):
                try:
                    digest.update((self.project_root / name).read_bytes())
                except OSError:
                    pass
            self._signature = "|".join((
                ENGINE_VERSION,
                ",".join(sorted(self.rule_ids)),
                digest.hexdigest(),
            ))
        return self._signature

    # -- per-source entry points --------------------------------------------

    def lint_source(self, source: str, path: str = "<string>") -> list[Finding]:
        """Lint one source string presented as ``path``.

        Builds a single-module project model, so project rules run with
        whatever cross-module context one file can carry.  Syntax
        errors become findings under the ``parse-error`` pseudo-rule
        rather than exceptions: a broken file must fail the lint run,
        not crash it.
        """
        info = build_module(path, source, self.project_root)
        model = ProjectModel(self.project_root)
        model.add_module(info)
        model.finalize()
        return self._lint_module(info, model)

    def lint_file(self, path: str | Path) -> list[Finding]:
        """Lint one file from disk."""
        file_path = Path(path)
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [Finding(
                rule="parse-error", path=str(path), line=1, col=0,
                message=f"cannot read: {exc}",
            )]
        return self.lint_source(source, path=str(path))

    def lint_paths(
        self,
        paths: Iterable[str | Path],
        *,
        cache=None,
        jobs: int = 1,
        changed: Iterable[str | Path] | None = None,
    ) -> list[Finding]:
        """Lint files and directories (recursed for ``*.py``).

        ``cache`` is an :class:`~repro.devtools.analysis_cache.AnalysisCache`;
        with one, unchanged modules reuse cached findings and a changed
        module re-analyzes itself plus its transitive importers.
        ``changed`` restricts analysis to those files plus their
        transitive importers (the ``--changed`` mode).  ``jobs`` > 1
        parallelizes the parse stage across processes; findings are
        identical regardless of job count.  ``self.last_run`` records
        what was analyzed vs. reused.
        """
        files = expand_paths(paths)
        stats = LintRunStats(files=len(files))
        self.last_run = stats
        findings: list[Finding] = []
        if not files:
            return findings

        keys: list[str] = []
        key_paths: dict[str, Path] = {}
        sources: dict[str, str] = {}
        hashes: dict[str, str] = {}
        read_errors: dict[str, str] = {}
        for file_path in files:
            key = str(file_path)
            keys.append(key)
            key_paths[key] = file_path
            try:
                data = file_path.read_bytes()
                sources[key] = data.decode("utf-8")
                hashes[key] = content_hash(data)
            except (OSError, UnicodeDecodeError) as exc:
                read_errors[key] = str(exc)

        entries = cache.load(self.signature) if cache is not None else {}
        valid = {
            key for key in keys
            if key in hashes and key in entries
            and entries[key].get("hash") == hashes[key]
        }

        if changed is not None:
            changed_resolved = {Path(c).resolve() for c in changed}
            stale = {
                key for key in keys
                if key not in read_errors
                and key_paths[key].resolve() in changed_resolved
            }
        else:
            stale = {
                key for key in keys
                if key not in read_errors and key not in valid
            }

        names = {
            key: module_name_for_path(key_paths[key], self.project_root)
            for key in keys if key not in read_errors
        }

        # Parse what we must to know the import graph: everything not
        # covered by a valid cache entry (cache entries carry imports).
        parsed: dict[str, ModuleInfo] = {}
        self._parse_into(
            parsed,
            [key for key in names if key in stale or key not in valid],
            sources, hashes, names, jobs,
        )
        targets = {
            key: (parsed[key].import_targets if key in parsed
                  else entries[key].get("imports", []))
            for key in names
        }

        # Dirty closure: stale modules plus their transitive importers.
        name_set = set(names.values())
        importers: dict[str, set[str]] = {name: set() for name in name_set}
        imports_of: dict[str, set[str]] = {name: set() for name in name_set}
        for key in names:
            edges = resolve_targets(targets[key], name_set)
            edges.discard(names[key])
            imports_of[names[key]] |= edges
            for target in edges:
                importers[target].add(names[key])
        dirty_names = _closure({names[key] for key in stale}, importers)
        dirty = {key for key in names if names[key] in dirty_names}

        # Parse the analysis context: dirty modules' transitive imports.
        context_names = _closure(dirty_names, imports_of)
        self._parse_into(
            parsed,
            [key for key in names
             if key not in parsed and names[key] in context_names],
            sources, hashes, names, jobs,
        )

        model = ProjectModel(self.project_root)
        for info in parsed.values():
            model.add_module(info)
        model.finalize()

        new_entries: dict[str, dict] = {}
        for key in keys:
            if key in read_errors:
                findings.append(Finding(
                    rule="parse-error", path=key, line=1, col=0,
                    message=f"cannot read: {read_errors[key]}",
                ))
                continue
            if key in dirty:
                module_findings = self._lint_module(parsed[key], model)
                stats.analyzed.append(key)
            elif key in valid:
                module_findings = [
                    Finding(**item)
                    for item in entries[key].get("findings", [])
                ]
                stats.reused += 1
            else:
                # --changed mode: a clean file with no cache entry is
                # out of scope for this run.
                continue
            findings.extend(module_findings)
            if cache is not None:
                new_entries[key] = {
                    "hash": hashes[key],
                    "name": names[key],
                    "imports": sorted(set(targets[key])),
                    "findings": [f.to_dict() for f in module_findings],
                }
        if cache is not None:
            cache.save(self.signature, new_entries)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    # -- internals -----------------------------------------------------------

    def _parse_into(
        self,
        parsed: dict[str, ModuleInfo],
        keys_to_parse: list[str],
        sources: dict[str, str],
        hashes: dict[str, str],
        names: dict[str, str],
        jobs: int,
    ) -> None:
        items = [(key, sources[key]) for key in keys_to_parse]
        if not items:
            return
        if jobs > 1 and len(items) > 1:
            try:
                with multiprocessing.get_context().Pool(
                    processes=jobs
                ) as pool:
                    results = pool.map(parse_payload, items)
            except (OSError, ValueError):
                results = [parse_payload(item) for item in items]
        else:
            results = [parse_payload(item) for item in items]
        for path, tree, error, comments in results:
            parsed[path] = ModuleInfo(
                path=path, name=names[path], source=sources[path],
                tree=tree, comments=comments, digest=hashes[path],
                parse_error=error,
            )

    def _lint_module(
        self, info: ModuleInfo, model: ProjectModel
    ) -> list[Finding]:
        if info.parse_error is not None:
            line, col, message = info.parse_error
            return [Finding(
                rule="parse-error", path=info.path,
                line=line, col=col, message=message,
            )]
        pragmas = PragmaIndex.parse(
            info.comments, self.known_pragma_ids,
            first_code_line=info.first_code_line,
        )
        ctx = LintContext(
            path=info.path, source=info.source, tree=info.tree,
            comments=info.comments, pragmas=pragmas,
            project_root=self.project_root, module=info, model=model,
        )
        for error in pragmas.errors:
            ctx.findings.append(Finding(
                rule=PRAGMA_RULE_ID, path=info.path,
                line=error.line, col=0, message=error.message,
            ))
        active = [rule for rule in self.rules if rule.applies_to(info.path)]
        file_rules = [r for r in active if not isinstance(r, ProjectRule)]
        project_rules = [r for r in active if isinstance(r, ProjectRule)]
        dispatch = _build_dispatch(file_rules)
        for rule in active:
            rule.begin_file(ctx)
        for node in ast.walk(info.tree):
            for handler in dispatch.get(type(node).__name__, ()):
                handler(node, ctx)
        for rule in active:
            rule.end_file(ctx)
        for rule in project_rules:
            rule.check_module(ctx)
        ctx.findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return ctx.findings


def _closure(seeds: set[str], edges: dict[str, set[str]]) -> set[str]:
    out = set(seeds)
    stack = list(seeds)
    while stack:
        current = stack.pop()
        for nxt in edges.get(current, ()):
            if nxt not in out:
                out.add(nxt)
                stack.append(nxt)
    return out


def expand_paths(paths: Iterable[str | Path]) -> list[Path]:
    """Resolve files/directories into a sorted, de-duplicated file list.

    Directories are walked recursively for ``*.py``; explicit file
    arguments are kept as-is (whatever their suffix), so a scratch file
    can be linted directly.
    """
    seen: set[Path] = set()
    ordered: list[Path] = []
    for path in paths:
        p = Path(path)
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                ordered.append(candidate)
    return ordered


def _build_dispatch(
    rules: Sequence[Rule],
) -> dict[str, list[Callable[[ast.AST, LintContext], None]]]:
    """Map AST node-type name -> the active rules' visit handlers."""
    dispatch: dict[str, list[Callable[[ast.AST, LintContext], None]]] = {}
    for rule in rules:
        for attr in dir(rule):
            if attr.startswith("visit_"):
                dispatch.setdefault(attr[len("visit_"):], []).append(
                    getattr(rule, attr)
                )
    return dispatch
