"""The v2 flow rules: project-model analyses over the whole program.

Four rule families that cannot be written as single-file AST walks —
each one consults the :class:`~repro.devtools.model.ProjectModel`'s
import graph, call graph, or dataflow summaries:

* **determinism-flow** — a set-valued *name* (tracked through reaching
  definitions) must not feed an order-sensitive sink: float
  accumulation, ordered output records, or memo-key construction.  The
  file-scoped ``determinism`` rule catches ``for x in {…}``; this one
  catches ``s = set(…); … for x in s``.
* **worker-boundary** — values crossing a pool submission boundary
  must pickle (no lambdas, generators, or open file handles reaching
  the argument tuple), and the submitted callable must not read module
  globals that the parent process initializes mutable and mutates —
  fork-time snapshots of such state are silently stale in workers.
  The sanctioned pattern (``_WORKER_X = None`` at module level,
  written only by the pool initializer) stays silent because the
  parent-side value is immutable.
* **exception-flow** — a handler catching a *typed repro error*
  (``…Error`` / ``…Fault`` / ``…Abort`` outside builtins) in
  ``repro.runtime`` / ``repro.server`` must route it to an outcome:
  re-raise, a :class:`DocOutcome`, an error envelope, or (runtime
  only) a metrics emission — directly or through any callee the call
  graph can follow.  This upgrades ``silent-degrade`` /
  ``handler-envelope``, which only look at the handler body itself,
  and it honors their pragmas so existing annotated boundaries stay
  annotated once.
* **resource-lifecycle** — pools, sockets, files and mmaps bound to a
  local name must be released in the same scope (``with``, a
  ``close``-family call, usually in ``finally``) unless ownership
  visibly transfers (returned, yielded, stored on an object, or
  passed to another call).

Findings of every rule here depend only on the reported module and
the modules it transitively imports — the invariant the incremental
cache's importer-closure invalidation rests on (see
:class:`~repro.devtools.engine.ProjectRule`).
"""

from __future__ import annotations

import ast

from .dataflow import (
    Definitions,
    MUTATOR_METHODS,
    is_pool_receiver,
    is_set_valued,
    submitted_callables,
    typed_caught_names,
)
from .engine import LintContext, ProjectRule
from .model import FunctionInfo, ModuleInfo, local_nodes

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _scopes(info: ModuleInfo):
    """Yield ``(fn_info_or_None, nodes)`` for every scope of a module."""
    yield None, info.module_nodes()
    for fn_info in info.functions.values():
        yield fn_info, fn_info.local_nodes


def _call_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


# ---------------------------------------------------------------------------
# determinism-flow
# ---------------------------------------------------------------------------

#: AugAssign operators that make accumulation order observable (float
#: addition is not associative; string/list building is ordered).
_ACCUMULATE_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div)

#: Method calls that append to an ordered output record.
_ORDERED_APPENDERS = frozenset({
    "append", "extend", "insert", "write", "writelines",
})

#: Calls that materialize their argument's iteration order.
_ORDER_MATERIALIZERS = frozenset({"list", "tuple", "sum", "join"})

#: Wrappers that erase iteration order again — a set-valued argument
#: inside one of these is fine.
_ORDER_ERASERS = frozenset({"sorted", "set", "frozenset", "len", "min",
                            "max", "any", "all"})


class DeterminismFlowRule(ProjectRule):
    """Set-valued names must not reach order-sensitive sinks.

    Reaching definitions type each local name; a ``for`` loop over a
    set-valued name whose body accumulates floats, appends to an
    output record, or yields — and a ``list``/``tuple``/``sum``/
    ``join`` over a set-valued name outside a ``sorted(...)`` — both
    make pipeline output depend on hash-seed iteration order.
    """

    id = "determinism-flow"
    description = (
        "set-valued names (tracked through reaching definitions) must "
        "not feed float accumulation, ordered output records, or memo "
        "keys; sort first"
    )
    scope = ("repro/core/", "repro/similarity/", "repro/semnet/")

    def check_module(self, ctx: LintContext) -> None:
        """Check every scope's set-valued names against order sinks."""
        info = ctx.module
        for _fn_info, nodes in _scopes(info):
            defs = Definitions.from_nodes(nodes)
            for node in nodes:
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    self._check_loop(node, defs, ctx)
                elif isinstance(node, ast.Call):
                    self._check_call(node, defs, info, ctx)
                elif isinstance(node, ast.ListComp):
                    self._check_listcomp(node, defs, info, ctx)

    def _check_loop(self, loop, defs: Definitions, ctx: LintContext) -> None:
        if not isinstance(loop.iter, ast.Name) or \
                not is_set_valued(loop.iter, defs):
            return
        sink = self._order_sink_in(loop)
        if sink is not None:
            ctx.report(
                self.id, loop.iter,
                f"loop iterates set-valued name {loop.iter.id!r} and "
                f"{sink}; set iteration order is hash-seed dependent — "
                f"iterate sorted({loop.iter.id}) to keep the pipeline "
                "replayable",
            )

    def _order_sink_in(self, loop) -> str | None:
        for node in local_nodes(loop):
            if isinstance(node, ast.AugAssign) and \
                    isinstance(node.op, _ACCUMULATE_OPS):
                return "accumulates into an augmented assignment"
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _ORDERED_APPENDERS:
                return (
                    f"appends to an ordered record via "
                    f".{node.func.attr}()"
                )
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yields elements in iteration order"
        return None

    def _check_call(self, call: ast.Call, defs: Definitions,
                    info: ModuleInfo, ctx: LintContext) -> None:
        name = _call_name(call.func)
        if name not in _ORDER_MATERIALIZERS or not call.args:
            return
        arg = call.args[0]
        if not isinstance(arg, ast.Name) or not is_set_valued(arg, defs):
            return
        if self._order_erased(call, info):
            return
        ctx.report(
            self.id, call,
            f"{name}() materializes the iteration order of set-valued "
            f"name {arg.id!r}; wrap it in sorted(...) so the result "
            "(and any memo key built from it) is replayable",
        )

    def _check_listcomp(self, comp: ast.ListComp, defs: Definitions,
                        info: ModuleInfo, ctx: LintContext) -> None:
        first = comp.generators[0].iter if comp.generators else None
        if not isinstance(first, ast.Name) or not is_set_valued(first, defs):
            return
        if self._order_erased(comp, info):
            return
        ctx.report(
            self.id, comp,
            f"list comprehension over set-valued name {first.id!r} "
            "materializes set iteration order; iterate "
            f"sorted({first.id}) instead",
        )

    def _order_erased(self, node: ast.AST, info: ModuleInfo) -> bool:
        current = node
        for _ in range(3):
            parent = info.parent_of(current)
            if parent is None:
                return False
            if isinstance(parent, ast.Call) and \
                    _call_name(parent.func) in _ORDER_ERASERS:
                return True
            if not isinstance(parent, (ast.Call, ast.Starred,
                                       ast.GeneratorExp)):
                return False
            current = parent
        return False


# ---------------------------------------------------------------------------
# worker-boundary
# ---------------------------------------------------------------------------

_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque",
})

_DATA_KEYWORDS = frozenset({"args", "initargs", "iterable"})


def _crossing_data(call: ast.Call) -> list[ast.AST]:
    """Expressions whose *values* are pickled across this submit call."""
    out: list[ast.AST] = []
    if isinstance(call.func, ast.Attribute) and \
            is_pool_receiver(call.func.value):
        attr = call.func.attr
        if attr in ("apply", "apply_async") and len(call.args) > 1:
            payload = call.args[1]
            out.extend(payload.elts if isinstance(payload, (ast.Tuple,
                                                            ast.List))
                       else [payload])
        elif attr in ("map", "map_async", "imap", "imap_unordered",
                      "starmap", "starmap_async", "submit"):
            out.extend(call.args[1:])
    for keyword in call.keywords:
        if keyword.arg in _DATA_KEYWORDS:
            payload = keyword.value
            out.extend(payload.elts if isinstance(payload, (ast.Tuple,
                                                            ast.List))
                       else [payload])
    return out


class WorkerBoundaryRule(ProjectRule):
    """What crosses a pool boundary must pickle and must be fresh.

    Two hazards at every submission point, both invisible to the v1
    per-file rules:

    1. a *data* argument that is (or reaches, via a local definition)
       a lambda, generator expression, or open file handle — those
       fail to pickle at runtime, sometimes only under load;
    2. a submitted *callable* that — transitively, along the call
       graph — reads a module global initialized to a mutable value
       and mutated by parent-side code: workers see a fork-time
       snapshot, so parent mutations silently never arrive.
    """

    id = "worker-boundary"
    description = (
        "values crossing a pool submit boundary must pickle, and "
        "submitted callables must not read mutable module globals "
        "mutated in the parent process"
    )

    def __init__(self) -> None:
        self._hazard_cache: dict[tuple[int, str], dict[str, int]] = {}

    def check_module(self, ctx: LintContext) -> None:
        """Inspect every submission call in every scope."""
        info, model = ctx.module, ctx.model
        for fn_info, nodes in _scopes(info):
            defs = Definitions.from_nodes(nodes)
            for node in nodes:
                if isinstance(node, ast.Call):
                    self._check_data(node, defs, ctx)
                    self._check_callables(node, info, fn_info, model, ctx)

    # -- hazard 1: unpicklable data ------------------------------------------

    def _check_data(self, call: ast.Call, defs: Definitions,
                    ctx: LintContext) -> None:
        for expr in _crossing_data(call):
            verdict = self._unpicklable(expr, defs)
            if verdict is not None:
                ctx.report(
                    self.id, expr,
                    f"{verdict} crosses a worker-pool boundary here; it "
                    "cannot be pickled — pass plain data and rebuild the "
                    "object inside the worker",
                )

    def _unpicklable(self, expr: ast.AST,
                     defs: Definitions) -> str | None:
        if isinstance(expr, ast.Lambda):
            return "a lambda"
        if isinstance(expr, ast.GeneratorExp):
            return "a generator expression"
        if isinstance(expr, ast.Name):
            value = defs.reaching(expr.id, expr.lineno)
            if isinstance(value, ast.Lambda):
                return f"{expr.id!r} (bound to a lambda)"
            if isinstance(value, ast.GeneratorExp):
                return f"{expr.id!r} (bound to a generator expression)"
            if isinstance(value, ast.Call) and \
                    _call_name(value.func) == "open":
                return f"{expr.id!r} (an open file handle)"
        return None

    # -- hazard 2: stale parent state ----------------------------------------

    def _check_callables(self, call: ast.Call, info: ModuleInfo,
                         fn_info: FunctionInfo | None, model,
                         ctx: LintContext) -> None:
        for cand in submitted_callables(call):
            if not isinstance(cand, ast.Name):
                continue
            target = model.callgraph.resolve_name(info, cand.id, fn_info)
            if target is None:
                continue
            for qualname in sorted(model.callgraph.reachable(target,
                                                             limit=200)):
                mod, reached = model.callgraph.function(qualname)
                hazards = self._module_hazards(mod)
                read = self._reads_hazard(reached, hazards)
                if read is not None:
                    ctx.report(
                        self.id, cand,
                        f"worker callable {cand.id!r} reaches "
                        f"{qualname.replace(':', '.')}(), which reads "
                        f"module global {read!r} ({mod.name}:line "
                        f"{hazards[read]}) — a mutable value mutated in "
                        "the parent process; workers see a fork-time "
                        "snapshot, so pass the state through "
                        "initargs/arguments instead",
                    )
                    return

    def _module_hazards(self, mod: ModuleInfo) -> dict[str, int]:
        """Mutable-initialized, parent-mutated globals of one module."""
        key = (id(mod), mod.name)
        cached = self._hazard_cache.get(key)
        if cached is not None:
            return cached
        mutable: dict[str, int] = {}
        for name, value in mod.top_assigns.items():
            if isinstance(value, (ast.List, ast.Dict, ast.Set,
                                  ast.ListComp, ast.SetComp, ast.DictComp)):
                mutable[name] = value.lineno
            elif isinstance(value, ast.Call) and \
                    _call_name(value.func) in _MUTABLE_CONSTRUCTORS:
                mutable[name] = value.lineno
        hazards: dict[str, int] = {}
        if mutable:
            for fn in mod.functions.values():
                for name in self._mutated_globals(fn, set(mutable)):
                    hazards[name] = mutable[name]
        self._hazard_cache[key] = hazards
        return hazards

    def _mutated_globals(self, fn: FunctionInfo,
                         candidates: set[str]) -> set[str]:
        locals_ = set(fn.arg_names)
        declared_global: set[str] = set()
        for node in fn.local_nodes:
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Store):
                locals_.add(node.id)
        visible = (candidates - locals_) | (candidates & declared_global)
        if not visible:
            return set()
        mutated: set[str] = set()
        for node in fn.local_nodes:
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in MUTATOR_METHODS and \
                    isinstance(node.func.value, ast.Name) and \
                    node.func.value.id in visible:
                mutated.add(node.func.value.id)
            elif isinstance(node, ast.Subscript) and \
                    isinstance(node.ctx, (ast.Store, ast.Del)) and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id in visible:
                mutated.add(node.value.id)
            elif isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Store) and \
                    node.id in (candidates & declared_global):
                mutated.add(node.id)
        return mutated

    def _reads_hazard(self, fn: FunctionInfo,
                      hazards: dict[str, int]) -> str | None:
        if not hazards:
            return None
        shadowed = set(fn.arg_names)
        for node in fn.local_nodes:
            if isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Store):
                shadowed.add(node.id)
        for node in fn.local_nodes:
            if isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Load) and \
                    node.id in hazards and node.id not in shadowed:
                return node.id
        return None


# ---------------------------------------------------------------------------
# exception-flow
# ---------------------------------------------------------------------------

_METRICS_EMITTERS = frozenset({"count", "observe", "event"})


class ExceptionFlowRule(ProjectRule):
    """Typed repro errors must reach an outcome, not vanish.

    ``silent-degrade`` and ``handler-envelope`` inspect a handler's
    own body; this rule follows the call graph, so a handler that
    delegates to ``self._reject(...)`` is clean when ``_reject``
    (transitively) writes an envelope, builds a
    :class:`~repro.runtime.outcome.DocOutcome`, re-raises, or — in
    ``repro.runtime`` — emits a metrics signal.  Handlers already
    annotated with the legacy pragmas stay silent here too: one
    reviewed boundary, one annotation.
    """

    id = "exception-flow"
    description = (
        "handlers catching typed repro errors in repro.runtime / "
        "repro.server must reach a DocOutcome, error envelope, "
        "re-raise, or metrics emission along the call graph"
    )
    scope = ("repro/runtime/", "repro/server/")

    #: Legacy per-family pragmas that already mark a reviewed boundary.
    _LEGACY_PRAGMAS = ("silent-degrade", "handler-envelope")

    def __init__(self) -> None:
        self._sink_cache: dict[tuple[int, str, bool], bool] = {}

    def check_module(self, ctx: LintContext) -> None:
        """Check every typed-error handler in the module."""
        info, model = ctx.module, ctx.model
        server_mode = "repro/server/" in info.path.replace("\\", "/")
        for fn_info, nodes in _scopes(info):
            for node in nodes:
                if not isinstance(node, ast.ExceptHandler):
                    continue
                typed = typed_caught_names(node.type)
                if not typed:
                    continue
                if any(ctx.pragmas.is_disabled(legacy, node.lineno)
                       for legacy in self._LEGACY_PRAGMAS):
                    continue
                if self._handler_reaches_sink(node, info, fn_info, model,
                                              server_mode):
                    continue
                names = ", ".join(sorted(typed))
                outcomes = "a DocOutcome or error envelope" if server_mode \
                    else "a DocOutcome, envelope, or metrics emission"
                ctx.report(
                    self.id, node,
                    f"typed error(s) {names} caught here never reach "
                    f"{outcomes} — not in this handler, and not in any "
                    "function it calls; route the failure to an outcome "
                    "or re-raise",
                )

    def _handler_reaches_sink(self, handler: ast.ExceptHandler,
                              info: ModuleInfo,
                              fn_info: FunctionInfo | None,
                              model, server_mode: bool) -> bool:
        for node in local_nodes(handler):
            if isinstance(node, ast.Raise):
                return True
            if not isinstance(node, ast.Call):
                continue
            if self._is_sink_call(node, server_mode):
                return True
            target = model.callgraph.resolve_call(info, node, fn_info)
            if target is not None and \
                    self._callee_reaches_sink(target, model, server_mode):
                return True
        return False

    def _is_sink_call(self, call: ast.Call, server_mode: bool) -> bool:
        func = call.func
        name = _call_name(func)
        if name is None:
            return False
        if "envelope" in name.lower() or "outcome" in name.lower():
            return True
        if name == "DocOutcome" or (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "DocOutcome"
        ):
            return True
        if not server_mode and isinstance(func, ast.Attribute) and \
                func.attr in _METRICS_EMITTERS:
            return True
        return False

    def _callee_reaches_sink(self, qualname: str, model,
                             server_mode: bool) -> bool:
        callgraph = model.callgraph
        key = (id(model), qualname, server_mode)
        cached = self._sink_cache.get(key)
        if cached is not None:
            return cached
        found = False
        for reached in callgraph.reachable(qualname, limit=200):
            _, fn = callgraph.function(reached)
            for node in fn.local_nodes:
                if isinstance(node, ast.Raise):
                    found = True
                elif isinstance(node, ast.Call) and \
                        self._is_sink_call(node, server_mode):
                    found = True
                if found:
                    break
            if found:
                break
        self._sink_cache[key] = found
        return found


# ---------------------------------------------------------------------------
# resource-lifecycle
# ---------------------------------------------------------------------------

#: Calls that acquire an OS-backed resource needing release.  Journal
#: writers hold an unbuffered fd whose final frames are lost if never
#: closed; threads (the scrubber's daemon included) must be stopped and
#: joined, or a test run never exits cleanly.
_ACQUIRERS = frozenset({
    "open", "mmap", "socket", "socketpair", "create_connection",
    "Pool", "ProcessPoolExecutor", "ThreadPoolExecutor",
    "TemporaryFile", "NamedTemporaryFile", "SpooledTemporaryFile",
    "SharedMemory", "Thread", "JournalWriter", "ShardScrubber",
})

#: Method names that release (or begin releasing) a resource.
_RELEASERS = frozenset({
    "close", "terminate", "join", "shutdown", "release", "stop",
    "aclose", "wait_closed", "detach",
})


class ResourceLifecycleRule(ProjectRule):
    """Acquired resources must be released in the acquiring scope.

    A pool, socket, file, or mmap bound to a local name must be
    visible leaving that scope in one of the sanctioned ways: used as
    a ``with`` context, closed by a ``close``-family call (usually in
    ``finally``), returned or yielded to the caller, stored on an
    object, or handed to another call (``closing(x)``,
    ``stack.enter_context(x)``).  Anything else leaks a descriptor —
    quietly under CPython's refcounting, loudly the day a cycle keeps
    the object alive.
    """

    id = "resource-lifecycle"
    description = (
        "pools/sockets/files/mmaps bound to a name must be released "
        "via with/close/finally or visibly transfer ownership"
    )
    scope = ("src/repro/",)

    def check_module(self, ctx: LintContext) -> None:
        """Track acquisitions and releases per scope."""
        for _fn_info, nodes in _scopes(ctx.module):
            self._check_scope(nodes, ctx)

    def _check_scope(self, nodes: list[ast.AST], ctx: LintContext) -> None:
        acquired: list[tuple[str, ast.Call]] = []
        for node in nodes:
            name_value = self._acquisition(node)
            if name_value is not None:
                acquired.append(name_value)
        if not acquired:
            return
        names = {name for name, _ in acquired}
        released: set[str] = set()
        for node in nodes:
            released |= self._releases(node, names)
            if released >= names:
                break
        for name, call in acquired:
            if name not in released:
                ctx.report(
                    self.id, call,
                    f"resource bound to {name!r} is acquired here but "
                    "never released in this scope; use 'with', close it "
                    "in 'finally', or visibly transfer ownership",
                )

    def _acquisition(self, node: ast.AST) -> tuple[str, ast.Call] | None:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            return None
        if isinstance(target, ast.Name) and isinstance(value, ast.Call) \
                and _call_name(value.func) in _ACQUIRERS:
            return target.id, value
        return None

    def _releases(self, node: ast.AST, names: set[str]) -> set[str]:
        out: set[str] = set()
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for sub in ast.walk(item.context_expr):
                    if isinstance(sub, ast.Name) and sub.id in names:
                        out.add(sub.id)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in _RELEASERS and \
                    isinstance(func.value, ast.Name) and \
                    func.value.id in names:
                out.add(func.value.id)
            # Passing the resource *itself* to another call transfers
            # ownership (closing(x), stack.enter_context(x));
            # ``x.read()``-style uses inside an argument do not.
            for arg in list(node.args) + [k.value for k in node.keywords]:
                out |= self._direct_names(arg) & names
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)) and \
                node.value is not None:
            out |= self._direct_names(node.value) & names
        elif isinstance(node, ast.Assign):
            if any(isinstance(t, (ast.Attribute, ast.Subscript))
                   for t in node.targets):
                out |= self._direct_names(node.value) & names
        return out

    def _direct_names(self, expr: ast.AST) -> set[str]:
        """Names the expression evaluates *to* (not merely mentions)."""
        if isinstance(expr, ast.Name):
            return {expr.id}
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out: set[str] = set()
            for element in expr.elts:
                out |= self._direct_names(element)
            return out
        if isinstance(expr, ast.Dict):
            out = set()
            for value in expr.values:
                if value is not None:
                    out |= self._direct_names(value)
            return out
        if isinstance(expr, ast.Starred):
            return self._direct_names(expr.value)
        if isinstance(expr, (ast.Await, ast.NamedExpr)):
            return self._direct_names(expr.value)
        if isinstance(expr, ast.IfExp):
            return self._direct_names(expr.body) | \
                self._direct_names(expr.orelse)
        return set()


__all__ = [
    "DeterminismFlowRule",
    "ExceptionFlowRule",
    "ResourceLifecycleRule",
    "WorkerBoundaryRule",
]
