"""Project model: modules, symbols, imports — one parse pass.

reprolint v2 analyzes a *project*, not a stream of independent files.
:class:`ProjectModel` is the shared substrate every rule consults:

* one :class:`ModuleInfo` per file — source, AST, comments, a blake2b
  content hash, the module's dotted name, its top-level symbol table,
  and its import bindings;
* one :class:`FunctionInfo` per function — with the function's local
  node list (descendants without entering nested scopes) computed once
  and shared by every rule, where v1 had each rule re-walk every
  function it visited;
* the import graph between the run's modules, with the transitive-
  importer closure the incremental cache uses for invalidation.

Everything here is stdlib ``ast`` + ``tokenize`` + ``hashlib``, like
the rest of devtools.
"""

from __future__ import annotations

import ast
import hashlib
import io
import tokenize
from pathlib import Path
from typing import Iterable, Sequence

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = _FUNCTION_NODES + (ast.Lambda, ast.ClassDef)


def local_nodes(fn: ast.AST) -> list[ast.AST]:
    """All descendant nodes of ``fn`` without entering nested scopes."""
    out: list[ast.AST] = []
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        out.append(node)
        if not isinstance(node, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(node))
    return out


def arg_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    """Positional/keyword/star parameter names, in declaration order."""
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def content_hash(data: bytes) -> str:
    """blake2b digest of a module's bytes — the cache invalidation key."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def collect_comments(source: str) -> list[tuple[int, str]]:
    """All ``(line, text)`` comment tokens of a source string."""
    comments: list[tuple[int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The AST parse already surfaced (or will surface) the problem.
        pass
    return comments


def module_name_for_path(path: str | Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to the project root.

    ``src/repro/runtime/pack.py`` becomes ``repro.runtime.pack`` (the
    ``src`` layout prefix is dropped); packages collapse their
    ``__init__``; paths outside the root fall back to the file stem so
    scratch files still get a usable name.
    """
    p = Path(path)
    try:
        rel = p.resolve().relative_to(root.resolve())
    except (ValueError, OSError):
        return p.stem
    parts = list(rel.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else p.stem


def parse_payload(item: tuple[str, str]) -> tuple:
    """Parse one ``(path, source)`` pair into pickling-friendly parts.

    Module-level so ``multiprocessing`` can ship it to parse workers;
    returns ``(path, tree_or_None, error_or_None, comments)`` where the
    error is a ``(line, col, message)`` triple.
    """
    path, source = item
    try:
        tree = ast.parse(source, filename=path)
        error = None
    except SyntaxError as exc:
        tree = None
        error = (exc.lineno or 1, (exc.offset or 1) - 1,
                 f"cannot parse: {exc.msg}")
    return path, tree, error, collect_comments(source)


class FunctionInfo:
    """One function scope: node, qualified name, cached local walks."""

    __slots__ = ("node", "qualname", "class_name", "_local_nodes",
                 "_arg_names")

    def __init__(self, node, qualname: str, class_name: str | None):
        self.node = node
        self.qualname = qualname
        self.class_name = class_name
        self._local_nodes: list[ast.AST] | None = None
        self._arg_names: list[str] | None = None

    @property
    def local_nodes(self) -> list[ast.AST]:
        """Cached body walk — computed once, shared by every rule."""
        if self._local_nodes is None:
            self._local_nodes = local_nodes(self.node)
        return self._local_nodes

    @property
    def arg_names(self) -> list[str]:
        """Cached parameter-name list."""
        if self._arg_names is None:
            self._arg_names = arg_names(self.node)
        return self._arg_names


class ModuleInfo:
    """Everything the engine knows about one file after one parse."""

    def __init__(
        self,
        path: str,
        name: str,
        source: str,
        tree: ast.Module | None,
        comments: list[tuple[int, str]],
        digest: str,
        parse_error: tuple[int, int, str] | None = None,
    ):
        self.path = path
        self.name = name
        self.source = source
        self.tree = tree
        self.comments = comments
        self.content_hash = digest
        self.parse_error = parse_error
        self.functions: dict[str, FunctionInfo] = {}
        self._by_node: dict[int, FunctionInfo] = {}
        self.classes: dict[str, ast.ClassDef] = {}
        self.class_methods: dict[str, dict[str, FunctionInfo]] = {}
        self.class_bases: dict[str, list[str]] = {}
        self.top_assigns: dict[str, ast.expr] = {}
        self.import_targets: list[str] = []
        self.bindings: dict[str, tuple] = {}
        self._parents: dict[int, ast.AST] = {}
        self.first_code_line: int | None = None
        if tree is not None:
            self._populate(tree)

    # -- construction --------------------------------------------------------

    def _populate(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node
        self._index_scope(tree, prefix="", class_name=None)
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.top_assigns[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None \
                    and isinstance(stmt.target, ast.Name):
                self.top_assigns[stmt.target.id] = stmt.value
        self._index_imports(tree)
        self.first_code_line = self._find_first_code_line(tree)

    def _index_scope(self, scope, prefix: str, class_name: str | None) -> None:
        for stmt in ast.iter_child_nodes(scope):
            if isinstance(stmt, _FUNCTION_NODES):
                qual = f"{prefix}{stmt.name}"
                info = FunctionInfo(stmt, qual, class_name)
                self.functions[qual] = info
                self._by_node[id(stmt)] = info
                if class_name is not None and prefix == f"{class_name}.":
                    self.class_methods.setdefault(class_name, {})[
                        stmt.name] = info
                self._index_scope(stmt, prefix=f"{qual}.", class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                qual = f"{prefix}{stmt.name}"
                if prefix == "":
                    self.classes[stmt.name] = stmt
                    self.class_methods.setdefault(stmt.name, {})
                    self.class_bases[stmt.name] = [
                        base.id if isinstance(base, ast.Name) else base.attr
                        for base in stmt.bases
                        if isinstance(base, (ast.Name, ast.Attribute))
                    ]
                self._index_scope(stmt, prefix=f"{qual}.",
                                  class_name=stmt.name if prefix == ""
                                  else class_name)

    def _index_imports(self, tree: ast.Module) -> None:
        package = self.name.rsplit(".", 1)[0] if "." in self.name else ""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.import_targets.append(alias.name)
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.bindings.setdefault(bound, ("module", target))
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_relative(node, package)
                if base is None:
                    continue
                for alias in node.names:
                    sub = f"{base}.{alias.name}" if base else alias.name
                    self.import_targets.append(sub)
                    self.bindings.setdefault(
                        alias.asname or alias.name,
                        ("symbol", base, alias.name),
                    )
                if base:
                    self.import_targets.append(base)

    def _resolve_relative(self, node: ast.ImportFrom,
                          package: str) -> str | None:
        if node.level == 0:
            return node.module or ""
        parts = self.name.split(".")
        if node.level > len(parts):
            return None
        base_parts = parts[: len(parts) - node.level]
        if node.module:
            base_parts += node.module.split(".")
        return ".".join(base_parts)

    def _find_first_code_line(self, tree: ast.Module) -> int | None:
        for i, stmt in enumerate(tree.body):
            if i == 0 and isinstance(stmt, ast.Expr) and \
                    isinstance(stmt.value, ast.Constant) and \
                    isinstance(stmt.value.value, str):
                continue  # the module docstring
            return stmt.lineno
        return None

    # -- queries -------------------------------------------------------------

    def function_at(self, node: ast.AST) -> FunctionInfo | None:
        """The :class:`FunctionInfo` owning this def node, if indexed."""
        return self._by_node.get(id(node))

    def parent_of(self, node: ast.AST) -> ast.AST | None:
        """The AST parent of ``node`` (None for the module itself)."""
        return self._parents.get(id(node))

    def module_nodes(self) -> list[ast.AST]:
        """Module-level statements walked without entering scopes."""
        if self.tree is None:
            return []
        return local_nodes(self.tree)


def build_module(
    path: str,
    source: str,
    root: Path,
    *,
    tree: ast.Module | None = None,
    comments: list[tuple[int, str]] | None = None,
    parse_error: tuple[int, int, str] | None = None,
    digest: str | None = None,
    parsed: bool = False,
) -> ModuleInfo:
    """Parse (unless pre-parsed) and index one module."""
    if not parsed:
        _, tree, parse_error, comments = parse_payload((path, source))
    return ModuleInfo(
        path=path,
        name=module_name_for_path(path, root),
        source=source,
        tree=tree,
        comments=comments if comments is not None else [],
        digest=digest if digest is not None
        else content_hash(source.encode("utf-8")),
        parse_error=parse_error,
    )


def resolve_targets(targets: Iterable[str],
                    known_names: Sequence[str] | set[str]) -> set[str]:
    """Map raw dotted import targets onto the run's module names.

    A target matches the longest known prefix of itself, so
    ``import repro.runtime.pack`` links to ``repro.runtime.pack`` when
    that module is in the run and to ``repro.runtime`` (its package)
    otherwise.
    """
    known = set(known_names)
    resolved: set[str] = set()
    for target in targets:
        parts = target.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in known:
                resolved.add(candidate)
                break
    return resolved


class ProjectModel:
    """The modules of one lint run plus their import graph."""

    def __init__(self, root: Path):
        self.root = root
        self.modules: dict[str, ModuleInfo] = {}
        self._by_path: dict[str, ModuleInfo] = {}
        self.imports_of: dict[str, set[str]] = {}
        self.importers_of: dict[str, set[str]] = {}
        self._callgraph = None
        self._exceptions = None
        self._purity = None

    def add_module(self, info: ModuleInfo) -> None:
        """Register a parsed module (last one wins on name collision)."""
        self.modules[info.name] = info
        self._by_path[info.path] = info

    def finalize(self) -> None:
        """Resolve import edges now that the module set is complete."""
        names = set(self.modules)
        self.imports_of = {}
        self.importers_of = {name: set() for name in names}
        for name, info in self.modules.items():
            edges = resolve_targets(info.import_targets, names)
            edges.discard(name)
            self.imports_of[name] = edges
            for target in edges:
                self.importers_of.setdefault(target, set()).add(name)

    def module_for_path(self, path: str) -> ModuleInfo | None:
        """The module registered under this path string, if any."""
        return self._by_path.get(path)

    def transitive_importers(self, seeds: Iterable[str]) -> set[str]:
        """Seeds plus every module that (transitively) imports them."""
        return self._closure(seeds, self.importers_of)

    def transitive_imports(self, seeds: Iterable[str]) -> set[str]:
        """Seeds plus every module they (transitively) import."""
        return self._closure(seeds, self.imports_of)

    def _closure(self, seeds: Iterable[str],
                 edges: dict[str, set[str]]) -> set[str]:
        out = set(seed for seed in seeds if seed in self.modules)
        stack = list(out)
        while stack:
            current = stack.pop()
            for nxt in edges.get(current, ()):
                if nxt not in out:
                    out.add(nxt)
                    stack.append(nxt)
        return out

    # -- lazy analyses -------------------------------------------------------

    @property
    def callgraph(self):
        """The conservative project call graph (built on first use)."""
        if self._callgraph is None:
            from .callgraph import CallGraph
            self._callgraph = CallGraph(self)
        return self._callgraph

    def exception_summaries(self) -> dict[str, frozenset[str]]:
        """Typed-error escape summaries per function (built on first use)."""
        if self._exceptions is None:
            from .dataflow import exception_summaries
            self._exceptions = exception_summaries(self, self.callgraph)
        return self._exceptions

    def purity(self) -> dict[str, str]:
        """Purity verdicts per function (built on first use)."""
        if self._purity is None:
            from .dataflow import infer_purity
            self._purity = infer_purity(self, self.callgraph)
        return self._purity
