"""Suppression pragmas: ``# lint: disable=rule-id[,rule-id...]``.

reprolint has exactly one suppression syntax (the tree previously mixed
``# noqa`` codes in):

* ``code  # lint: disable=rule-a,rule-b`` silences those rules on that
  physical line only — the line a finding is anchored to is the
  reported node's ``lineno``;
* ``# lint: disable-file=rule-a`` in the file *header* (before the
  first non-docstring statement) silences the rules for the whole
  file.  A disable-file pragma buried mid-file is a hard error and
  suppresses nothing: file-wide suppressions must be visible where a
  reviewer reads the file header.

Unknown rule IDs inside a pragma are hard errors, not silent no-ops: a
typo in a suppression must never suppress nothing while looking like it
suppressed something — and when one ID of a multi-ID pragma is bad,
the error names that ID while the valid IDs still apply.  Errors
surface as findings under the reserved ``pragma`` rule ID, which
itself cannot be disabled.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: Reserved rule ID for malformed pragmas; never suppressible.
PRAGMA_RULE_ID = "pragma"

_PRAGMA_RE = re.compile(r"#\s*lint:\s*(disable(?:-file)?)\s*=\s*([^#]*)")
_RULE_ID_RE = re.compile(r"^[a-z][a-z0-9]*(?:-[a-z0-9]+)*$")


@dataclass
class PragmaError:
    """One malformed pragma occurrence (bad syntax or unknown rule ID)."""

    line: int
    message: str


@dataclass
class PragmaIndex:
    """Which rules are disabled on which lines (or file-wide)."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)
    errors: list[PragmaError] = field(default_factory=list)

    def is_disabled(self, rule_id: str, line: int) -> bool:
        """True when ``rule_id`` is suppressed at ``line``."""
        if rule_id == PRAGMA_RULE_ID:
            return False
        if rule_id in self.file_wide:
            return True
        return rule_id in self.by_line.get(line, ())

    @classmethod
    def parse(
        cls,
        comments: list[tuple[int, str]],
        known_rule_ids: frozenset[str] | set[str],
        first_code_line: int | None = None,
    ) -> "PragmaIndex":
        """Build the index from ``(line, comment_text)`` pairs.

        ``known_rule_ids`` is the registry's ID set; anything else in a
        disable list is recorded as a :class:`PragmaError`.  When
        ``first_code_line`` is given (the line of the module's first
        non-docstring statement), a ``disable-file`` pragma after it is
        a hard error and is not applied.
        """
        index = cls()
        for line, text in comments:
            match = _PRAGMA_RE.search(text)
            if match is None:
                if re.search(r"#\s*lint:", text):
                    index.errors.append(PragmaError(
                        line,
                        "malformed lint pragma: expected "
                        "'# lint: disable=rule-id' or "
                        "'# lint: disable-file=rule-id'",
                    ))
                continue
            kind, id_list = match.group(1), match.group(2)
            rule_ids = [part.strip() for part in id_list.split(",")]
            accepted: set[str] = set()
            for rule_id in rule_ids:
                if not rule_id:
                    index.errors.append(PragmaError(
                        line, "empty rule ID in lint pragma"
                    ))
                    continue
                if rule_id == PRAGMA_RULE_ID:
                    index.errors.append(PragmaError(
                        line, f"the {PRAGMA_RULE_ID!r} rule cannot be disabled"
                    ))
                    continue
                if not _RULE_ID_RE.match(rule_id) or \
                        rule_id not in known_rule_ids:
                    index.errors.append(PragmaError(
                        line,
                        f"unknown rule ID {rule_id!r} in lint pragma "
                        f"(known: {', '.join(sorted(known_rule_ids))})",
                    ))
                    continue
                accepted.add(rule_id)
            if kind == "disable-file" and first_code_line is not None \
                    and line > first_code_line:
                index.errors.append(PragmaError(
                    line,
                    f"'# lint: disable-file=...' on line {line} is not at "
                    "the top of the module (the first statement is on "
                    f"line {first_code_line}); move the pragma into the "
                    "file header — file-wide suppressions must be visible "
                    "where the file is introduced",
                ))
                continue
            if accepted:
                if kind == "disable-file":
                    index.file_wide.update(accepted)
                else:
                    index.by_line.setdefault(line, set()).update(accepted)
        return index
