"""Finding reporters: human text and machine JSON.

Both render the same :class:`repro.devtools.engine.Finding` list; the
text form is for terminals (one ``path:line:col`` locator per line, the
conventional clickable format), the JSON form is for CI gates and
editors (stable keys, round-trips through ``json.loads``).
"""

from __future__ import annotations

import json
from typing import Sequence

from .engine import Finding


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: [rule-id] message`` line per finding.

    Ends with a one-line summary; returns ``"clean"``-style summary
    text even for zero findings so the CLI always prints something
    actionable.
    """
    lines = [
        f"{finding.location()}: [{finding.rule}] {finding.message}"
        for finding in findings
    ]
    n = len(findings)
    if n == 0:
        lines.append("reprolint: clean (0 findings)")
    else:
        files = len({finding.path for finding in findings})
        lines.append(
            f"reprolint: {n} finding{'s' if n != 1 else ''} "
            f"in {files} file{'s' if files != 1 else ''}"
        )
    return "\n".join(lines) + "\n"


def render_json(findings: Sequence[Finding]) -> str:
    """The findings as a stable JSON document.

    Shape: ``{"count": int, "findings": [{rule, path, line, col,
    message}, ...]}`` with sorted keys — byte-stable for identical
    inputs, so CI diffs are meaningful.
    """
    payload = {
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
