"""Finding reporters: human text, machine JSON, and SARIF.

All three render the same :class:`repro.devtools.engine.Finding` list;
the text form is for terminals (one ``path:line:col`` locator per
line, the conventional clickable format), the JSON form is for CI
gates and editors (stable keys, round-trips through ``json.loads``),
and the SARIF form is for code-scanning UIs (SARIF 2.1.0, the subset
GitHub code scanning ingests).  Every reporter is byte-stable for
identical inputs so CI artifact diffs stay meaningful.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from .engine import ENGINE_VERSION, Finding


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: [rule-id] message`` line per finding.

    Ends with a one-line summary; returns ``"clean"``-style summary
    text even for zero findings so the CLI always prints something
    actionable.
    """
    lines = [
        f"{finding.location()}: [{finding.rule}] {finding.message}"
        for finding in findings
    ]
    n = len(findings)
    if n == 0:
        lines.append("reprolint: clean (0 findings)")
    else:
        files = len({finding.path for finding in findings})
        lines.append(
            f"reprolint: {n} finding{'s' if n != 1 else ''} "
            f"in {files} file{'s' if files != 1 else ''}"
        )
    return "\n".join(lines) + "\n"


def render_json(findings: Sequence[Finding]) -> str:
    """The findings as a stable JSON document.

    Shape: ``{"count": int, "findings": [{rule, path, line, col,
    message}, ...]}`` with sorted keys — byte-stable for identical
    inputs, so CI diffs are meaningful.
    """
    payload = {
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _sarif_uri(path: str, project_root: Path | None) -> str:
    """Repo-relative posix URI when possible, the raw path otherwise."""
    p = Path(path)
    if project_root is not None:
        try:
            p = p.resolve().relative_to(Path(project_root).resolve())
        except (ValueError, OSError):
            pass
    return p.as_posix()


def render_sarif(
    findings: Sequence[Finding],
    rules: Sequence | None = None,
    project_root: str | Path | None = None,
) -> str:
    """The findings as a SARIF 2.1.0 document.

    ``rules`` (any objects with ``id``/``description``) populate the
    tool's rule metadata — pass the active rule instances so scanning
    UIs can show each rule's contract; ``project_root`` relativizes
    artifact URIs.  Columns are 1-based in SARIF, so ``col + 1``.
    """
    root = Path(project_root) if project_root is not None else None
    rule_meta = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.description},
        }
        for rule in sorted(rules or (), key=lambda r: r.id)
    ]
    results = [
        {
            "level": "error",
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _sarif_uri(finding.path, root),
                    },
                    "region": {
                        "startColumn": finding.col + 1,
                        "startLine": finding.line,
                    },
                },
            }],
            "message": {"text": finding.message},
            "ruleId": finding.rule,
        }
        for finding in findings
    ]
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "runs": [{
            "results": results,
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "rules": rule_meta,
                    "version": ENGINE_VERSION,
                },
            },
        }],
        "version": "2.1.0",
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
