"""reprolint's project-specific rules: XSDF's correctness contracts.

Every rule encodes an invariant the test suite can only spot after the
fact — these catch the *shape* of the regression statically:

==================  ========================================================
Rule ID             Contract
==================  ========================================================
index-parity        ``index=`` fast paths must be guarded by ``is not
                    None`` and keep the plain network-walk fallback
cache-purity        no parameter/module-global mutation in the
                    cache-reachable similarity/runtime code
determinism         no unseeded ``random``, wall-clock time, ``os.environ``
                    or set-order-dependent iteration in the pipeline
picklable-submit    no lambdas or locally-defined functions at pool
                    submission points (they do not pickle)
definition-xref     every ``Definition N`` / ``Eq. (N)`` citation must
                    exist in DESIGN.md / PAPER.md
broad-except        no bare/broad excepts outside annotated isolation
                    boundaries
mutable-default     no mutable default argument values
public-api          public API needs docstrings (and, in
                    ``repro.similarity`` / ``repro.runtime``, complete
                    type annotations)
memo-key-purity     sphere-signature builders must fold frozen
                    fingerprint digests into memo keys, never live
                    config/network attribute reads
silent-degrade      fallback/except branches in ``repro.runtime`` must
                    re-raise or emit a MetricsRegistry signal, or carry
                    an explicit pragma
handler-envelope    except branches in ``repro.server`` must re-raise or
                    produce a typed error envelope, or carry an explicit
                    pragma
determinism-flow    set-typed values must not flow into float
                    accumulation, ordered output, or memo keys
                    (project rule, :mod:`repro.devtools.flowrules`)
worker-boundary     values crossing a pool submit boundary must pickle
                    and must not close over mutable parent state
exception-flow      typed repro errors caught in runtime/server must
                    reach a DocOutcome/envelope/metrics outcome along
                    the call graph
resource-lifecycle  pools, sockets, files and mmaps must be closed via
                    ``with``/``finally`` (or ownership transferred)
==================  ========================================================

Rules are heuristic by design — stdlib ``ast`` has no type
information — but since v2 they share the project model
(:mod:`repro.devtools.model`): function-local walks are computed once
per function, and the four flow rules (defined in
:mod:`repro.devtools.flowrules`) additionally consult the import
graph, call graph, and dataflow summaries.  Each rule is tuned so the
merged tree lints clean and a genuine violation of the contract it
guards cannot slip through the common door (see the per-rule fixture
battery in ``tests/devtools``).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from .dataflow import (
    MUTATOR_METHODS as _MUTATOR_METHODS,
    submitted_callables,
)
from .engine import LintContext, Rule

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


# ---------------------------------------------------------------------------
# index-parity
# ---------------------------------------------------------------------------


class IndexParityRule(Rule):
    """``index=`` fast paths must be guarded and keep the slow path.

    The :class:`repro.runtime.index.SemanticIndex` contract is that the
    indexed path is a pure accelerator: any function that *dereferences*
    an ``index`` parameter (or ``self._index``) — attribute access,
    subscript, or call — must test it against ``None`` in the same
    function and keep a fallback branch that runs without it.  The
    same contract covers the interned
    :class:`repro.runtime.pack.PackedIndex` fast path, conventionally
    stored as ``self._packed``: packed-kernel dereferences need their
    own ``None`` guard and a surviving slower branch.  Merely storing
    or forwarding the index (``self._index = index``,
    ``XSDF(..., index=index)``) is a pass-through and stays silent.
    """

    id = "index-parity"
    description = (
        "functions dereferencing an index= parameter (or the packed-index "
        "attribute) must guard it with 'is not None' and keep a "
        "slower-path fallback branch"
    )

    def visit_FunctionDef(self, fn: ast.FunctionDef, ctx: LintContext) -> None:
        """Check one function's index uses against its None guards."""
        self._check(fn, ctx)

    def visit_AsyncFunctionDef(self, fn, ctx: LintContext) -> None:
        """Async variant of :meth:`visit_FunctionDef`."""
        self._check(fn, ctx)

    def _check(self, fn, ctx: LintContext) -> None:
        index_names = (
            {"index"} if self._has_optional_index_param(fn) else set()
        )
        nodes = ctx.local_nodes(fn)
        # Direct aliases of the index (``index = self._index``) join the
        # tracked set so guards on the alias count.
        for node in nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and self._is_index_expr(node.value, index_names):
                index_names.add(node.targets[0].id)

        uses = [
            node for node in nodes if self._is_deref(node, index_names)
        ]
        if not uses:
            return
        compares = [
            node for node in nodes
            if self._none_compare_kind(node, index_names) is not None
        ]
        first = min(uses, key=lambda n: (n.lineno, n.col_offset))
        if not compares:
            ctx.report(
                self.id, first,
                "index fast path dereferenced without an 'is not None' "
                "guard; the indexed path must be conditional, with the "
                "plain network walk as the other branch",
            )
            return
        if not self._has_fallback(fn, index_names, ctx):
            ctx.report(
                self.id, first,
                "index None-guard has no fallback branch: keep the plain "
                "network-walk path alongside the indexed fast path",
            )

    def _has_optional_index_param(self, fn) -> bool:
        # The fast-path signature is always ``index=None`` — a *required*
        # parameter that happens to be called ``index`` (pytest fixtures,
        # integer positions) is not the SemanticIndex contract.
        args = fn.args
        positional = args.posonlyargs + args.args
        defaulted = positional[len(positional) - len(args.defaults):]
        for arg, default in zip(defaulted, args.defaults):
            if arg.arg == "index" and isinstance(default, ast.Constant) \
                    and default.value is None:
                return True
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if arg.arg == "index" and isinstance(default, ast.Constant) \
                    and default.value is None:
                return True
        return False

    def _is_index_expr(self, node: ast.AST, index_names: set[str]) -> bool:
        if isinstance(node, ast.Name):
            return node.id in index_names
        return (
            isinstance(node, ast.Attribute)
            and node.attr in ("_index", "_packed")
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    def _is_deref(self, node: ast.AST, index_names: set[str]) -> bool:
        if isinstance(node, ast.Attribute):
            return isinstance(node.ctx, ast.Load) and \
                self._is_index_expr(node.value, index_names)
        if isinstance(node, ast.Subscript):
            return self._is_index_expr(node.value, index_names)
        if isinstance(node, ast.Call):
            return self._is_index_expr(node.func, index_names)
        return False

    def _none_compare_kind(
        self, node: ast.AST, index_names: set[str]
    ) -> str | None:
        if not (isinstance(node, ast.Compare) and len(node.ops) == 1
                and isinstance(node.ops[0], (ast.Is, ast.IsNot))):
            return None
        left, right = node.left, node.comparators[0]
        for a, b in ((left, right), (right, left)):
            if self._is_index_expr(a, index_names) and \
                    isinstance(b, ast.Constant) and b.value is None:
                return "isnot" if isinstance(node.ops[0], ast.IsNot) else "is"
        return None

    def _has_fallback(self, fn, index_names: set[str],
                      ctx: LintContext) -> bool:
        guard_ifs = []
        for node in ctx.local_nodes(fn):
            if isinstance(node, (ast.If, ast.IfExp)):
                for sub in ast.walk(node.test):
                    kind = self._none_compare_kind(sub, index_names)
                    if kind is not None:
                        guard_ifs.append((node, kind))
                        break
        if not guard_ifs:
            # The compare lives outside an if (e.g. assigned to a flag);
            # static analysis cannot follow it further — accept.
            return True
        for node, kind in guard_ifs:
            if isinstance(node, ast.IfExp):
                return True          # ternaries always carry both branches
            if kind == "is":
                return True          # 'if index is None:' body IS the fallback
            if node.orelse or self._has_statements_after(fn, node):
                return True
        return False

    def _has_statements_after(self, fn, target: ast.AST) -> bool:
        for parent in ast.walk(fn):
            for fieldname in ("body", "orelse", "finalbody"):
                seq = getattr(parent, fieldname, None)
                if isinstance(seq, list) and target in seq:
                    return seq.index(target) < len(seq) - 1
        return False


# ---------------------------------------------------------------------------
# cache-purity
# ---------------------------------------------------------------------------


class CachePurityRule(Rule):
    """No parameter or module-global mutation in cache-reachable code.

    The similarity caches (:mod:`repro.runtime.cache`) assume the
    functions they memoize are pure in their inputs: a cached call that
    mutated a parameter or a module global would behave differently on
    a hit than on a miss.  Scoped to ``repro.similarity`` and
    ``repro.runtime`` — the call graph under the cache-wrapped sites.
    Mutating ``self`` is fine (that is where caches themselves live);
    rebinding a local that merely copied a parameter is fine too.
    """

    id = "cache-purity"
    description = (
        "no mutation of parameters or module globals in functions "
        "reachable from cached call sites (repro.similarity, repro.runtime)"
    )
    scope = ("repro/similarity/", "repro/runtime/")

    def visit_FunctionDef(self, fn: ast.FunctionDef, ctx: LintContext) -> None:
        """Check one function for global/parameter mutation."""
        self._check(fn, ctx)

    def visit_AsyncFunctionDef(self, fn, ctx: LintContext) -> None:
        """Async variant of :meth:`visit_FunctionDef`."""
        self._check(fn, ctx)

    def _check(self, fn, ctx: LintContext) -> None:
        nodes = ctx.local_nodes(fn)
        self._check_globals(fn, nodes, ctx)
        params = {
            name for name in ctx.arg_names(fn)
            if name not in ("self", "cls")
        }
        if not params:
            return
        shadowed = self._shadowed_names(nodes)
        live = params - shadowed
        for node in nodes:
            mutated = self._mutated_param(node, live)
            if mutated:
                ctx.report(
                    self.id, node,
                    f"parameter {mutated!r} is mutated; cache-reachable "
                    "functions must treat their inputs as immutable "
                    "(copy first, or return a new value)",
                )

    def _check_globals(self, fn, nodes: list[ast.AST], ctx: LintContext) -> None:
        declared: dict[str, ast.Global] = {}
        for node in nodes:
            if isinstance(node, ast.Global):
                for name in node.names:
                    declared[name] = node
        if not declared:
            return
        for node in nodes:
            if isinstance(node, ast.Name) and node.id in declared \
                    and isinstance(node.ctx, (ast.Store, ast.Del)):
                stmt = declared[node.id]
                ctx.report(
                    self.id, stmt,
                    f"module global {node.id!r} is reassigned inside a "
                    "function; cached code must not depend on mutable "
                    "process-wide state",
                )
                del declared[node.id]
                if not declared:
                    return

    def _shadowed_names(self, nodes: list[ast.AST]) -> set[str]:
        shadowed: set[str] = set()
        for node in nodes:
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                shadowed.add(node.id)
            elif isinstance(node, ast.arg):
                pass
        return shadowed

    def _mutated_param(self, node: ast.AST, params: set[str]) -> str | None:
        def param_name(expr: ast.AST) -> str | None:
            if isinstance(expr, ast.Name) and expr.id in params:
                return expr.id
            return None

        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATOR_METHODS:
            return param_name(node.func.value)
        if isinstance(node, ast.Subscript) and \
                isinstance(node.ctx, (ast.Store, ast.Del)):
            return param_name(node.value)
        if isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Subscript):
                return param_name(target.value)
            if isinstance(target, ast.Attribute):
                return param_name(target.value)
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Store):
            return param_name(node.value)
        return None


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------

_CLOCK_ATTRS = frozenset({"time", "time_ns", "localtime", "ctime"})
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


class DeterminismRule(Rule):
    """The pipeline must be a pure function of its inputs.

    The ten-dataset evaluation is replayable only if ``repro.core``,
    ``repro.similarity`` and ``repro.semnet`` never consult hidden
    nondeterministic inputs: the unseeded ``random`` module API,
    wall-clock time, ``os.environ``, or the iteration order of a set
    (``random.Random(seed)`` instances are explicitly allowed — that is
    the sanctioned randomness).
    """

    id = "determinism"
    description = (
        "no unseeded random, wall-clock time, os.environ, or "
        "set-order-dependent iteration in the deterministic pipeline"
    )
    scope = ("repro/core/", "repro/similarity/", "repro/semnet/")

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        """Flag unseeded-RNG / clock / environment calls."""
        func = node.func
        if not isinstance(func, ast.Attribute) or \
                not isinstance(func.value, ast.Name):
            return
        module, attr = func.value.id, func.attr
        if module == "random" and attr not in ("Random", "SystemRandom"):
            ctx.report(
                self.id, node,
                f"random.{attr}() uses the shared unseeded RNG; "
                "thread a random.Random(seed) instance instead",
            )
        elif module == "time" and attr in _CLOCK_ATTRS:
            ctx.report(
                self.id, node,
                f"time.{attr}() makes pipeline output depend on the "
                "wall clock; pass timestamps in explicitly",
            )
        elif module == "datetime" and attr in _DATETIME_ATTRS:
            ctx.report(
                self.id, node,
                f"datetime.{attr}() makes pipeline output depend on the "
                "wall clock; pass timestamps in explicitly",
            )
        elif module == "os" and attr == "getenv":
            ctx.report(
                self.id, node,
                "os.getenv() reads hidden configuration; thread settings "
                "through XSDFConfig instead",
            )

    def visit_Attribute(self, node: ast.Attribute, ctx: LintContext) -> None:
        """Flag ``os.environ`` access."""
        if isinstance(node.value, ast.Name) and node.value.id == "os" \
                and node.attr == "environ":
            ctx.report(
                self.id, node,
                "os.environ reads hidden configuration; thread settings "
                "through XSDFConfig instead",
            )

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: LintContext) -> None:
        """Flag importing unseeded-random / clock names directly."""
        if node.module == "random":
            bad = [a.name for a in node.names
                   if a.name not in ("Random", "SystemRandom")]
            if bad:
                ctx.report(
                    self.id, node,
                    f"from random import {', '.join(bad)} pulls in the "
                    "shared unseeded RNG; import Random and seed it",
                )
        elif node.module == "time":
            bad = [a.name for a in node.names if a.name in _CLOCK_ATTRS]
            if bad:
                ctx.report(
                    self.id, node,
                    f"from time import {', '.join(bad)} leaks the wall "
                    "clock into the deterministic pipeline",
                )

    def visit_For(self, node: ast.For, ctx: LintContext) -> None:
        """Flag iteration directly over a set expression."""
        self._check_iter(node.iter, ctx)

    def visit_comprehension(self, node, ctx: LintContext) -> None:
        """Flag comprehension iteration directly over a set expression."""
        self._check_iter(node.iter, ctx)

    def _check_iter(self, iter_expr: ast.AST, ctx: LintContext) -> None:
        if self._is_set_expr(iter_expr):
            ctx.report(
                self.id, iter_expr,
                "iterating a set has no guaranteed order; iterate "
                "sorted(...) or a list to keep results replayable",
            )

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, (ast.BitAnd, ast.BitOr, ast.Sub)):
            return self._is_set_expr(node.left) or \
                self._is_set_expr(node.right)
        return False


# ---------------------------------------------------------------------------
# picklable-submit
# ---------------------------------------------------------------------------


class PicklableSubmitRule(Rule):
    """Pool submission points only accept picklable callables.

    ``multiprocessing`` pickles the callable sent to workers; lambdas
    and functions defined inside another function fail at runtime with
    an opaque ``PicklingError`` — on some platforms only under load.
    :class:`repro.runtime.executor.BatchExecutor` therefore keeps its
    worker functions at module level, and this rule pins that shape at
    every ``pool.map(...)`` / ``Pool(initializer=...)``-style call.
    """

    id = "picklable-submit"
    description = (
        "no lambdas or locally-defined functions at pool submission "
        "points (map/apply_async/submit/initializer=)"
    )

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        """Flag lambdas handed to a submission call."""
        for candidate in submitted_callables(node):
            if isinstance(candidate, ast.Lambda):
                ctx.report(
                    self.id, candidate,
                    "lambda passed to a worker-pool submission point; "
                    "lambdas do not pickle — use a module-level function",
                )

    def visit_FunctionDef(self, fn: ast.FunctionDef, ctx: LintContext) -> None:
        """Flag locally-defined functions handed to a submission call."""
        self._check_nested(fn, ctx)

    def visit_AsyncFunctionDef(self, fn, ctx: LintContext) -> None:
        """Async variant of :meth:`visit_FunctionDef`."""
        self._check_nested(fn, ctx)

    def _check_nested(self, fn, ctx: LintContext) -> None:
        nodes = ctx.local_nodes(fn)
        nested = {
            node.name for node in nodes if isinstance(node, _FUNCTION_NODES)
        }
        if not nested:
            return
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            for candidate in submitted_callables(node):
                if isinstance(candidate, ast.Name) and \
                        candidate.id in nested:
                    ctx.report(
                        self.id, candidate,
                        f"locally-defined function {candidate.id!r} passed "
                        "to a worker-pool submission point; local "
                        "functions do not pickle — move it to module level",
                    )

    # Submission-point detection (what counts as a pool receiver and a
    # submitted callable) is shared with the worker-boundary rule — see
    # :func:`repro.devtools.dataflow.submitted_callables`.


# ---------------------------------------------------------------------------
# definition-xref
# ---------------------------------------------------------------------------

_CITATION_PATTERNS = {
    "Definition": re.compile(
        r"\b(?:Definition|Defs?\.?)\s+(\d+)(?:\s*[-–]\s*(\d+))?"
    ),
    "Eq.": re.compile(
        r"\bEqs?\.?\s*\(?(\d+)\)?(?:\s*[-–]\s*\(?(\d+)\)?)?"
    ),
    "Prop.": re.compile(
        r"\bProps?\.?\s+(\d+)(?:\s*[-–]\s*(\d+))?"
    ),
}

#: Catalogue cache keyed by project root (DESIGN.md/PAPER.md rarely
#: change within one lint run; parsing them once per file would be
#: quadratic in tree size).
_CATALOGUE_CACHE: dict[str, dict[str, set[int]] | None] = {}


def load_catalogue(root: Path) -> dict[str, set[int]] | None:
    """Citation namespaces (``Definition``/``Eq.``/``Prop.``) -> valid
    numbers, parsed from DESIGN.md and PAPER.md under ``root``.

    Returns ``None`` when neither file exists — the cross-reference
    rule is inert without a catalogue to check against.
    """
    key = str(root)
    if key in _CATALOGUE_CACHE:
        return _CATALOGUE_CACHE[key]
    texts = []
    for name in ("DESIGN.md", "PAPER.md"):
        path = root / name
        if path.is_file():
            try:
                texts.append(path.read_text(encoding="utf-8"))
            except OSError:
                pass
    if not texts:
        _CATALOGUE_CACHE[key] = None
        return None
    catalogue: dict[str, set[int]] = {}
    for namespace, pattern in _CITATION_PATTERNS.items():
        numbers: set[int] = set()
        for text in texts:
            for match in pattern.finditer(text):
                numbers.update(_expand_citation(match))
        catalogue[namespace] = numbers
    _CATALOGUE_CACHE[key] = catalogue
    return catalogue


def _expand_citation(match: re.Match) -> list[int]:
    first = int(match.group(1))
    second = match.group(2)
    if second is None:
        return [first]
    last = int(second)
    if first <= last <= first + 50:
        return list(range(first, last + 1))
    return [first, last]


class DefinitionXrefRule(Rule):
    """``Definition N`` / ``Eq. (N)`` citations must exist in the docs.

    The code is navigated through its paper citations; a citation of a
    definition or equation that DESIGN.md / PAPER.md do not list is
    either a typo or a drift between code and the paper catalogue —
    both break the audit trail the reproduction depends on.  Scans
    docstrings, string constants, and comments.
    """

    id = "definition-xref"
    description = (
        "Definition/Eq./Prop. citations in code and comments must exist "
        "in the DESIGN.md/PAPER.md catalogue"
    )

    _catalogue: dict[str, set[int]] | None = None

    def begin_file(self, ctx: LintContext) -> None:
        """Load the catalogue and scan this file's comments."""
        self._catalogue = load_catalogue(ctx.project_root)
        if self._catalogue is None:
            return
        for line, text in ctx.comments:
            self._scan(text, line, ctx)

    def visit_Constant(self, node: ast.Constant, ctx: LintContext) -> None:
        """Scan string constants (docstrings included)."""
        if self._catalogue is None or not isinstance(node.value, str):
            return
        self._scan(node.value, node.lineno, ctx, multiline=True)

    def _scan(
        self, text: str, line: int, ctx: LintContext, multiline: bool = False
    ) -> None:
        for namespace, pattern in _CITATION_PATTERNS.items():
            valid = self._catalogue.get(namespace, set())
            for match in pattern.finditer(text):
                bad = [n for n in _expand_citation(match) if n not in valid]
                if not bad:
                    continue
                at = line
                if multiline:
                    at += text[: match.start()].count("\n")
                ctx.report(
                    self.id, None,
                    f"citation {match.group(0).strip()!r} refers to "
                    f"{namespace} {', '.join(map(str, bad))}, which the "
                    "DESIGN.md/PAPER.md catalogue does not define "
                    f"(valid: {_format_numbers(valid)})",
                    line=at, col=0,
                )


def _format_numbers(numbers: set[int]) -> str:
    if not numbers:
        return "none"
    return ", ".join(map(str, sorted(numbers)))


# ---------------------------------------------------------------------------
# broad-except
# ---------------------------------------------------------------------------


class BroadExceptRule(Rule):
    """No bare or broad excepts outside annotated isolation boundaries.

    Swallowing ``Exception`` hides parity and purity regressions behind
    fallback behavior.  The one sanctioned shape is a per-document
    isolation boundary (one bad input must not sink a batch), which
    must be visibly annotated with ``# lint: disable=broad-except`` on
    the ``except`` line.
    """

    id = "broad-except"
    description = (
        "no bare 'except:' or 'except Exception:' outside annotated "
        "isolation boundaries (# lint: disable=broad-except)"
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler,
                            ctx: LintContext) -> None:
        """Flag bare/broad exception handlers."""
        broad = self._broad_name(node.type)
        if node.type is None:
            ctx.report(
                self.id, node,
                "bare 'except:' swallows every error including "
                "KeyboardInterrupt; catch the exceptions the block can "
                "actually raise",
            )
        elif broad:
            ctx.report(
                self.id, node,
                f"'except {broad}:' is too broad; catch specific "
                "exceptions, or annotate a deliberate isolation boundary "
                "with '# lint: disable=broad-except'",
            )

    def _broad_name(self, type_node: ast.AST | None) -> str | None:
        if isinstance(type_node, ast.Name) and \
                type_node.id in ("Exception", "BaseException"):
            return type_node.id
        if isinstance(type_node, ast.Tuple):
            for element in type_node.elts:
                name = self._broad_name(element)
                if name:
                    return name
        return None


# ---------------------------------------------------------------------------
# mutable-default
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque",
})


class MutableDefaultRule(Rule):
    """No mutable default argument values.

    A ``def f(x, acc=[])`` default is created once and shared across
    calls — state leaks between documents, which is exactly the class
    of bug the determinism contract forbids.
    """

    id = "mutable-default"
    description = "no mutable default argument values ([] / {} / set() / ...)"

    def visit_FunctionDef(self, fn: ast.FunctionDef, ctx: LintContext) -> None:
        """Check positional and keyword-only defaults."""
        self._check(fn, ctx)

    def visit_AsyncFunctionDef(self, fn, ctx: LintContext) -> None:
        """Async variant of :meth:`visit_FunctionDef`."""
        self._check(fn, ctx)

    def visit_Lambda(self, fn: ast.Lambda, ctx: LintContext) -> None:
        """Check lambda defaults."""
        self._check(fn, ctx)

    def _check(self, fn, ctx: LintContext) -> None:
        args = fn.args
        positional = args.posonlyargs + args.args
        for arg, default in zip(positional[-len(args.defaults):],
                                args.defaults):
            self._check_default(arg, default, ctx)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                self._check_default(arg, default, ctx)

    def _check_default(self, arg: ast.arg, default: ast.AST,
                       ctx: LintContext) -> None:
        if self._is_mutable(default):
            ctx.report(
                self.id, default,
                f"mutable default for parameter {arg.arg!r} is shared "
                "across calls; default to None and create the value "
                "inside the function",
            )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            return name in _MUTABLE_CALLS
        return False


# ---------------------------------------------------------------------------
# public-api
# ---------------------------------------------------------------------------

_ANNOTATION_SCOPE = ("repro/similarity/", "repro/runtime/")


class PublicApiRule(Rule):
    """Public API needs docstrings; similarity/runtime needs annotations.

    Everything importable without a leading underscore is public API:
    module-level functions, classes, and their public methods must
    carry docstrings.  In ``repro.similarity`` and ``repro.runtime`` —
    the typed surface shipped with ``py.typed`` — public callables must
    additionally annotate every parameter and the return type
    (``__init__`` is exempt from the return annotation; ``visit_*``
    framework callbacks are exempt from docstrings).
    """

    id = "public-api"
    description = (
        "public functions/classes/methods need docstrings; "
        "repro.similarity and repro.runtime public APIs need complete "
        "type annotations"
    )
    scope = ("src/repro/",)

    def begin_file(self, ctx: LintContext) -> None:
        """Walk module and class bodies (shallow — nested defs are
        implementation detail, not API)."""
        check_annotations = any(
            fragment in ctx.path.replace("\\", "/")
            for fragment in _ANNOTATION_SCOPE
        )
        for stmt in ctx.tree.body:
            if isinstance(stmt, _FUNCTION_NODES):
                self._check_callable(stmt, ctx, check_annotations)
            elif isinstance(stmt, ast.ClassDef):
                self._check_class(stmt, ctx, check_annotations)

    def _is_public(self, name: str) -> bool:
        return not name.startswith("_")

    def _check_class(self, cls: ast.ClassDef, ctx: LintContext,
                     check_annotations: bool) -> None:
        if not self._is_public(cls.name):
            return
        if not ast.get_docstring(cls):
            ctx.report(
                self.id, cls,
                f"public class {cls.name!r} has no docstring",
            )
        for stmt in cls.body:
            if isinstance(stmt, _FUNCTION_NODES):
                self._check_callable(
                    stmt, ctx, check_annotations, owner=cls.name
                )

    def _check_callable(self, fn, ctx: LintContext, check_annotations: bool,
                        owner: str | None = None) -> None:
        name = fn.name
        dunder = name.startswith("__") and name.endswith("__")
        qualified = f"{owner}.{name}" if owner else name
        if not dunder and not self._is_public(name):
            return
        needs_docstring = (
            not dunder and not name.startswith("visit_")
        )
        if needs_docstring and not ast.get_docstring(fn):
            ctx.report(
                self.id, fn,
                f"public callable {qualified!r} has no docstring",
            )
        if not check_annotations:
            return
        if dunder and name not in ("__init__", "__call__"):
            return
        missing = [
            arg.arg
            for arg in (fn.args.posonlyargs + fn.args.args
                        + fn.args.kwonlyargs)
            if arg.annotation is None and arg.arg not in ("self", "cls")
        ]
        if missing:
            ctx.report(
                self.id, fn,
                f"public callable {qualified!r} is missing type "
                f"annotations for: {', '.join(missing)}",
            )
        if fn.returns is None and name != "__init__":
            ctx.report(
                self.id, fn,
                f"public callable {qualified!r} is missing a return "
                "annotation",
            )


# ---------------------------------------------------------------------------
# memo-key-purity
# ---------------------------------------------------------------------------


class MemoKeyPurityRule(Rule):
    """Sphere-signature builders must key on frozen fingerprints only.

    The sphere memo (:mod:`repro.runtime.memo`) serves results for the
    lifetime of a process; its keys are only safe if every
    config/network contribution comes from the *frozen* digest helpers
    (:func:`repro.runtime.memo.config_fingerprint`,
    ``SemanticNetwork.fingerprint()``) captured at memo construction.
    A signature builder that reads a live ``config.*`` / ``network.*``
    attribute instead would silently serve stale entries after a
    mutation — the classic memo-invalidation bug.  The rule checks
    every ``repro.runtime`` function whose name contains ``signature``
    (the fingerprint helpers themselves are the sanctioned readers and
    are exempt by name).
    """

    id = "memo-key-purity"
    description = (
        "sphere-signature builders must fold frozen fingerprints into "
        "memo keys, not live config/network attribute reads"
    )
    scope = ("repro/runtime/",)

    _FROZEN_SOURCES = frozenset({"config", "network"})

    def visit_FunctionDef(self, fn: ast.FunctionDef, ctx: LintContext) -> None:
        """Check one signature-builder function's attribute reads."""
        self._check(fn, ctx)

    def visit_AsyncFunctionDef(self, fn, ctx: LintContext) -> None:
        """Async variant of :meth:`visit_FunctionDef`."""
        self._check(fn, ctx)

    def _check(self, fn, ctx: LintContext) -> None:
        name = fn.name.lower()
        if "signature" not in name or "fingerprint" in name:
            return
        for node in ctx.local_nodes(fn):
            if not isinstance(node, ast.Attribute) or \
                    not isinstance(node.ctx, ast.Load):
                continue
            source = self._live_source(node)
            if source is not None and node.attr != "fingerprint":
                ctx.report(
                    self.id, node,
                    f"signature builder reads live attribute "
                    f"'{source}.{node.attr}'; memo keys must fold in the "
                    "frozen digests (config_fingerprint(), "
                    "network.fingerprint()) captured at memo construction",
                )

    def _live_source(self, node: ast.Attribute) -> str | None:
        base = node.value
        if isinstance(base, ast.Name) and base.id in self._FROZEN_SOURCES:
            return base.id
        if isinstance(base, ast.Attribute) and \
                isinstance(base.value, ast.Name) and \
                base.value.id == "self" and \
                base.attr.lstrip("_") in self._FROZEN_SOURCES:
            return f"self.{base.attr}"
        return None


# ---------------------------------------------------------------------------
# silent-degrade
# ---------------------------------------------------------------------------


class SilentDegradeRule(Rule):
    """Fallback branches in ``repro.runtime`` must be observable.

    The resilience contract is that the runtime may degrade (serial
    fallback, index rung down, memo off) but never *silently*: every
    ``except`` branch that handles a failure must either re-raise or
    emit a :class:`~repro.runtime.metrics.MetricsRegistry` signal
    (``count`` / ``observe`` / ``event``) on its way to the fallback.
    Handlers catching pure lookup-miss exceptions (``KeyError``,
    ``IndexError``, ``StopIteration``) are control flow, not degrades,
    and stay silent; anything else without a raise or an emit needs an
    explicit ``# lint: disable=silent-degrade`` pragma on the
    ``except`` line, which makes the reviewer look at it.
    """

    id = "silent-degrade"
    description = (
        "except/fallback branches in repro.runtime must re-raise or emit "
        "a MetricsRegistry signal (count/observe/event), or carry an "
        "explicit '# lint: disable=silent-degrade' pragma"
    )
    scope = ("repro/runtime/",)

    #: Lookup-miss exceptions: absence handling, not failure handling.
    _LOOKUP_MISSES = frozenset({"KeyError", "IndexError", "StopIteration"})

    #: MetricsRegistry emission methods that make a fallback observable.
    _EMITTERS = frozenset({"count", "observe", "event"})

    def visit_ExceptHandler(self, node: ast.ExceptHandler,
                            ctx: LintContext) -> None:
        """Flag handlers that reach a fallback with no raise and no emit."""
        caught = self._caught_names(node.type)
        if caught and caught <= self._LOOKUP_MISSES:
            return
        for inner in ast.walk(node):
            if isinstance(inner, ast.Raise):
                return
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr in self._EMITTERS
            ):
                return
        ctx.report(
            self.id, node,
            "this except branch degrades silently; re-raise, emit a "
            "MetricsRegistry count/observe/event, or annotate the "
            "deliberate silence with '# lint: disable=silent-degrade'",
        )

    def _caught_names(self, type_node: ast.AST | None) -> set[str]:
        """Exception class names this handler catches (empty if unknown)."""
        if isinstance(type_node, ast.Name):
            return {type_node.id}
        if isinstance(type_node, ast.Attribute):
            return {type_node.attr}
        if isinstance(type_node, ast.Tuple):
            names: set[str] = set()
            for element in type_node.elts:
                names |= self._caught_names(element)
            return names
        return set()


# ---------------------------------------------------------------------------
# handler-envelope
# ---------------------------------------------------------------------------


class HandlerEnvelopeRule(Rule):
    """Server except branches must answer with a typed error envelope.

    The service contract mirrors the batch pipeline's resilience
    contract at the HTTP boundary: a request never just drops — every
    ``except`` branch in :mod:`repro.server` must either re-raise (the
    connection-level isolation boundary turns it into a 500 envelope)
    or call something that produces/writes an envelope (any call whose
    name mentions ``envelope``).  Handlers catching pure lookup-miss
    exceptions (``KeyError``, ``IndexError``, ``StopIteration``) are
    control flow and stay silent; teardown paths where the peer is
    already gone carry an explicit ``# lint: disable=handler-envelope``
    pragma on the ``except`` line, which makes the reviewer look at
    them.
    """

    id = "handler-envelope"
    description = (
        "except branches in repro.server must re-raise or produce a "
        "typed error envelope (a call naming 'envelope'), or carry an "
        "explicit '# lint: disable=handler-envelope' pragma"
    )
    scope = ("repro/server/",)

    #: Lookup-miss exceptions: absence handling, not failure handling.
    _LOOKUP_MISSES = frozenset({"KeyError", "IndexError", "StopIteration"})

    def visit_ExceptHandler(self, node: ast.ExceptHandler,
                            ctx: LintContext) -> None:
        """Flag handlers that swallow a failure without answering it."""
        caught = self._caught_names(node.type)
        if caught and caught <= self._LOOKUP_MISSES:
            return
        for inner in ast.walk(node):
            if isinstance(inner, ast.Raise):
                return
            if isinstance(inner, ast.Call) and \
                    self._is_envelope_call(inner.func):
                return
        ctx.report(
            self.id, node,
            "this except branch drops the request without a typed error "
            "envelope; re-raise, call an envelope writer, or annotate a "
            "teardown path with '# lint: disable=handler-envelope'",
        )

    def _is_envelope_call(self, func: ast.AST) -> bool:
        if isinstance(func, ast.Name):
            return "envelope" in func.id.lower()
        if isinstance(func, ast.Attribute):
            return "envelope" in func.attr.lower()
        return False

    def _caught_names(self, type_node: ast.AST | None) -> set[str]:
        """Exception class names this handler catches (empty if unknown)."""
        if isinstance(type_node, ast.Name):
            return {type_node.id}
        if isinstance(type_node, ast.Attribute):
            return {type_node.attr}
        if isinstance(type_node, ast.Tuple):
            names: set[str] = set()
            for element in type_node.elts:
                names |= self._caught_names(element)
            return names
        return set()


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

from .flowrules import (  # noqa: E402 — registry import, after Rule defs
    DeterminismFlowRule,
    ExceptionFlowRule,
    ResourceLifecycleRule,
    WorkerBoundaryRule,
)

#: Stable rule registry: ID -> class.  IDs are part of the suppression
#: and CI contract — never renumber or rename, only add.
RULE_CLASSES: dict[str, type[Rule]] = {
    rule_class.id: rule_class
    for rule_class in (
        IndexParityRule,
        CachePurityRule,
        DeterminismRule,
        PicklableSubmitRule,
        DefinitionXrefRule,
        BroadExceptRule,
        MutableDefaultRule,
        PublicApiRule,
        MemoKeyPurityRule,
        SilentDegradeRule,
        HandlerEnvelopeRule,
        DeterminismFlowRule,
        WorkerBoundaryRule,
        ExceptionFlowRule,
        ResourceLifecycleRule,
    )
}


def all_rules(only: list[str] | None = None) -> list[Rule]:
    """Fresh instances of every rule (or the ``only`` subset, by ID).

    Raises ``ValueError`` for unknown IDs so a typo in ``--rules``
    fails loudly instead of silently linting nothing.
    """
    if only is None:
        return [rule_class() for rule_class in RULE_CLASSES.values()]
    unknown = sorted(set(only) - set(RULE_CLASSES))
    if unknown:
        raise ValueError(
            f"unknown rule IDs: {', '.join(unknown)} "
            f"(known: {', '.join(sorted(RULE_CLASSES))})"
        )
    return [RULE_CLASSES[rule_id]() for rule_id in only]
