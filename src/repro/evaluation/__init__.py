"""Evaluation: metrics, simulated annotators, experiment harness."""

from .annotator import MAX_RATING, SimulatedAnnotator, panel_ratings
from .experiments import (
    figure8,
    figure9,
    full_report,
    render_markdown,
    table1,
    table2,
    table3,
)
from .harness import (
    NODES_PER_DOC,
    TABLE2_TESTS,
    QualityResult,
    ambiguity_correlation,
    evaluate_quality,
    make_system_factory,
    select_eval_nodes,
)
from .metrics import PRF, average_prf, pearson_correlation, precision_recall
from .significance import (
    SignificanceResult,
    compare_systems,
    paired_bootstrap,
    paired_outcomes,
)

__all__ = [
    "MAX_RATING",
    "NODES_PER_DOC",
    "PRF",
    "QualityResult",
    "SimulatedAnnotator",
    "TABLE2_TESTS",
    "ambiguity_correlation",
    "average_prf",
    "evaluate_quality",
    "figure8",
    "figure9",
    "full_report",
    "render_markdown",
    "table1",
    "table2",
    "table3",
    "make_system_factory",
    "panel_ratings",
    "pearson_correlation",
    "precision_recall",
    "SignificanceResult",
    "compare_systems",
    "paired_bootstrap",
    "paired_outcomes",
    "select_eval_nodes",
]
