"""Simulated human annotators for the ambiguity-rating study (Table 2).

The paper had five testers rate the ambiguity of ~1000 XML nodes on an
integer scale 0-4.  The testers are not available, so this module models
the *mechanism* the paper credits for its Table 2 findings: humans judge
ambiguity by **contextual obviousness**, not by dictionary polysemy —
"the meaning of child node label *state* under node label *address* was
obvious for our human testers (ambiguity 0/4), yet *state* has 8
meanings in WordNet".

A simulated annotator therefore rates a node by counting its
*contextually plausible* senses.  A sense's plausibility combines two
human factors: **familiarity** (its relative usage frequency — everyday
senses feel obvious) and **contextual fit** (its relatedness to the
surrounding nodes' intended concepts).  One clearly dominant sense →
rating 0; several comparably plausible senses → rating up to 4.
Per-annotator noise models inter-rater disagreement.

This reproduces the paper's divergence pattern by construction rather
than by fitting: in Group 1 documents many senses genuinely fit the
context (theater vocabulary is polysemous *within* its own domain), so
human ratings track polysemy and correlate with ``Amb_Deg``; in Group 4
the context pins one everyday sense, humans rate ~0 regardless of
lexicon polysemy, and the correlation collapses or turns negative.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..semnet.network import SemanticNetwork
from ..similarity.edge import WuPalmerSimilarity
from ..similarity.gloss import ExtendedLeskSimilarity
from ..xmltree.dom import XMLNode, XMLTree

#: Ratings are integers in [0, MAX_RATING], as in the paper.
MAX_RATING = 4


@dataclass
class SimulatedAnnotator:
    """One simulated human rater.

    Parameters
    ----------
    network:
        The reference semantic network.
    seed:
        Rater identity; drives the per-node disagreement noise.
    plausibility_margin:
        A sense counts as plausible when its familiarity-times-fit score
        is at least this fraction of the best sense's score.
    noise_rate:
        Probability that the rater shifts a rating by one step.
    """

    network: SemanticNetwork
    seed: int = 0
    plausibility_margin: float = 0.55
    familiarity_weight: float = 0.6
    noise_rate: float = 0.25

    def __post_init__(self) -> None:
        self._edge = WuPalmerSimilarity(self.network)
        self._gloss = ExtendedLeskSimilarity(self.network)

    # -- context support ----------------------------------------------------

    def _context_concepts(
        self, node: XMLNode, gold: dict[str, str]
    ) -> list[str]:
        """Gold concepts of the node's immediate neighborhood."""
        neighbors: list[XMLNode] = []
        if node.parent is not None:
            neighbors.append(node.parent)
            neighbors.extend(s for s in node.parent.children if s is not node)
        neighbors.extend(node.children)
        out = []
        for neighbor in neighbors:
            concept_id = gold.get(neighbor.label)
            if concept_id is not None:
                out.append(concept_id)
        return out

    def _support(self, sense_id: str, context: list[str]) -> float:
        if not context:
            return 0.0
        scores = [
            0.5 * self._edge(sense_id, cid) + 0.5 * self._gloss(sense_id, cid)
            for cid in context
        ]
        return sum(scores) / len(scores)

    def plausible_senses(
        self, node: XMLNode, tree: XMLTree, gold: dict[str, str]
    ) -> int:
        """How many senses of the node's label feel plausible to a human.

        Plausibility of a sense = familiarity x contextual fit, where
        familiarity is the sense's frequency relative to the word's most
        frequent sense, and fit is its context support relative to the
        best-supported sense.  A word whose everyday sense also fits the
        context has exactly one plausible sense (rating 0), no matter
        how long its dictionary entry is — the paper's *state*-under-
        *address* observation.
        """
        senses = self.network.senses(node.label)
        if len(senses) <= 1:
            return len(senses)
        max_freq = max(s.frequency for s in senses) + 1.0
        familiarity = [(s.frequency + 1.0) / max_freq for s in senses]
        context = self._context_concepts(node, gold)
        if context:
            supports = [self._support(s.id, context) for s in senses]
            best_support = max(supports)
            if best_support > 0:
                fits = [s / best_support for s in supports]
            else:
                fits = [1.0] * len(senses)
        else:
            fits = [1.0] * len(senses)
        # A sense stays in play when it is familiar OR fits the context:
        # the additive blend keeps both the everyday reading and the
        # context-supported reading plausible when they disagree — the
        # cognitive conflict that makes a human hesitate.
        w = self.familiarity_weight
        plausibility = [
            w * fam + (1.0 - w) * fit for fam, fit in zip(familiarity, fits)
        ]
        threshold = self.plausibility_margin * max(plausibility)
        return sum(1 for p in plausibility if p >= threshold)

    # -- rating ------------------------------------------------------------------

    def rate(self, node: XMLNode, tree: XMLTree, gold: dict[str, str]) -> int:
        """An integer ambiguity rating in [0, 4] for one node."""
        plausible = self.plausible_senses(node, tree, gold)
        rating = min(MAX_RATING, max(0, plausible - 1))
        rng = random.Random((self.seed * 1_000_003) ^ (node.index * 7919))
        if rng.random() < self.noise_rate:
            rating = min(MAX_RATING, max(0, rating + rng.choice((-1, 1))))
        return rating


def panel_ratings(
    network: SemanticNetwork,
    tree: XMLTree,
    nodes: list[XMLNode],
    gold: dict[str, str],
    n_annotators: int = 5,
    **annotator_options,
) -> list[float]:
    """Average ratings of an ``n_annotators`` panel for ``nodes``.

    Five raters, as in the paper (two master + three doctoral students).
    Extra keyword options are forwarded to :class:`SimulatedAnnotator`.
    """
    annotators = [
        SimulatedAnnotator(network, seed=i, **annotator_options)
        for i in range(n_annotators)
    ]
    out = []
    for node in nodes:
        ratings = [a.rate(node, tree, gold) for a in annotators]
        out.append(sum(ratings) / len(ratings))
    return out
