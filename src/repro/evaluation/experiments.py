"""Programmatic regeneration of every paper table and figure.

The benchmark suite (``pytest benchmarks/``) runs these experiments with
timing and shape assertions; this module exposes the same computations
as plain functions returning structured rows, so library users (and the
``python -m repro report`` command) can regenerate the full reproduction
report without pytest.

Each function takes the shared ``(corpus, network, tree_cache)`` trio;
:func:`full_report` runs everything and renders one markdown document.
"""

from __future__ import annotations

from typing import Iterable

from ..core.config import XSDFConfig
from ..core.framework import XSDF
from ..datasets.corpus import Corpus
from ..datasets.registry import DATASETS, generate_test_corpus
from ..datasets.stats import dataset_stats, group_stats, group_struct_degrees
from ..semnet.network import SemanticNetwork
from .harness import TABLE2_TESTS, ambiguity_correlation, evaluate_quality, make_system_factory

_QUADRANT = {
    1: "ambiguity+ / structure+",
    2: "ambiguity+ / structure-",
    3: "ambiguity- / structure+",
    4: "ambiguity- / structure-",
}

Rows = list[list[str]]
Table = tuple[str, list[str], Rows]


def table1(corpus: Corpus, network: SemanticNetwork) -> Table:
    """Group characterization (paper Table 1)."""
    amb = {g: s.amb_degree for g, s in group_stats(corpus, network).items()}
    struct = group_struct_degrees(corpus, network)
    rows = [
        [f"Group {g}", _QUADRANT[g], f"{amb[g]:.4f}", f"{struct[g]:.4f}"]
        for g in sorted(amb)
    ]
    return ("Table 1: group characterization",
            ["group", "quadrant", "Amb_Deg", "Struct_Deg"], rows)


def table2(corpus: Corpus, network: SemanticNetwork,
           tree_cache: dict | None = None) -> Table:
    """Human-vs-system ambiguity correlation (paper Table 2)."""
    tree_cache = tree_cache if tree_cache is not None else {}
    rows = []
    for spec in DATASETS:
        document = corpus.by_dataset(spec.name)[0]
        cells = [
            ambiguity_correlation(document, network, weights,
                                  tree_cache=tree_cache)
            for weights in TABLE2_TESTS.values()
        ]
        rows.append([f"{spec.name} (G{spec.group})"]
                    + [f"{value:+.3f}" for value in cells])
    headers = ["dataset"] + [t.split(" (")[0] for t in TABLE2_TESTS]
    return ("Table 2: ambiguity correlation", headers, rows)


def table3(corpus: Corpus, network: SemanticNetwork) -> Table:
    """Dataset characteristics (paper Table 3)."""
    stats = dataset_stats(corpus, network)
    rows = []
    for spec in DATASETS:
        s = stats[spec.name]
        rows.append([
            f"G{spec.group}", spec.name, str(spec.n_docs), str(s.n_nodes),
            f"{s.avg_polysemy:.2f}/{s.max_polysemy}",
            f"{s.avg_depth:.2f}/{s.max_depth}",
            f"{s.avg_fan_out:.2f}/{s.max_fan_out}",
            f"{s.avg_density:.2f}/{s.max_density}",
        ])
    return ("Table 3: dataset characteristics",
            ["grp", "dataset", "docs", "nodes", "polysemy", "depth",
             "fan-out", "density"], rows)


def figure8(corpus: Corpus, network: SemanticNetwork,
            tree_cache: dict | None = None,
            radii: Iterable[int] = (1, 2, 3)) -> Table:
    """Configuration sweep (paper Figure 8)."""
    tree_cache = tree_cache if tree_cache is not None else {}
    rows = []
    for process in ("concept", "context", "combined"):
        for radius in radii:
            system = make_system_factory(
                f"xsdf-{process}-d{radius}", network
            )()
            cells = [
                evaluate_quality(system, corpus.by_group(g), network,
                                 tree_cache).prf.f_value
                for g in (1, 2, 3, 4)
            ]
            rows.append([process, f"d={radius}"]
                        + [f"{value:.3f}" for value in cells])
    return ("Figure 8: f-value by configuration",
            ["process", "radius", "G1", "G2", "G3", "G4"], rows)


def figure9(corpus: Corpus, network: SemanticNetwork,
            tree_cache: dict | None = None) -> Table:
    """Comparative study (paper Figure 9)."""
    tree_cache = tree_cache if tree_cache is not None else {}
    optimal = {1: "xsdf-concept-d1", 2: "xsdf-concept-d2",
               3: "xsdf-concept-d2", 4: "xsdf-concept-d3"}
    rows = []
    for group in (1, 2, 3, 4):
        docs = corpus.by_group(group)
        for name, factory in (("XSDF", optimal[group]), ("RPD", "rpd"),
                              ("VSD", "vsd")):
            prf = evaluate_quality(
                make_system_factory(factory, network)(), docs, network,
                tree_cache,
            ).prf
            rows.append([f"Group {group}", name, f"{prf.precision:.3f}",
                         f"{prf.recall:.3f}", f"{prf.f_value:.3f}"])
    return ("Figure 9: XSDF vs RPD vs VSD",
            ["group", "system", "P", "R", "F"], rows)


def render_markdown(table: Table) -> str:
    """One table as GitHub-flavored markdown."""
    title, headers, rows = table
    lines = [f"### {title}", ""]
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    lines.append("")
    return "\n".join(lines)


def full_report(
    corpus: Corpus | None = None,
    network: SemanticNetwork | None = None,
) -> str:
    """Regenerate every table/figure; returns one markdown document."""
    from ..semnet import default_lexicon

    network = network or default_lexicon()
    corpus = corpus or generate_test_corpus()
    tree_cache: dict = {}
    # Warm the cache via a cheap pass so later experiments share trees.
    XSDF(network, XSDFConfig(sphere_radius=1))
    parts = ["# XSDF reproduction report", ""]
    for table in (
        table1(corpus, network),
        table2(corpus, network, tree_cache),
        table3(corpus, network),
        figure8(corpus, network, tree_cache),
        figure9(corpus, network, tree_cache),
    ):
        parts.append(render_markdown(table))
    return "\n".join(parts)
