"""The experiment harness (paper Section 4).

Glues corpora, gold annotations, systems (XSDF + baselines), and metrics
into the runs behind every table and figure:

* :func:`select_eval_nodes` — the "12-to-13 randomly pre-selected nodes
  per document" protocol;
* :func:`evaluate_quality` — precision/recall/f-value of one system over
  one document set (Figures 8 and 9);
* :func:`ambiguity_correlation` — Pearson correlation of panel ratings
  vs. ``Amb_Deg`` under a weight configuration (Table 2).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, Protocol

from ..core.ambiguity import ambiguity_degree
from ..core.config import AmbiguityWeights
from ..core.results import DisambiguationResult
from ..datasets.corpus import GeneratedDocument
from ..datasets.stats import document_tree
from ..semnet.network import SemanticNetwork
from ..xmltree.dom import XMLNode, XMLTree
from .annotator import panel_ratings
from .metrics import PRF, pearson_correlation, precision_recall

#: Nodes rated/annotated per document in the paper's protocol.
NODES_PER_DOC = (12, 13)


class Disambiguator(Protocol):
    """Anything that can disambiguate a target list (XSDF or baseline)."""

    def disambiguate_tree(
        self, tree: XMLTree, targets: list[XMLNode] | None = None
    ) -> DisambiguationResult:
        """Disambiguate ``targets`` (default: auto-selected) in ``tree``."""
        ...


def _doc_rng(document: GeneratedDocument, salt: str) -> random.Random:
    key = f"{salt}:{document.dataset}:{document.doc_id}".encode()
    digest = hashlib.sha256(key).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def select_eval_nodes(
    tree: XMLTree, document: GeneratedDocument, salt: str = "eval"
) -> list[XMLNode]:
    """Randomly pre-select 12-13 gold-annotated nodes of one document.

    Selection is deterministic per document (seeded from its identity)
    and only considers nodes whose label carries a gold sense and has at
    least one sense in the network — the same constraint the paper's
    manual annotation imposes.
    """
    eligible = [node for node in tree if node.label in document.gold]
    rng = _doc_rng(document, salt)
    k = min(len(eligible), rng.choice(NODES_PER_DOC))
    return sorted(rng.sample(eligible, k), key=lambda n: n.index)


@dataclass(frozen=True)
class QualityResult:
    """Outcome of one system over one document set."""

    prf: PRF
    n_gold: int
    n_predicted: int
    n_correct: int


def evaluate_quality(
    system: Disambiguator,
    documents: list[GeneratedDocument],
    network: SemanticNetwork,
    tree_cache: dict[str, XMLTree] | None = None,
) -> QualityResult:
    """Precision/recall/f-value of ``system`` over ``documents``.

    A prediction is correct when the assigned primary concept equals the
    document's gold concept for that label.  ``tree_cache`` (keyed by
    document name) avoids re-parsing when several systems share a run.
    """
    n_gold = n_predicted = n_correct = 0
    for document in documents:
        tree = _get_tree(document, network, tree_cache)
        targets = select_eval_nodes(tree, document)
        n_gold += len(targets)
        result = system.disambiguate_tree(tree, targets=targets)
        for assignment in result.assignments:
            n_predicted += 1
            expected = document.gold[assignment.label]
            if assignment.concept_id == expected:
                n_correct += 1
    return QualityResult(
        prf=precision_recall(n_correct, n_predicted, n_gold),
        n_gold=n_gold,
        n_predicted=n_predicted,
        n_correct=n_correct,
    )


def _get_tree(
    document: GeneratedDocument,
    network: SemanticNetwork,
    cache: dict[str, XMLTree] | None,
) -> XMLTree:
    if cache is None:
        return document_tree(document, network)
    tree = cache.get(document.name)
    if tree is None:
        tree = document_tree(document, network)
        cache[document.name] = tree
    return tree


def ambiguity_correlation(
    document: GeneratedDocument,
    network: SemanticNetwork,
    weights: AmbiguityWeights,
    n_annotators: int = 5,
    tree_cache: dict[str, XMLTree] | None = None,
) -> float:
    """Pearson correlation of panel ratings vs ``Amb_Deg`` (Table 2).

    Rates the document's pre-selected nodes with the simulated annotator
    panel and correlates with the system's ambiguity degrees under the
    given weight configuration.
    """
    tree = _get_tree(document, network, tree_cache)
    nodes = select_eval_nodes(tree, document, salt="rating")
    if len(nodes) < 2:
        return 0.0
    human = panel_ratings(network, tree, nodes, document.gold, n_annotators)
    system = [
        ambiguity_degree(node, tree, network, weights) for node in nodes
    ]
    return pearson_correlation(human, system)


#: The four weight configurations of the paper's Table 2.
TABLE2_TESTS: dict[str, AmbiguityWeights] = {
    "Test #1 (all factors)": AmbiguityWeights(1.0, 1.0, 1.0),
    "Test #2 (polysemy)": AmbiguityWeights(1.0, 0.0, 0.0),
    "Test #3 (depth)": AmbiguityWeights(0.2, 1.0, 0.0),
    "Test #4 (density)": AmbiguityWeights(0.2, 0.0, 1.0),
}


def make_system_factory(
    name: str, network: SemanticNetwork
) -> Callable[[], Disambiguator]:
    """Named system constructors for comparison benchmarks.

    Recognized names: ``xsdf-concept``, ``xsdf-context``,
    ``xsdf-combined`` (optionally suffixed ``-d<radius>``), ``rpd``,
    ``vsd``, ``parent``, ``subtree``, ``first-sense``, ``random``,
    ``bow``.
    """
    from ..baselines import (
        BagOfWordsDisambiguator,
        FirstSenseBaseline,
        ParentContextDisambiguator,
        RandomSenseBaseline,
        RootPathDisambiguator,
        SubtreeContextDisambiguator,
        VersatileStructuralDisambiguator,
    )
    from ..core.config import DisambiguationApproach, XSDFConfig
    from ..core.framework import XSDF

    if name.startswith("xsdf"):
        parts = name.split("-")
        approach = {
            "concept": DisambiguationApproach.CONCEPT_BASED,
            "context": DisambiguationApproach.CONTEXT_BASED,
            "combined": DisambiguationApproach.COMBINED,
        }[parts[1]]
        radius = int(parts[2][1:]) if len(parts) > 2 else 2
        config = XSDFConfig(sphere_radius=radius, approach=approach)
        return lambda: XSDF(network, config)
    factories: dict[str, Callable[[], Disambiguator]] = {
        "rpd": lambda: RootPathDisambiguator(network),
        "vsd": lambda: VersatileStructuralDisambiguator(network),
        "parent": lambda: ParentContextDisambiguator(network),
        "subtree": lambda: SubtreeContextDisambiguator(network),
        "first-sense": lambda: FirstSenseBaseline(network),
        "random": lambda: RandomSenseBaseline(network),
        "bow": lambda: BagOfWordsDisambiguator(network),
    }
    if name not in factories:
        raise KeyError(f"unknown system {name!r}")
    return factories[name]
