"""Evaluation metrics: precision / recall / f-value, Pearson correlation.

The paper scores disambiguation quality with the standard WSD metrics
(precision over attempted nodes, recall over all gold-annotated nodes)
and correlates human-vs-system ambiguity ratings with Pearson's
coefficient (Section 4.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class PRF:
    """Precision, recall, and their harmonic mean."""

    precision: float
    recall: float

    @property
    def f_value(self) -> float:
        """Harmonic mean of precision and recall (0.0 when both 0)."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    def __str__(self) -> str:  # pragma: no cover - presentation only
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F={self.f_value:.3f}"
        )


def precision_recall(n_correct: int, n_predicted: int, n_gold: int) -> PRF:
    """PRF from raw counts.

    ``n_predicted`` counts nodes the system ventured an answer for,
    ``n_gold`` counts all evaluable (gold-annotated) target nodes.
    """
    if n_correct > n_predicted or n_predicted > 0 and n_correct < 0:
        raise ValueError("inconsistent counts")
    precision = n_correct / n_predicted if n_predicted else 0.0
    recall = n_correct / n_gold if n_gold else 0.0
    return PRF(precision=precision, recall=recall)


def average_prf(parts: list[PRF]) -> PRF:
    """Macro-average a list of PRF scores."""
    if not parts:
        return PRF(0.0, 0.0)
    return PRF(
        precision=sum(p.precision for p in parts) / len(parts),
        recall=sum(p.recall for p in parts) / len(parts),
    )


def pearson_correlation(xs: list[float], ys: list[float]) -> float:
    """Pearson's product-moment correlation coefficient in [-1, 1].

    Returns 0.0 when either variable has no variance (the conventional
    degenerate-case value; the paper's Table 2 reads such cells as "not
    correlated").
    """
    if len(xs) != len(ys):
        raise ValueError("series must have equal length")
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    denominator = math.sqrt(var_x) * math.sqrt(var_y)
    # Root-then-multiply: the raw variance product can underflow to zero
    # for near-subnormal series even when both variances are non-zero.
    if denominator == 0.0:
        return 0.0
    return cov / denominator
