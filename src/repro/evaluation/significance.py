"""Paired bootstrap significance testing for system comparisons.

Figure 9's bar heights mean little without knowing whether the gap
between two systems exceeds sampling noise.  This module implements the
standard paired bootstrap test over per-node correctness outcomes: both
systems are run on the *same* evaluation nodes, the per-node (ours,
theirs) correctness pairs are resampled with replacement, and the
reported p-value is the fraction of resamples in which the baseline is
at least as accurate as the challenger.

Deterministic: the resampling RNG is seeded explicitly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..datasets.corpus import GeneratedDocument
from ..datasets.stats import document_tree
from ..semnet.network import SemanticNetwork
from .harness import Disambiguator, select_eval_nodes


@dataclass(frozen=True)
class SignificanceResult:
    """Outcome of one paired bootstrap comparison."""

    accuracy_a: float
    accuracy_b: float
    delta: float          # accuracy_a - accuracy_b
    p_value: float        # P(resampled delta <= 0)
    n_pairs: int
    n_resamples: int

    def significant(self, alpha: float = 0.05) -> bool:
        """True when system A beats B at the given level."""
        return self.delta > 0 and self.p_value < alpha


def paired_outcomes(
    system_a: Disambiguator,
    system_b: Disambiguator,
    documents: list[GeneratedDocument],
    network: SemanticNetwork,
    tree_cache: dict | None = None,
) -> list[tuple[bool, bool]]:
    """(a_correct, b_correct) per shared evaluation node."""
    tree_cache = tree_cache if tree_cache is not None else {}
    pairs: list[tuple[bool, bool]] = []
    for document in documents:
        tree = tree_cache.get(document.name)
        if tree is None:
            tree = document_tree(document, network)
            tree_cache[document.name] = tree
        targets = select_eval_nodes(tree, document)
        result_a = system_a.disambiguate_tree(tree, targets=targets)
        result_b = system_b.disambiguate_tree(tree, targets=targets)
        by_index_b = {x.node_index: x for x in result_b.assignments}
        for assignment_a in result_a.assignments:
            assignment_b = by_index_b.get(assignment_a.node_index)
            if assignment_b is None:
                continue
            expected = document.gold[assignment_a.label]
            pairs.append(
                (
                    assignment_a.concept_id == expected,
                    assignment_b.concept_id == expected,
                )
            )
    return pairs


def paired_bootstrap(
    pairs: list[tuple[bool, bool]],
    n_resamples: int = 2000,
    seed: int = 17,
) -> SignificanceResult:
    """Bootstrap the accuracy difference over paired outcomes."""
    if not pairs:
        raise ValueError("no paired outcomes to test")
    n = len(pairs)
    accuracy_a = sum(a for a, _ in pairs) / n
    accuracy_b = sum(b for _, b in pairs) / n
    rng = random.Random(seed)
    at_or_below_zero = 0
    for _ in range(n_resamples):
        delta = 0
        for _ in range(n):
            a, b = pairs[rng.randrange(n)]
            delta += int(a) - int(b)
        if delta <= 0:
            at_or_below_zero += 1
    return SignificanceResult(
        accuracy_a=accuracy_a,
        accuracy_b=accuracy_b,
        delta=accuracy_a - accuracy_b,
        p_value=at_or_below_zero / n_resamples,
        n_pairs=n,
        n_resamples=n_resamples,
    )


def compare_systems(
    system_a: Disambiguator,
    system_b: Disambiguator,
    documents: list[GeneratedDocument],
    network: SemanticNetwork,
    n_resamples: int = 2000,
    seed: int = 17,
    tree_cache: dict | None = None,
) -> SignificanceResult:
    """End-to-end: run both systems and bootstrap the difference."""
    pairs = paired_outcomes(
        system_a, system_b, documents, network, tree_cache
    )
    return paired_bootstrap(pairs, n_resamples=n_resamples, seed=seed)
