"""Linguistic pre-processing: tokenization, stop words, Porter stemming.

Implements paper Section 3.2, including compound tag-name handling.
"""

from .pipeline import LexiconLookup, LinguisticPipeline, default_pipeline
from .stemmer import PorterStemmer, stem
from .stopwords import STOP_WORDS, is_stop_word, remove_stop_words
from .tokenizer import split_camel_case, split_tag_name, split_text_value

__all__ = [
    "LexiconLookup",
    "LinguisticPipeline",
    "PorterStemmer",
    "STOP_WORDS",
    "default_pipeline",
    "is_stop_word",
    "remove_stop_words",
    "split_camel_case",
    "split_tag_name",
    "split_text_value",
    "stem",
]
