"""The linguistic pre-processing pipeline (paper Section 3.2).

Combines tokenization, stop-word removal, and stemming into the label /
value processors consumed by :func:`repro.xmltree.dom.build_tree`:

* **Individual tag names** — kept as-is; stemmed only when the word is
  not found in the reference semantic network.
* **Compound tag names** (``Directed_By``, ``FirstName``) — if the two
  terms match a *single* concept in the semantic network (e.g. the
  WordNet synset ``first name``) they become one token; otherwise each
  term is processed separately (stop words dropped, unknown words
  stemmed) but the terms stay together inside a single node label so one
  sense is eventually assigned to the whole label.
* **Text values** — tokenized, stop words removed, unknown words stemmed,
  each surviving token becoming its own leaf node.

The pipeline takes a membership predicate rather than a full network, so
it has no dependency on :mod:`repro.semnet` and is independently testable.
"""

from __future__ import annotations

from typing import Callable

from .stemmer import PorterStemmer
from .stopwords import remove_stop_words
from .tokenizer import split_tag_name, split_text_value

#: Predicate answering "does the semantic network know this word/expression?"
LexiconLookup = Callable[[str], bool]


def _always_unknown(_word: str) -> bool:
    return False


class LinguisticPipeline:
    """Configurable pre-processing pipeline.

    Parameters
    ----------
    known:
        Membership predicate over the reference semantic network (e.g.
        ``network.has_word``).  Words the network knows are *not* stemmed;
        unknown words are stemmed and retried.
    stem_unknown:
        Disable to skip stemming entirely (useful in ablations).
    """

    def __init__(
        self,
        known: LexiconLookup | None = None,
        stem_unknown: bool = True,
    ):
        self._known = known or _always_unknown
        self._stem_unknown = stem_unknown
        self._stemmer = PorterStemmer()

    # -- shared helpers ---------------------------------------------------

    def normalize_word(self, word: str) -> str:
        """Return the lexicon form of ``word``: itself if known, else its stem."""
        word = word.lower()
        if self._known(word):
            return word
        if not self._stem_unknown:
            return word
        stemmed = self._stemmer.stem(word)
        # Prefer the stem only when it improves lexicon coverage.
        if self._known(stemmed):
            return stemmed
        return word

    # -- label processing ---------------------------------------------------

    def process_label(self, raw: str) -> list[str]:
        """Process a tag/attribute name into its node-label tokens.

        Returns a single-element list for simple labels and for compounds
        that match one concept; a multi-element list for true compounds
        (the DOM keeps them inside one node label, see the paper's
        special-case handling in Sections 3.3 and 3.5).
        """
        parts = split_tag_name(raw)
        if not parts:
            return []
        if len(parts) == 1:
            return [self.normalize_word(parts[0])]
        # Compound: does the full expression match a single concept?
        joined = " ".join(parts)
        if self._known(joined):
            return [joined]
        kept = remove_stop_words(parts) or parts
        return [self.normalize_word(word) for word in kept]

    def process_value(self, raw: str) -> list[str]:
        """Process element/attribute text content into value tokens."""
        tokens = remove_stop_words(split_text_value(raw))
        return [self.normalize_word(token) for token in tokens]

    # -- adapters for build_tree ------------------------------------------------

    def label_processor(self) -> Callable[[str], list[str]]:
        """The label-tokenizing callable ``build_tree`` expects."""
        return self.process_label

    def value_processor(self) -> Callable[[str], list[str]]:
        """The value-tokenizing callable ``build_tree`` expects."""
        return self.process_value


def default_pipeline(network=None) -> LinguisticPipeline:
    """Build a pipeline bound to ``network`` (anything with ``has_word``)."""
    known = network.has_word if network is not None else None
    return LinguisticPipeline(known=known)
