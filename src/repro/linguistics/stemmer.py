"""A from-scratch implementation of the Porter stemming algorithm.

Follows M. Porter, "An algorithm for suffix stripping", Program 14(3),
1980 — the classic five-step rule cascade.  The stemmer is used by the
linguistic pre-processing pipeline (paper Section 3.2) to reduce XML tag
names and text value tokens to stems before semantic network lookup.

The implementation is deliberately close to the published rule tables so
each step can be unit-tested against the well-known reference pairs
(``caresses -> caress``, ``ponies -> poni``, ``relational -> relate`` ...).
"""

from __future__ import annotations

_VOWELS = set("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    """Porter's consonant definition: ``y`` is a consonant only after a vowel."""
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """The Porter measure m: number of VC sequences in the stem."""
    m = 0
    i = 0
    n = len(stem)
    # Skip the initial consonant run.
    while i < n and _is_consonant(stem, i):
        i += 1
    while i < n:
        # Vowel run.
        while i < n and not _is_consonant(stem, i):
            i += 1
        if i >= n:
            break
        # Consonant run -> one VC pair.
        while i < n and _is_consonant(stem, i):
            i += 1
        m += 1
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """True for a consonant-vowel-consonant ending, last not w/x/y."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


def _replace_suffix(word: str, suffix: str, replacement: str) -> str:
    return word[: len(word) - len(suffix)] + replacement


class PorterStemmer:
    """Stateless Porter stemmer; call :meth:`stem` on lowercase words."""

    def stem(self, word: str) -> str:
        """Return the Porter stem of ``word`` (expects lowercase ASCII)."""
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- step 1: plurals and -ed / -ing ---------------------------------

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return _replace_suffix(word, "sses", "ss")
        if word.endswith("ies"):
            return _replace_suffix(word, "ies", "i")
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            if _measure(stem) > 0:
                return word[:-1]
            return word
        flagged = None
        if word.endswith("ed") and _contains_vowel(word[:-2]):
            flagged = word[:-2]
        elif word.endswith("ing") and _contains_vowel(word[:-3]):
            flagged = word[:-3]
        if flagged is None:
            return word
        word = flagged
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and word[-1] not in "lsz":
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and _contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    # -- step 2: double suffixes ------------------------------------------

    _STEP2_RULES = [
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ]

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_RULES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if _measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    # -- step 3 --------------------------------------------------------------

    _STEP3_RULES = [
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ]

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_RULES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if _measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    # -- step 4: single suffixes on long stems --------------------------------

    _STEP4_SUFFIXES = [
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    ]

    def _step4(self, word: str) -> str:
        if word.endswith("ion"):
            stem = word[:-3]
            if stem and stem[-1] in "st" and _measure(stem) > 1:
                return stem
            # fall through to plain suffix list (no other ion-rule applies)
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if _measure(stem) > 1:
                    return stem
                return word
        return word

    # -- step 5: tidy-up ---------------------------------------------------------

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = _measure(stem)
            if m > 1 or (m == 1 and not _ends_cvc(stem)):
                return stem
        return word

    def _step5b(self, word: str) -> str:
        if _measure(word) > 1 and word.endswith("ll"):
            return word[:-1]
        return word


_DEFAULT = PorterStemmer()


def stem(word: str) -> str:
    """Module-level convenience: stem a lowercase word."""
    return _DEFAULT.stem(word)
