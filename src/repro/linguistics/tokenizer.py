"""Tokenization of XML tag names and text values (paper Section 3.2).

The paper distinguishes three inputs:

1. tag names made of an individual word (``director``);
2. *compound* tag names made of two terms joined by a delimiter
   (``directed_by``) or by case alternation (``FirstName``);
3. element/attribute text values: ordinary word sequences.

:func:`split_tag_name` handles 1-2, :func:`split_text_value` handles 3.
Both return lowercase word tokens; stop-word removal and stemming are
applied later by the pipeline so the raw split stays reusable.
"""

from __future__ import annotations

_DELIMITERS = set("_-.:")


def split_camel_case(word: str) -> list[str]:
    """Split ``FirstName``/``directedBy``/``IDNumber`` at case boundaries.

    An uppercase run followed by a lowercase letter starts a new word at
    the run's last character (``XMLFile -> XML, File``).
    """
    if not word:
        return []
    pieces: list[str] = []
    current = word[0]
    for prev, ch in zip(word, word[1:]):
        boundary = (ch.isupper() and prev.islower()) or (
            ch.islower() and prev.isupper() and len(current) > 1
        )
        if boundary:
            if ch.islower() and prev.isupper() and len(current) > 1:
                # ``XMLFile``: the final upper-case char belongs to the new word.
                pieces.append(current[:-1])
                current = current[-1] + ch
            else:
                pieces.append(current)
                current = ch
        else:
            current += ch
    pieces.append(current)
    return [p for p in pieces if p]


def split_tag_name(name: str) -> list[str]:
    """Decompose an XML tag/attribute name into lowercase word tokens."""
    # First split on explicit delimiters, then on camelCase boundaries.
    chunks: list[str] = []
    current = ""
    for ch in name:
        if ch in _DELIMITERS:
            if current:
                chunks.append(current)
            current = ""
        else:
            current += ch
    if current:
        chunks.append(current)
    tokens: list[str] = []
    for chunk in chunks:
        tokens.extend(split_camel_case(chunk))
    return [token.lower() for token in tokens if token]


def split_text_value(text: str) -> list[str]:
    """Decompose element/attribute text into lowercase word tokens.

    Splits on any non-alphanumeric character except intra-word
    apostrophes and hyphens are treated as separators too (``wheelchair-
    bound`` becomes two tokens, matching the bag-of-tokens treatment of
    values in the paper's tree model).
    """
    tokens: list[str] = []
    current = ""
    for ch in text:
        if ch.isalnum():
            current += ch
        else:
            if current:
                tokens.append(current)
            current = ""
    if current:
        tokens.append(current)
    return [token.lower() for token in tokens]
