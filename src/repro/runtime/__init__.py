"""Cached, parallel, instrumented disambiguation runtime.

The paper's algorithms (:mod:`repro.core`, :mod:`repro.similarity`)
describe *what* to compute; this package makes computing it at corpus
scale cheap and observable without changing a single score:

* :mod:`~repro.runtime.index` — :class:`SemanticIndex`, immutable
  precomputed taxonomy/IC/gloss tables built once per network and
  consumed by the similarity measures via ``index=`` (bit-identical
  fast path);
* :mod:`~repro.runtime.pack` — :class:`PackedIndex`, the same tables
  interned to dense integers and flat arrays with packed similarity
  kernels and a compact binary codec (cheap to ship to pool workers);
* :mod:`~repro.runtime.cache` — :class:`LRUCache`, a bounded pairwise
  memo with hit/miss/eviction counters;
* :mod:`~repro.runtime.memo` — :class:`SphereMemo`, a bounded LRU of
  whole disambiguation outcomes keyed by a canonical sphere signature
  (frozen config + network fingerprints, target, ordered members), so
  repeated situations replay bit-identically across documents;
* :mod:`~repro.runtime.executor` — :class:`BatchExecutor`, a
  pipelined multiprocessing fan-out with serial fallback and
  deterministic, input-ordered results;
* :mod:`~repro.runtime.pool` — :class:`PersistentPool` and
  :class:`SharedIndexSegment`: the long-lived worker runtime (spawn
  once, serve many batches) and the reference-counted shared-memory
  segment workers attach the packed index from zero-copy, plus the
  ``--workers auto`` helpers :func:`auto_workers` /
  :func:`parse_workers`;
* :mod:`~repro.runtime.store` — the on-disk ``RXPD`` shard format
  (:func:`write_shard` / :meth:`PackedIndex.from_mmap`): packed tables
  memory-mapped straight from disk, pages shared across *separate*
  processes via the OS page cache, plus :class:`NetworkRegistry`, the
  domain -> (network, shard) manifest with LRU attachment and
  coverage-based cross-network fallback routing;
* :mod:`~repro.runtime.metrics` — :class:`MetricsRegistry`, per-stage
  latency timers, counters, and structured events with JSON report
  export, zero-overhead when off;
* :mod:`~repro.runtime.resilience` — :class:`DocOutcome`,
  :class:`RetryPolicy`, :class:`CircuitBreaker`,
  :class:`BatchAbortError`: per-document fault isolation with bounded
  retry, per-document timeouts, and a breaker-guarded serial fallback;
* :mod:`~repro.runtime.faults` — :class:`FaultInjector` and
  :class:`FaultSpec`, deterministic seeded fault schedules
  (raise-in-worker, slow-worker, corrupt-packed-bytes,
  flaky-then-recover, kill-midbatch, shard bitrot) that exercise every
  recovery path; surviving documents stay bit-identical to a
  fault-free run;
* :mod:`~repro.runtime.journal` — :class:`JournalWriter` /
  :func:`read_journal`, the append-only CRC-framed outcome journal
  (WAL) behind ``repro batch --journal/--resume``: a killed batch
  resumes byte-identically, re-scoring only what never landed;
* :mod:`~repro.runtime.scrubber` — :class:`ShardScrubber`, the
  background integrity scrubber for attached ``RXPD`` shards:
  incremental CRC re-verification, typed damage detection, quarantine
  renames, and optional re-pack repair from the source network.

Typical use::

    from repro.runtime import BatchExecutor, MetricsRegistry

    metrics = MetricsRegistry()
    executor = BatchExecutor(network, config, workers=4, metrics=metrics)
    records = executor.run([(doc.name, doc.xml) for doc in corpus])
    print(metrics.to_json())
"""

from .cache import LRUCache
from .executor import BatchDocument, BatchExecutor, BatchRecord
from .faults import FaultInjector, FaultSpec, InjectedFault
from .index import SemanticIndex
from .journal import (
    JournalError,
    JournalReplay,
    JournalWriter,
    document_digest,
    read_journal,
)
from .memo import SphereMemo, config_fingerprint, sphere_signature
from .metrics import MetricsRegistry, StageTimer, batch_summary
from .pack import (
    PackedIC,
    PackedIndex,
    PackedIndexCRCError,
    PackedIndexError,
    PackedIndexTruncatedError,
)
from .pool import (
    PersistentPool,
    SharedIndexHandle,
    SharedIndexSegment,
    auto_workers,
    parse_workers,
)
from .resilience import (
    BatchAbortError,
    CircuitBreaker,
    DocOutcome,
    RetryPolicy,
)
from .scrubber import ScrubTarget, ShardScrubber
from .store import (
    MmapIndexHandle,
    NetworkRegistry,
    RegistryEntry,
    RegistryError,
    read_shard_header,
    verify_shard,
    write_shard,
)

__all__ = [
    "BatchAbortError",
    "BatchDocument",
    "BatchExecutor",
    "BatchRecord",
    "CircuitBreaker",
    "DocOutcome",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "JournalError",
    "JournalReplay",
    "JournalWriter",
    "LRUCache",
    "MetricsRegistry",
    "MmapIndexHandle",
    "NetworkRegistry",
    "PackedIC",
    "PackedIndex",
    "PackedIndexCRCError",
    "PackedIndexError",
    "PackedIndexTruncatedError",
    "PersistentPool",
    "RegistryEntry",
    "RegistryError",
    "RetryPolicy",
    "ScrubTarget",
    "SemanticIndex",
    "ShardScrubber",
    "SharedIndexHandle",
    "SharedIndexSegment",
    "SphereMemo",
    "StageTimer",
    "auto_workers",
    "batch_summary",
    "config_fingerprint",
    "document_digest",
    "parse_workers",
    "read_journal",
    "read_shard_header",
    "sphere_signature",
    "verify_shard",
    "write_shard",
]
