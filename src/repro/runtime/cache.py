"""Bounded LRU memoization for similarity and sense-score lookups.

Disambiguation pounds a small set of expensive pure functions — pairwise
concept similarity above all — with heavily repeated arguments.  The
substrate measures memoize in plain unbounded dicts, which is fine for
one document but not for a long-running batch service: a production
runtime needs *bounded* memory and *observable* behavior.

:class:`LRUCache` provides both.  It is dict-compatible where the
substrate expects a dict (``get`` / ``__setitem__`` / ``__len__``), so
it can be dropped into :class:`repro.similarity.combined
.CombinedSimilarity` via its ``cache=`` parameter, and it counts hits,
misses, and evictions so :mod:`repro.runtime.metrics` can report cache
effectiveness per run.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Iterator, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Sentinel distinguishing "absent" from a cached falsy value.
_MISSING = object()


class LRUCache:
    """A bounded least-recently-used key/value memo with counters.

    Parameters
    ----------
    maxsize:
        Maximum number of entries; the least recently *used* (read or
        written) entry is evicted when a new key would exceed it.
        ``None`` disables the bound (the cache then behaves like the
        substrate's plain dict memo, but still counts hits/misses).
    """

    def __init__(self, maxsize: int | None = 4096):
        if maxsize is not None and maxsize <= 0:
            raise ValueError("maxsize must be positive (or None for unbounded)")
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()
        # `get` is the hottest frame in a cached batch run; binding the
        # store's methods once skips two attribute lookups per call.
        # Safe because `_data` is never rebound (`clear()` keeps it).
        self._data_get = self._data.get
        self._move_to_end = self._data.move_to_end
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- dict-compatible surface (what CombinedSimilarity touches) ----------

    def get(self, key: K, default: V | None = None) -> V | None:
        """The cached value (marking a hit) or ``default`` (a miss)."""
        value = self._data_get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._move_to_end(key)
        return value

    def __setitem__(self, key: K, value: V) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if self.maxsize is not None and len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator:
        return iter(self._data)

    # -- memoization helper --------------------------------------------------

    def get_or_compute(self, key: K, compute: Callable[[], V]) -> V:
        """Cached value for ``key``, computing (and storing) on a miss."""
        value = self._data_get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            self._move_to_end(key)
            return value
        self.misses += 1
        value = compute()
        self[key] = value
        return value

    # -- observability -------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        if lookups == 0:
            return 0.0
        return self.hits / lookups

    def stats(self) -> dict[str, float]:
        """JSON-ready counters snapshot."""
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 6),
        }

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._data.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LRUCache({len(self._data)}/{self.maxsize}, "
            f"hit_rate={self.hit_rate:.2f})"
        )
