"""Batch disambiguation executor: corpora in, ordered results out.

One `XSDF` call disambiguates one document; production traffic arrives
as corpora.  :class:`BatchExecutor` fans a list of documents across a
``multiprocessing`` worker pool (with a serial fallback used when
``workers <= 1`` or when pools are unavailable, e.g. restricted
sandboxes), sharing one :class:`repro.runtime.index.SemanticIndex` and
one bounded similarity cache per process so repeated taxonomy work is
amortized across documents.

Determinism is a hard contract: results always come back in **input
order**, and because the indexed/cached similarity paths are
bit-identical to the uncached ones, parallel output is byte-identical
to serial output for the same input (the test suite pins this).

The parallel path is a **persistent runtime**
(:mod:`repro.runtime.pool`): workers are spawned once per executor and
reused across batches, keeping their session state (attached index,
warm sphere memo, document cache) between batches, so spin-up cost is
paid once, not per batch.  The semantic index is built **once in the
parent**, published once into a ``multiprocessing.shared_memory``
segment, and attached **zero-copy** in every worker — only document
payloads cross the pool boundary.  Within a batch, chunks flow through
a bounded-queue pipeline that overlaps submission with result
collection instead of running submit-all/collect-all barriers.
``close()`` (or the GC finalizer) terminates workers and unlinks the
segment; platforms without shared memory fall back to shipping the
compact codec buffer through the pool initializer.

Failure is a first-class outcome, not an exception.  Every document
comes back with a structured :class:`~repro.runtime.resilience
.DocOutcome` (``ok`` / ``retried`` / ``degraded`` / ``failed`` with the
typed error, attempt count, and stage); transient faults are retried
with exponential backoff; a per-document wall-clock timeout kills and
re-dispatches stragglers; and a circuit breaker trips the pool to the
serial fallback after N consecutive pool-machinery failures — each
transition recorded in the :class:`MetricsRegistry`, never silent.  A
seeded :class:`~repro.runtime.faults.FaultInjector` can be plugged in
to exercise all of these paths deterministically; documents that
succeed under injected faults are bit-identical to a fault-free run.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import weakref
from collections import deque
from dataclasses import dataclass
from typing import IO, Callable, Iterable, Sequence

from ..core.config import XSDFConfig
from ..core.framework import XSDF
from ..semnet.network import SemanticNetwork
from ..xmltree.errors import XMLError
from .cache import LRUCache
from .faults import FaultInjector, InjectedFault
from .index import SemanticIndex
from .metrics import MetricsRegistry
from .pack import PackedIndex, PackedIndexError
from .pool import (
    PersistentPool,
    SharedIndexHandle,
    SharedIndexSegment,
    auto_workers,
)
from .store import MmapIndexHandle
from .resilience import (
    ON_ERROR_POLICIES,
    STAGE_INDEX,
    STAGE_INJECT,
    STAGE_PARSE,
    STAGE_PIPELINE,
    STAGE_TIMEOUT,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RETRIED,
    BatchAbortError,
    CircuitBreaker,
    DocOutcome,
    RetryPolicy,
)

#: Default bound for the per-process pairwise/sense similarity caches.
DEFAULT_CACHE_SIZE = 65536

#: Bound for the per-process document-result cache (full result dicts
#: are larger than similarity floats, so the bound is tighter).
DOC_CACHE_SIZE = 1024

#: Soft cap on the XML payload of one pool chunk.  The default chunk
#: formula only counts documents; when documents are large, a chunk's
#: pickled payload (and the latency of losing its worker) grows with
#: per-document cost, so the adaptive formula also bounds chunk bytes.
TARGET_CHUNK_BYTES = 256 * 1024


@dataclass(frozen=True)
class BatchDocument:
    """One unit of batch work: a named XML text."""

    name: str
    xml: str


@dataclass
class BatchRecord:
    """The outcome of disambiguating one batch document.

    ``result`` is the JSON-ready ``DisambiguationResult.to_dict()``
    payload on success and ``None`` on failure, with ``error`` carrying
    the exception text (one bad document must not sink the batch).
    ``elapsed_s``, ``worker_stats`` (the producing worker's cumulative
    memo/prune/degrade counter snapshot, parallel runs only) and
    ``outcome`` (the structured :class:`DocOutcome`) are
    observability-only and deliberately excluded from the JSONL
    rendering, which must be byte-identical between serial and parallel
    (and cached and uncached, faulted and fault-free) runs of the same
    input.
    """

    name: str
    result: dict | None
    error: str | None
    elapsed_s: float
    worker_stats: dict | None = None
    outcome: DocOutcome | None = None

    @property
    def ok(self) -> bool:
        """True when the document disambiguated without an error."""
        return self.error is None

    def to_dict(self) -> dict:
        """JSON-ready rendering (the JSONL payload shape)."""
        return {
            "name": self.name,
            "ok": self.ok,
            "result": self.result,
            "error": self.error,
        }

    def to_json_line(self) -> str:
        """One canonical (sorted-key) JSONL line for this record."""
        return json.dumps(self.to_dict(), sort_keys=True)


# -- worker-process machinery ------------------------------------------------
#
# Module-level state + functions so they are picklable by Pool.  Each
# worker builds its XSDF (and document-result cache) once in the
# initializer; tasks then carry only (name, xml, attempt) payloads.

_WORKER_XSDF: XSDF | None = None
_WORKER_DOC_CACHE: LRUCache | None = None
_WORKER_INJECTOR: FaultInjector | None = None
_WORKER_GENERATION: int = 0


def _init_worker(
    network: SemanticNetwork,
    config: XSDFConfig,
    index: (
        "MmapIndexHandle | SharedIndexHandle | PackedIndex | SemanticIndex"
        " | bytes | None"
    ),
    cache_size: int | None,
    injector: FaultInjector | None = None,
    generation: int = 0,
) -> None:
    """Install this worker process's XSDF + caches (pool initializer).

    ``index`` arrives pre-built from the parent.  The fastest path is
    a :class:`~repro.runtime.store.MmapIndexHandle`: the index lives
    in an ``RXPD`` shard file, and this worker memory-maps it by path
    — no payload pickling, no publish, and the pages are shared with
    the parent *and* every other process mapping the same shard.
    Next is a :class:`~repro.runtime.pool.SharedIndexHandle`: the
    parent published the packed tables into shared memory once, and
    this worker attaches **zero-copy** by name — no payload pickling,
    no decode, the CSR tables are memoryview casts over the segment.
    A :class:`PackedIndex` pickles as its compact codec buffer (the
    no-shared-memory fallback), and raw codec ``bytes`` are the chaos
    path.  Any payload that fails to attach or decode degrades this
    worker to a locally built :class:`SemanticIndex` — one rung down
    the ladder — instead of killing the pool, and the degradation is
    surfaced through the worker's stats snapshot.

    ``generation`` is the persistent pool's spawn counter: snapshots
    are tagged with it so the parent's stats merge stays monotone
    across respawns (a recycled pid in a new generation is a new
    worker, not a counter reset).
    """
    # Per-process worker state is the one sanctioned module-global
    # mutation: it is written once per process, before any task runs.
    global _WORKER_XSDF, _WORKER_DOC_CACHE, _WORKER_INJECTOR, _WORKER_GENERATION  # lint: disable=cache-purity
    decode_degraded = False
    if isinstance(index, MmapIndexHandle):
        try:
            index = PackedIndex.from_mmap(index.path)
        except (PackedIndexError, OSError, ValueError):  # lint: disable=silent-degrade  # surfaced via degrade_stats snapshot below
            index = SemanticIndex(network)
            decode_degraded = True
    elif isinstance(index, SharedIndexHandle):
        try:
            index = PackedIndex.from_shared(index.name)
        except (PackedIndexError, OSError, ValueError):  # lint: disable=silent-degrade  # surfaced via degrade_stats snapshot below
            index = SemanticIndex(network)
            decode_degraded = True
    elif isinstance(index, (bytes, bytearray)):
        try:
            index = PackedIndex.from_bytes(bytes(index))
        except PackedIndexError:  # lint: disable=silent-degrade  # surfaced via degrade_stats snapshot below
            index = SemanticIndex(network)
            decode_degraded = True
    _WORKER_XSDF = _build_xsdf(network, config, index, cache_size)
    if decode_degraded:
        _WORKER_XSDF.degrade_stats["packed_decode"] += 1
    _WORKER_DOC_CACHE = (
        LRUCache(maxsize=DOC_CACHE_SIZE) if index is not None else None
    )
    _WORKER_INJECTOR = injector
    _WORKER_GENERATION = generation


def _run_chunk(
    tasks: list[tuple[str, str, int]]
) -> list[BatchRecord]:
    """Disambiguate one chunk of ``(name, xml, attempt)`` tasks."""
    assert _WORKER_XSDF is not None, "worker pool was not initialized"
    records = []
    for name, xml, attempt in tasks:
        record = _disambiguate_one(
            _WORKER_XSDF, name, xml, _WORKER_DOC_CACHE,
            injector=_WORKER_INJECTOR, attempt=attempt,
        )
        record.worker_stats = _stats_snapshot(_WORKER_XSDF)
        records.append(record)
    return records


def _stats_snapshot(xsdf: XSDF) -> dict:
    """This worker's cumulative memo/prune/degrade counters, pid-tagged.

    Counters are monotone over a worker's lifetime, so the parent can
    recover per-worker totals by taking the elementwise max of the
    snapshots each ``(generation, pid)`` produced, then summing the
    *deltas* since its merge watermarks across workers — workers
    persist across batches, so plain per-batch sums would double-count.
    """
    import os

    stats = {
        "pid": os.getpid(),
        "gen": _WORKER_GENERATION,
        "candidates_evaluated": xsdf.prune_stats["candidates_evaluated"],
        "candidates_pruned": xsdf.prune_stats["candidates_pruned"],
    }
    memo = xsdf.sphere_memo
    if memo is not None:
        memo_stats = memo.stats()
        stats["memo_hits"] = memo_stats["hits"]
        stats["memo_misses"] = memo_stats["misses"]
        stats["memo_evictions"] = memo_stats["evictions"]
    for key, value in xsdf.degrade_stats.items():
        if value:
            stats[f"degrade_{key}"] = value
    return stats


def _build_xsdf(
    network: SemanticNetwork,
    config: XSDFConfig,
    index: "PackedIndex | SemanticIndex | None",
    cache_size: int | None,
) -> XSDF:
    use_index = index is not None
    pair_cache = LRUCache(maxsize=cache_size) if use_index else None
    sense_cache = LRUCache(maxsize=cache_size) if use_index else None
    return XSDF(
        network, config,
        index=index,
        similarity_cache=pair_cache,
        sense_cache=sense_cache,
    )


def _classify_stage(exc: BaseException) -> str:
    """Map an exception to the pipeline stage it indicts."""
    if isinstance(exc, InjectedFault):
        return STAGE_INJECT
    if isinstance(exc, XMLError):
        return STAGE_PARSE
    if isinstance(exc, PackedIndexError):
        return STAGE_INDEX
    return STAGE_PIPELINE


def _disambiguate_one(
    xsdf: XSDF,
    name: str,
    xml: str,
    doc_cache: LRUCache | None,
    injector: FaultInjector | None = None,
    attempt: int = 1,
) -> BatchRecord:
    """Disambiguate one document, serving repeats from the result cache.

    The cache key is the document *text* digest: disambiguation is a
    pure function of (network, config, text), so an identical document
    seen again — the common shape of production traffic — costs one
    hash instead of a full pipeline run.  Injected faults fire *before*
    the cache lookup (they are keyed by document name, the cache by
    text) and are never cached, so a retry re-runs the real pipeline.
    """
    start = time.perf_counter()
    degrade_before = dict(xsdf.degrade_stats)
    result: dict | None = None
    error: str | None = None
    error_type = ""
    stage = ""
    transient = False
    cacheable = doc_cache is not None
    try:
        if injector is not None:
            injector.before_document(name, attempt)
        key = (
            hashlib.sha256(xml.encode("utf-8")).hexdigest()
            if doc_cache is not None else None
        )
        cached = doc_cache.get(key) if key is not None else None
        if cached is not None:
            result, error = cached
            cacheable = False
            if error is not None:
                error_type = error.split(":", 1)[0]
                stage = STAGE_PIPELINE
        else:
            result = xsdf.disambiguate_document(xml).to_dict()
    except (KeyboardInterrupt, SystemExit):
        raise
    except InjectedFault as exc:  # lint: disable=silent-degrade  # surfaced as a DocOutcome by the caller
        error = f"{type(exc).__name__}: {exc}"
        error_type = type(exc).__name__
        stage = STAGE_INJECT
        transient = exc.transient
        cacheable = False  # name-keyed fault, text-keyed cache
        key = None
    except Exception as exc:  # lint: disable=broad-except,silent-degrade  # isolation boundary -> DocOutcome
        error = f"{type(exc).__name__}: {exc}"
        error_type = type(exc).__name__
        stage = _classify_stage(exc)
    if cacheable and key is not None:
        # The document cache is this function's explicit output store,
        # not incidental state: writing it is the point.
        doc_cache[key] = (result, error)  # lint: disable=cache-purity
    degradations = tuple(
        k for k, v in xsdf.degrade_stats.items()
        if v > degrade_before.get(k, 0)
    )
    if error is None:
        status = STATUS_DEGRADED if degradations else STATUS_OK
    else:
        status = STATUS_FAILED
    outcome = DocOutcome(
        name=name,
        status=status,
        attempts=attempt,
        stage=stage,
        error_type=error_type,
        error=error or "",
        transient=transient,
        degradations=degradations,
    )
    return BatchRecord(
        name=name,
        result=result,
        error=error,
        elapsed_s=time.perf_counter() - start,
        outcome=outcome,
    )


def _release_parallel_state(
    pool: PersistentPool | None, segment: SharedIndexSegment | None
) -> None:
    """Tear down an executor's persistent pool + shared segment.

    Registered as a ``weakref.finalize`` callback (so a dropped
    executor cannot leak workers or a ``/dev/shm`` entry even without
    an explicit ``close()``) and invoked directly by
    :meth:`BatchExecutor.close`.  Module-level on purpose: a finalizer
    must not hold a reference back to the executor it guards.
    """
    if pool is not None:
        pool.close(terminate=True)
    if segment is not None:
        segment.release()


class BatchExecutor:
    """Disambiguates document batches serially or across a worker pool.

    Parameters
    ----------
    network:
        The reference semantic network (shared by every document).
    config:
        Pipeline parameters (defaults follow the paper).
    workers:
        Process count; ``<= 1`` runs serially in-process.  Counts
        above the host's *usable* CPUs (``auto_workers()``: affinity
        mask aware) are clamped unless ``oversubscribe=True`` — on a
        1-CPU host ``workers=2`` would pay fork + IPC + context
        switching for zero parallelism, so the executor serves such
        batches serially instead (output is identical; a
        ``workers_clamped`` event records the decision).  Pool
        creation failures (platforms without working
        ``multiprocessing``) and mid-batch pool-machinery failures
        (worker crashes, pickling errors) are counted by the circuit
        breaker and, once it trips, drain the rest of the batch on the
        serial path — output is identical either way, and every
        transition is recorded in the metrics registry.
    chunk_size:
        Documents per pool task; ``None`` picks ``ceil(n / (4 *
        workers))`` — large enough to amortize dispatch, small enough to
        load-balance.  Forced to 1 while ``doc_timeout`` is set so the
        timeout has per-document granularity.
    use_index:
        Build a semantic index + bounded LRU similarity cache (on by
        default — this is the runtime's raison d'être; disable to
        measure the uncached baseline).  The index is built once in the
        parent and shared: the serial path uses it directly, the
        parallel path ships it to every worker.
    packed:
        Use the interned flat-array :class:`PackedIndex` (default) —
        faster kernels and a compact pickled form for worker shipping.
        ``packed=False`` keeps the dict-keyed :class:`SemanticIndex`
        (the PR 1 runtime, retained for benchmarking and fallback).
        Scores are bit-identical either way.  Ignored when
        ``use_index`` is False.
    cache_size:
        Bound for the pairwise-similarity LRU (``None`` = unbounded).
    metrics:
        Optional :class:`MetricsRegistry`.  The serial path threads it
        through :class:`XSDF` for full per-stage latency; the parallel
        path records batch-level counters/timers plus the merged
        per-worker memo/prune/degrade counters — other worker-process
        internals are not merged back.  Resilience counters
        (``outcome_*``, ``retries``, ``doc_timeouts``,
        ``breaker_trips``) and structured events (``fault``,
        ``doc_failed``, ``doc_timeout``, ``pool_fault``,
        ``breaker_tripped``) land here too.
    max_retries:
        Re-dispatch budget for *transient* faults per document (a
        document runs at most ``max_retries + 1`` times).  Permanent
        errors (parse failures, deterministic pipeline bugs) are never
        retried.
    doc_timeout:
        Per-document wall-clock budget in seconds (parallel path only;
        the serial path cannot kill a straggler in-process).  A chunk
        that exceeds it has its pool terminated and its documents
        re-dispatched with a bumped attempt count, becoming ``failed``
        with ``stage="timeout"`` once retries are exhausted.
    backoff_base:
        First retry delay; doubles per attempt, capped at 2 s.  Pass
        ``0.0`` (tests do) to retry instantly.
    breaker_threshold:
        Consecutive pool-machinery failures before the circuit breaker
        trips to the serial fallback.
    on_error:
        ``"skip"`` (default) records failures and carries on;
        ``"fail"`` raises :class:`BatchAbortError` (carrying the
        records so far) at the first final failure; ``"quarantine"``
        behaves like ``skip`` — routing failed records to a sidecar is
        the CLI's job.
    injector:
        Optional :class:`FaultInjector`; its schedules fire in the
        parent's serial path and in every worker (it ships through the
        pool initializer), and may corrupt the packed payload shipped
        to workers.
    index:
        Optional pre-built :class:`PackedIndex` / :class:`SemanticIndex`
        over ``network``.  Long-lived callers (the ``repro serve``
        session pool) build the index once and share it across many
        executors — per-configuration caches stay private while the
        heavyweight taxonomy tables are never rebuilt.  Ignored when
        ``use_index`` is False.
    oversubscribe:
        Run the requested ``workers`` even beyond the usable-CPU count
        (default False).  The pool-lifecycle tests, the chaos gate,
        and the bench's honesty measurements use this to exercise the
        real pool machinery on single-CPU hosts.
    record_hook:
        Optional callable invoked in the parent with each *final*
        :class:`BatchRecord` as it completes, on every dispatch path
        (serial, parallel, timeout-exhausted).  The batch journal's
        append point; hook exceptions propagate and abort the batch.
    """

    def __init__(
        self,
        network: SemanticNetwork,
        config: XSDFConfig | None = None,
        workers: int = 1,
        chunk_size: int | None = None,
        use_index: bool = True,
        packed: bool = True,
        cache_size: int | None = DEFAULT_CACHE_SIZE,
        metrics: MetricsRegistry | None = None,
        max_retries: int = 2,
        doc_timeout: float | None = None,
        backoff_base: float = 0.05,
        breaker_threshold: int = 3,
        on_error: str = "skip",
        injector: FaultInjector | None = None,
        index: "PackedIndex | SemanticIndex | None" = None,
        oversubscribe: bool = False,
        record_hook: "Callable[[BatchRecord], None] | None" = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if cache_size is not None and cache_size < 1:
            raise ValueError("cache_size must be >= 1 (or None for unbounded)")
        if doc_timeout is not None and doc_timeout <= 0:
            raise ValueError("doc_timeout must be > 0 (or None for no limit)")
        if on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_POLICIES}, got {on_error!r}"
            )
        self.network = network
        self.config = config or XSDFConfig()
        self.workers = workers
        self.oversubscribe = oversubscribe
        self.chunk_size = chunk_size
        self.use_index = use_index
        self.packed = packed
        self.cache_size = cache_size
        self.metrics = metrics
        self.retry = RetryPolicy(
            max_retries=max_retries, backoff_base=backoff_base
        )
        self.doc_timeout = doc_timeout
        self.breaker_threshold = breaker_threshold
        self.on_error = on_error
        self.injector = injector
        self.record_hook = record_hook
        self._index: "PackedIndex | SemanticIndex | None" = (
            index if use_index else None
        )
        self._serial_xsdf: XSDF | None = None
        self._doc_cache: LRUCache | None = (
            LRUCache(maxsize=DOC_CACHE_SIZE) if use_index else None
        )
        # Persistent parallel runtime: pool + shared segment are built
        # once on the first parallel batch and reused until close().
        self._pool: PersistentPool | None = None
        self._segment: SharedIndexSegment | None = None
        self._shard_bytes = 0
        self._finalizer: "weakref.finalize | None" = None
        self._stat_marks: dict[tuple[int, int], dict[str, float]] = {}

    def _ensure_index(self) -> "PackedIndex | SemanticIndex | None":
        """The shared per-executor index, built lazily exactly once."""
        if not self.use_index:
            return None
        if self._index is None:
            if self.packed:
                self._index = PackedIndex(self.network)
            else:
                self._index = SemanticIndex(self.network)
        return self._index

    @property
    def index(self) -> "PackedIndex | SemanticIndex | None":
        """The executor's shared index, built on first access.

        Exposed so sibling executors (the server's per-configuration
        session pool) can reuse one already-built index via the
        ``index=`` constructor parameter instead of rebuilding it.
        """
        return self._ensure_index()

    def warm(self) -> None:
        """Eagerly build the index and the serial pipeline.

        A resident caller (the ``repro serve`` daemon) pays the whole
        build cost at startup instead of on the first request, and the
        metrics registry sees the cache gauges before any document
        arrives.
        """
        self._serial()

    def close(self) -> None:
        """Release the persistent pool and shared-memory segment.

        Terminates workers and unlinks the published ``/dev/shm``
        segment.  Idempotent, and the executor stays usable: the
        serial path is untouched, and a later parallel batch simply
        republishes and respawns a fresh runtime.  Executors also
        carry a GC finalizer doing the same teardown, so a dropped
        executor cannot leak — ``close()`` just makes it deterministic
        (the server calls it on session eviction and drain).
        """
        finalizer = self._finalizer
        if finalizer is not None:
            finalizer()  # runs _release_parallel_state exactly once
            self._finalizer = None
        self._pool = None
        self._segment = None

    def __enter__(self) -> "BatchExecutor":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: deterministic :meth:`close`."""
        self.close()

    @property
    def effective_workers(self) -> int:
        """The parallelism actually used for a batch.

        The requested ``workers`` clamped to the host's usable-CPU
        count (:func:`~repro.runtime.pool.auto_workers`, affinity-mask
        aware) — oversubscribing processes onto fewer CPUs costs
        fork/IPC/context-switch overhead and can win nothing.  With
        ``oversubscribe=True`` the request is honored verbatim.
        """
        if self.oversubscribe:
            return self.workers
        return min(self.workers, auto_workers())

    def runtime_stats(self) -> dict[str, int]:
        """Persistent-runtime counters (pool reuse, spawns, shm size).

        The bench honesty fields: ``pool_reuse_count`` proves warm
        batches really reused the pool, ``shm_bytes`` is the published
        shared-index payload size (0 when the byte-shipping fallback
        ran), ``shard_bytes`` the size of the mmap-shipped shard file
        (0 unless workers attached by path — the two are mutually
        exclusive), ``generation``/``worker_respawns`` count spawns.
        """
        stats = (
            self._pool.stats() if self._pool is not None
            else {
                "workers": self.effective_workers,
                "generation": 0,
                "pool_reuse_count": 0,
                "worker_respawns": 0,
                "alive": 0,
            }
        )
        stats["shm_bytes"] = self._segment.size if self._segment else 0
        stats["shard_bytes"] = self._shard_bytes
        return stats

    # -- public API ----------------------------------------------------------

    def run(
        self, documents: Iterable[BatchDocument | tuple[str, str]]
    ) -> list[BatchRecord]:
        """Disambiguate every document; records come back in input order.

        Under ``on_error="fail"`` a document whose retries are
        exhausted raises :class:`BatchAbortError` (carrying the records
        completed so far); otherwise failures come back as records with
        ``ok=False`` and a structured ``outcome``.
        """
        docs = [
            doc if isinstance(doc, BatchDocument) else BatchDocument(*doc)
            for doc in documents
        ]
        m = self.metrics
        if m is not None:
            m.count("batches")
            m.count("batch_documents", len(docs))
        start = time.perf_counter()
        effective = self.effective_workers
        if m is not None and effective < self.workers:
            m.event(
                "workers_clamped",
                requested=self.workers,
                effective=effective,
            )
        if effective <= 1 or len(docs) <= 1:
            records = self._run_serial(docs)
        else:
            records = self._run_parallel(docs)
        if m is not None:
            m.observe("batch", time.perf_counter() - start)
            m.count("batch_failures", sum(1 for r in records if not r.ok))
        return records

    def run_to_jsonl(
        self,
        documents: Iterable[BatchDocument | tuple[str, str]],
        handle: IO[str],
    ) -> list[BatchRecord]:
        """Run the batch and stream canonical JSONL lines to ``handle``."""
        records = self.run(documents)
        for record in records:
            handle.write(record.to_json_line())
            handle.write("\n")
        return records

    # -- outcome plumbing ----------------------------------------------------

    def _finalize(self, record: BatchRecord, attempt: int) -> BatchRecord:
        """Stamp the final outcome status and emit its metrics."""
        outcome = record.outcome
        if outcome is None:
            outcome = record.outcome = DocOutcome(  # lint: disable=cache-purity  # record is this method's out-param
                name=record.name,
                status=STATUS_OK if record.ok else STATUS_FAILED,
            )
        outcome.attempts = attempt
        if record.ok and attempt > 1:
            outcome.status = STATUS_RETRIED
        m = self.metrics
        if m is not None:
            m.count(f"outcome_{outcome.status}")
            if not record.ok:
                m.event(
                    "doc_failed",
                    doc=outcome.name,
                    error_type=outcome.error_type,
                    stage=outcome.stage,
                    attempts=attempt,
                )
        hook = self.record_hook
        if hook is not None:
            # Runs in the parent, exactly once per final record, on
            # every dispatch path — the journal's append point.  Hook
            # failures (disk full under --journal) propagate: silently
            # dropping durability would defeat the journal's contract.
            hook(record)
        return record

    def _note_retry(self, outcome: DocOutcome, attempt: int) -> None:
        """Record one transient fault that earned a re-dispatch."""
        m = self.metrics
        if m is not None:
            m.count("retries")
            m.event(
                "fault",
                doc=outcome.name,
                error_type=outcome.error_type,
                stage=outcome.stage,
                attempt=attempt,
            )

    def _abort(
        self, record: BatchRecord, results: "list[BatchRecord | None]"
    ) -> BatchAbortError:
        """The ``on_error="fail"`` abort, carrying the records so far."""
        return BatchAbortError(
            f"document {record.name!r} failed: {record.error}",
            [r for r in results if r is not None],
        )

    def _fail_record(
        self, doc: BatchDocument, attempt: int, stage: str, error: str
    ) -> BatchRecord:
        """A synthesized failure record (timeout / pool casualties)."""
        return BatchRecord(
            name=doc.name,
            result=None,
            error=error,
            elapsed_s=0.0,
            outcome=DocOutcome(
                name=doc.name,
                status=STATUS_FAILED,
                attempts=attempt,
                stage=stage,
                error_type=error.split(":", 1)[0],
                error=error,
                transient=True,
            ),
        )

    # -- serial path ---------------------------------------------------------

    def _serial(self) -> XSDF:
        if self._serial_xsdf is None:
            self._serial_xsdf = _build_xsdf(
                self.network, self.config, self._ensure_index(),
                self.cache_size,
            )
            if self.metrics is not None:
                self._serial_xsdf.metrics = self.metrics
                sphere_memo = self._serial_xsdf.sphere_memo
                for name, cache in (
                    ("similarity_pairs", self._serial_xsdf.similarity_cache),
                    ("sense_scores", self._serial_xsdf.sense_cache),
                    ("documents", self._doc_cache),
                    (
                        "sphere_memo",
                        sphere_memo.cache if sphere_memo is not None else None,
                    ),
                ):
                    if isinstance(cache, LRUCache):
                        self.metrics.register_cache(name, cache)
        return self._serial_xsdf

    def _attempt_serial(
        self, xsdf: XSDF, doc: BatchDocument, first_attempt: int = 1
    ) -> BatchRecord:
        """One document through the serial path, with the retry loop."""
        attempt = first_attempt
        while True:
            record = _disambiguate_one(
                xsdf, doc.name, doc.xml, self._doc_cache,
                injector=self.injector, attempt=attempt,
            )
            outcome = record.outcome
            assert outcome is not None
            if record.ok or not (
                outcome.transient and self.retry.allows(attempt)
            ):
                return self._finalize(record, attempt)
            self._note_retry(outcome, attempt)
            delay = self.retry.delay(attempt)
            if delay > 0:
                time.sleep(delay)
            attempt += 1

    def _run_serial(self, docs: Sequence[BatchDocument]) -> list[BatchRecord]:
        xsdf = self._serial()
        records: list[BatchRecord | None] = []
        for doc in docs:
            record = self._attempt_serial(xsdf, doc)
            records.append(record)
            if self.on_error == "fail" and not record.ok:
                raise self._abort(record, records)
        return [r for r in records if r is not None]

    # -- parallel path -------------------------------------------------------

    def _auto_chunk(self, docs: Sequence[BatchDocument]) -> int:
        """Documents per pool task, adapted to per-document payload.

        Starts from the classic ``ceil(n / (4 * workers))`` (amortize
        dispatch, keep 4 waves per worker for load balancing) and then
        caps the chunk so its XML payload stays near
        :data:`TARGET_CHUNK_BYTES` — for corpora of large documents a
        count-only formula would serialize most of the batch into a
        single task and lose both balance and failure granularity.
        """
        count_chunk = max(1, -(-len(docs) // (4 * self.effective_workers)))
        if count_chunk == 1:
            return 1
        mean_doc_bytes = max(
            1, sum(len(doc.xml) for doc in docs) // len(docs)
        )
        byte_cap = max(1, TARGET_CHUNK_BYTES // mean_doc_bytes)
        return min(count_chunk, byte_cap)

    def _ship_index(self) -> (
        "MmapIndexHandle | SharedIndexHandle | PackedIndex | SemanticIndex"
        " | bytes | None"
    ):
        """The index payload shipped to workers (chaos may corrupt it).

        An index attached from an ``RXPD`` shard file ships as a tiny
        :class:`~repro.runtime.store.MmapIndexHandle` — workers map
        the file by path, sharing pages with the parent and every
        other attaching process, and no segment needs publishing or
        unlinking.  Otherwise a :class:`PackedIndex` is published
        **once** into a shared-memory segment (owned by this executor
        until :meth:`close`); what crosses the pool boundary is a tiny
        :class:`SharedIndexHandle` and workers attach zero-copy.
        Platforms without working shared memory fall back to shipping
        the index itself (its pickle is the compact codec buffer).  A
        ``corrupt-packed`` chaos schedule corrupts whichever payload
        ships (the shard-path shortcut is skipped so corruption flows
        through the shm/bytes paths), so attach/decode fails with a
        typed error and workers degrade one ladder rung — same
        semantics on every path.
        """
        index = self._ensure_index()
        injector = self.injector
        corrupting = (
            injector is not None
            and injector.corrupts_packed
            and isinstance(index, PackedIndex)
        )
        if not isinstance(index, PackedIndex):
            return index
        shard = index.shard_path
        if shard is not None and not corrupting and os.path.isfile(shard):
            size = os.path.getsize(shard)
            self._shard_bytes = size
            if self.metrics is not None:
                self.metrics.gauge("shard_bytes", size)
            return MmapIndexHandle(path=shard, size=size)
        payload = index.to_shared_payload()
        if corrupting:
            payload = injector.corrupt_bytes(payload)
        segment = SharedIndexSegment.publish(payload, metrics=self.metrics)
        if segment is None:
            if corrupting:
                return injector.corrupt_bytes(index.to_bytes())
            return index
        self._segment = segment
        if self.metrics is not None:
            self.metrics.gauge("shm_bytes", segment.size)
        return segment.handle

    def _runtime(self) -> PersistentPool:
        """This executor's persistent pool runtime, created once.

        The shared segment is published and the pool object built on
        the first parallel batch; both live until :meth:`close` (or the
        GC finalizer registered here).  Workers themselves are spawned
        lazily by ``PersistentPool.ensure`` and survive across batches
        with their session state (attached index, warm sphere memo,
        document cache) intact.
        """
        if self._pool is None:
            ship = self._ship_index()
            self._pool = PersistentPool(
                processes=self.effective_workers,
                initializer=_init_worker,
                initargs=(
                    self.network, self.config, ship, self.cache_size,
                    self.injector,
                ),
                metrics=self.metrics,
            )
            self._finalizer = weakref.finalize(
                self, _release_parallel_state, self._pool, self._segment
            )
        return self._pool

    def _run_parallel(self, docs: Sequence[BatchDocument]) -> list[BatchRecord]:
        m = self.metrics
        breaker = CircuitBreaker(self.breaker_threshold)
        results: list[BatchRecord | None] = [None] * len(docs)
        pending: list[tuple[int, int]] = [(i, 1) for i in range(len(docs))]
        runtime = self._runtime()
        runtime.note_batch()
        try:
            while pending:
                if breaker.tripped:
                    if m is not None:
                        m.count("breaker_trips")
                        m.event("breaker_tripped", remaining=len(pending))
                    self._drain_serial(docs, pending, results)
                    pending = []
                    break
                pool = runtime.ensure()
                if pool is None:
                    breaker.record_failure()
                    continue
                pending, pool_ok = self._collect_wave(
                    pool, docs, pending, results, breaker
                )
                if not pool_ok:
                    runtime.restart()
                if pending:
                    # Back off before the retry wave (retries only reach
                    # here with attempt >= 2; pool-failure requeues keep
                    # attempt 1 and a zero delay).
                    delay = self.retry.delay(
                        max(att for _, att in pending) - 1
                    )
                    if delay > 0:
                        time.sleep(delay)
        except BaseException:  # lint: disable=broad-except  # teardown boundary: parks the pool then re-raises
            # Satellite contract: KeyboardInterrupt/SystemExit (and the
            # on_error="fail" abort) must not leave workers stuck on
            # in-flight tasks.  The inner pool is hard-terminated; the
            # runtime (and its published segment) stays, so the next
            # batch respawns workers against the same shared index.
            runtime.restart()
            raise
        records = [r for r in results if r is not None]
        assert len(records) == len(docs), "lost a batch document"
        if m is not None:
            self._merge_worker_stats(records)
        return records

    def _pipeline_depth(self) -> int:
        """Chunks kept in flight by the bounded-queue pipeline.

        Two per worker keeps every worker busy while the parent
        disposes the head chunk (submit overlaps collection); the
        floor of 4 keeps small pools pipelined too.  Bounding the
        queue (instead of submitting the whole wave up front) caps
        parent-side memory and lets a straggler or machinery fault
        surface before the tail is serialized.
        """
        return max(4, 2 * self.effective_workers)

    def _collect_wave(
        self,
        pool,
        docs: Sequence[BatchDocument],
        wave: list[tuple[int, int]],
        results: "list[BatchRecord | None]",
        breaker: CircuitBreaker,
    ) -> tuple[list[tuple[int, int]], bool]:
        """Pipeline one wave of ``(doc index, attempt)`` entries.

        The wave runs as a bounded-queue pipeline: up to
        :meth:`_pipeline_depth` chunks are in flight, the head chunk is
        collected (and disposed — finalized or requeued) while later
        chunks execute and the tail is still being submitted.  Returns
        ``(requeue, pool_ok)``: the entries needing another wave, and
        whether the pool survived (a timeout or machinery failure
        poisons it — the caller terminates and respawns via the
        persistent runtime).  On any failure the chunks already in
        flight are salvaged: finished results are kept, unfinished and
        unsubmitted entries are blamelessly requeued at their current
        attempt.
        """
        import multiprocessing

        m = self.metrics
        wave_docs = [docs[i] for i, _ in wave]
        if self.doc_timeout is not None:
            chunk = 1  # per-document timeout needs per-document tasks
        else:
            chunk = self.chunk_size or self._auto_chunk(wave_docs)
        groups = [wave[j:j + chunk] for j in range(0, len(wave), chunk)]
        depth = self._pipeline_depth()
        requeue: list[tuple[int, int]] = []
        inflight: deque[tuple[list[tuple[int, int]], object]] = deque()
        next_up = 0

        def _salvage_rest() -> list[tuple[int, int]]:
            """Harvest in-flight chunks, requeue the unsubmitted tail."""
            extra = self._salvage(
                [group for group, _ in inflight],
                [handle for _, handle in inflight],
                docs, results, requeue, breaker,
            )
            for group in groups[next_up:]:
                extra.extend(group)
            return extra

        while next_up < len(groups) or inflight:
            while next_up < len(groups) and len(inflight) < depth:
                group = groups[next_up]
                try:
                    handle = pool.apply_async(
                        _run_chunk,
                        ([
                            (docs[i].name, docs[i].xml, att)
                            for i, att in group
                        ],),
                    )
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:  # lint: disable=broad-except  # pool machinery boundary
                    # Submission failed (pool torn down, pickling
                    # error): this chunk never ran.  Requeue it with
                    # everything unfinished at the same attempt and let
                    # the breaker decide when to stop trusting pools.
                    breaker.record_failure()
                    if m is not None:
                        m.event("pool_fault", kind="submit", error=str(exc))
                    requeue.extend(group)
                    next_up += 1
                    requeue.extend(_salvage_rest())
                    return requeue, False
                inflight.append((group, handle))
                next_up += 1
            group, handle = inflight.popleft()
            timeout = (
                None if self.doc_timeout is None
                else self.doc_timeout * len(group)
            )
            try:
                records = handle.get(timeout)
            except (KeyboardInterrupt, SystemExit):
                raise
            except multiprocessing.TimeoutError:
                breaker.record_failure()
                if m is not None:
                    m.count("doc_timeouts")
                    m.event(
                        "doc_timeout",
                        docs=[docs[i].name for i, _ in group],
                        attempt=group[0][1],
                    )
                requeue.extend(
                    self._requeue_timed_out(group, docs, results)
                )
                requeue.extend(_salvage_rest())
                return requeue, False
            except Exception as exc:  # lint: disable=broad-except  # pool machinery boundary
                breaker.record_failure()
                if m is not None:
                    m.event("pool_fault", kind="collect", error=str(exc))
                requeue.extend(group)
                requeue.extend(_salvage_rest())
                return requeue, False
            else:
                breaker.record_success()
                self._dispose_chunk(group, records, results, requeue)
        return requeue, True

    def _salvage(
        self,
        groups: list[list[tuple[int, int]]],
        handles: list,
        docs: Sequence[BatchDocument],
        results: "list[BatchRecord | None]",
        requeue: list[tuple[int, int]],
        breaker: CircuitBreaker,
    ) -> list[tuple[int, int]]:
        """Harvest already-finished chunks before killing a poisoned pool.

        Ready results are disposed normally; everything still in flight
        is requeued at its current attempt (those documents did nothing
        wrong — the straggler did).
        """
        extra: list[tuple[int, int]] = []
        for group, handle in zip(groups, handles):
            if not handle.ready():
                extra.extend(group)
                continue
            try:
                records = handle.get(0)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # lint: disable=broad-except  # pool machinery boundary
                breaker.record_failure()
                if self.metrics is not None:
                    self.metrics.event(
                        "pool_fault", kind="collect", error=str(exc)
                    )
                extra.extend(group)
                continue
            self._dispose_chunk(group, records, results, requeue)
        return extra

    def _requeue_timed_out(
        self,
        group: list[tuple[int, int]],
        docs: Sequence[BatchDocument],
        results: "list[BatchRecord | None]",
    ) -> list[tuple[int, int]]:
        """Re-dispatch a timed-out chunk, or fail it out of retries."""
        out: list[tuple[int, int]] = []
        for i, attempt in group:
            if self.retry.allows(attempt):
                record = self._fail_record(
                    docs[i], attempt, STAGE_TIMEOUT,
                    f"TimeoutError: exceeded doc_timeout="
                    f"{self.doc_timeout}s",
                )
                assert record.outcome is not None
                self._note_retry(record.outcome, attempt)
                out.append((i, attempt + 1))
            else:
                record = self._finalize(
                    self._fail_record(
                        docs[i], attempt, STAGE_TIMEOUT,
                        f"TimeoutError: exceeded doc_timeout="
                        f"{self.doc_timeout}s after {attempt} attempts",
                    ),
                    attempt,
                )
                results[i] = record  # lint: disable=cache-purity  # results is the wave scheduler's out-param
                if self.on_error == "fail":
                    raise self._abort(record, results)
        return out

    def _dispose_chunk(
        self,
        group: list[tuple[int, int]],
        records: list[BatchRecord],
        results: "list[BatchRecord | None]",
        requeue: list[tuple[int, int]],
    ) -> None:
        """Route one chunk's records: final, retryable, or abort."""
        for (i, attempt), record in zip(group, records):
            outcome = record.outcome
            if (
                not record.ok
                and outcome is not None
                and outcome.transient
                and self.retry.allows(attempt)
            ):
                self._note_retry(outcome, attempt)
                requeue.append((i, attempt + 1))  # lint: disable=cache-purity  # requeue is the wave scheduler's out-param
                continue
            results[i] = self._finalize(record, attempt)  # lint: disable=cache-purity  # results is the wave scheduler's out-param
            if self.on_error == "fail" and not record.ok:
                raise self._abort(record, results)

    def _drain_serial(
        self,
        docs: Sequence[BatchDocument],
        pending: list[tuple[int, int]],
        results: "list[BatchRecord | None]",
    ) -> None:
        """Finish the remaining documents in the parent (breaker open)."""
        xsdf = self._serial()
        for i, attempt in sorted(pending):
            record = self._attempt_serial(xsdf, docs[i], first_attempt=attempt)
            results[i] = record  # lint: disable=cache-purity  # results is the wave scheduler's out-param
            if self.on_error == "fail" and not record.ok:
                raise self._abort(record, results)

    def _merge_worker_stats(self, records: Sequence[BatchRecord]) -> None:
        """Fold worker memo/prune snapshots into the parent's counters.

        Each record carries its worker's *cumulative* counters at
        production time; the per-worker total is the elementwise max of
        that worker's snapshots.  Workers are keyed by ``(generation,
        pid)`` and persist across batches on the warm pool, so what
        lands in the registry is the **delta** above the executor's
        per-worker watermarks from earlier batches — a plain per-batch
        sum of cumulative counters would double-count every reuse.
        """
        per_worker: dict[tuple[int, int], dict[str, float]] = {}
        for record in records:
            stats = record.worker_stats
            if not stats:
                continue
            key = (stats.get("gen", 0), stats["pid"])
            bucket = per_worker.setdefault(key, {})
            for name, value in stats.items():
                if name not in ("pid", "gen") and value > bucket.get(name, 0):
                    bucket[name] = value
        totals: dict[str, float] = {}
        for key, bucket in per_worker.items():
            marks = self._stat_marks.setdefault(key, {})
            for name, value in bucket.items():
                delta = value - marks.get(name, 0)
                if delta > 0:
                    totals[name] = totals.get(name, 0) + delta
                    marks[name] = value
        for name, value in totals.items():
            if value:
                self.metrics.count(name, value)
