"""Batch disambiguation executor: corpora in, ordered results out.

One `XSDF` call disambiguates one document; production traffic arrives
as corpora.  :class:`BatchExecutor` fans a list of documents across a
``multiprocessing`` worker pool (with a serial fallback used when
``workers <= 1`` or when pools are unavailable, e.g. restricted
sandboxes), sharing one :class:`repro.runtime.index.SemanticIndex` and
one bounded similarity cache per process so repeated taxonomy work is
amortized across documents.

Determinism is a hard contract: results always come back in **input
order**, and because the indexed/cached similarity paths are
bit-identical to the uncached ones, parallel output is byte-identical
to serial output for the same input (the test suite pins this).

Workers are initialized once per process with the pickled network +
config (documents are the only per-task payload), so pool startup cost
is paid per worker, not per document.  The semantic index itself is
built **once in the parent** and shipped to workers as a
:class:`repro.runtime.pack.PackedIndex` — whose pickled form is the
compact binary codec, a fraction of the network pickle — so worker
initialization decodes a buffer instead of re-walking the taxonomy and
re-stemming every gloss.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import IO, Iterable, Sequence

from ..core.config import XSDFConfig
from ..core.framework import XSDF
from ..semnet.network import SemanticNetwork
from .cache import LRUCache
from .index import SemanticIndex
from .metrics import MetricsRegistry
from .pack import PackedIndex

#: Default bound for the per-process pairwise/sense similarity caches.
DEFAULT_CACHE_SIZE = 65536

#: Bound for the per-process document-result cache (full result dicts
#: are larger than similarity floats, so the bound is tighter).
DOC_CACHE_SIZE = 1024

#: Soft cap on the XML payload of one pool chunk.  The default chunk
#: formula only counts documents; when documents are large, a chunk's
#: pickled payload (and the latency of losing its worker) grows with
#: per-document cost, so the adaptive formula also bounds chunk bytes.
TARGET_CHUNK_BYTES = 256 * 1024


@dataclass(frozen=True)
class BatchDocument:
    """One unit of batch work: a named XML text."""

    name: str
    xml: str


@dataclass
class BatchRecord:
    """The outcome of disambiguating one batch document.

    ``result`` is the JSON-ready ``DisambiguationResult.to_dict()``
    payload on success and ``None`` on failure, with ``error`` carrying
    the exception text (one bad document must not sink the batch).
    ``elapsed_s`` and ``worker_stats`` (the producing worker's
    cumulative memo/prune counter snapshot, parallel runs only) are
    observability-only and deliberately excluded from the JSONL
    rendering, which must be byte-identical between serial and parallel
    (and cached and uncached) runs of the same input.
    """

    name: str
    result: dict | None
    error: str | None
    elapsed_s: float
    worker_stats: dict | None = None

    @property
    def ok(self) -> bool:
        """True when the document disambiguated without an error."""
        return self.error is None

    def to_dict(self) -> dict:
        """JSON-ready rendering (the JSONL payload shape)."""
        return {
            "name": self.name,
            "ok": self.ok,
            "result": self.result,
            "error": self.error,
        }

    def to_json_line(self) -> str:
        """One canonical (sorted-key) JSONL line for this record."""
        return json.dumps(self.to_dict(), sort_keys=True)


# -- worker-process machinery ------------------------------------------------
#
# Module-level state + functions so they are picklable by Pool.  Each
# worker builds its XSDF (and document-result cache) once in the
# initializer; tasks then carry only (name, xml) payloads.

_WORKER_XSDF: XSDF | None = None
_WORKER_DOC_CACHE: LRUCache | None = None


def _init_worker(
    network: SemanticNetwork,
    config: XSDFConfig,
    index: "PackedIndex | SemanticIndex | None",
    cache_size: int | None,
) -> None:
    """Install this worker process's XSDF + caches (pool initializer).

    ``index`` arrives pre-built from the parent — for a
    :class:`PackedIndex` the pickle payload is its compact codec
    buffer, so initialization is a decode, not an index rebuild.
    """
    # Per-process worker state is the one sanctioned module-global
    # mutation: it is written once per process, before any task runs.
    global _WORKER_XSDF, _WORKER_DOC_CACHE  # lint: disable=cache-purity
    _WORKER_XSDF = _build_xsdf(network, config, index, cache_size)
    _WORKER_DOC_CACHE = (
        LRUCache(maxsize=DOC_CACHE_SIZE) if index is not None else None
    )


def _run_one(task: tuple[str, str]) -> BatchRecord:
    assert _WORKER_XSDF is not None, "worker pool was not initialized"
    record = _disambiguate_one(
        _WORKER_XSDF, task[0], task[1], _WORKER_DOC_CACHE
    )
    record.worker_stats = _stats_snapshot(_WORKER_XSDF)
    return record


def _stats_snapshot(xsdf: XSDF) -> dict:
    """This worker's cumulative memo/prune counters, pid-tagged.

    Counters are monotone over a worker's lifetime, so the parent can
    recover per-worker totals by taking the elementwise max of the
    snapshots each pid produced, then summing across pids.
    """
    import os

    stats = {
        "pid": os.getpid(),
        "candidates_evaluated": xsdf.prune_stats["candidates_evaluated"],
        "candidates_pruned": xsdf.prune_stats["candidates_pruned"],
    }
    memo = xsdf.sphere_memo
    if memo is not None:
        memo_stats = memo.stats()
        stats["memo_hits"] = memo_stats["hits"]
        stats["memo_misses"] = memo_stats["misses"]
        stats["memo_evictions"] = memo_stats["evictions"]
    return stats


def _build_xsdf(
    network: SemanticNetwork,
    config: XSDFConfig,
    index: "PackedIndex | SemanticIndex | None",
    cache_size: int | None,
) -> XSDF:
    use_index = index is not None
    pair_cache = LRUCache(maxsize=cache_size) if use_index else None
    sense_cache = LRUCache(maxsize=cache_size) if use_index else None
    return XSDF(
        network, config,
        index=index,
        similarity_cache=pair_cache,
        sense_cache=sense_cache,
    )


def _disambiguate_one(
    xsdf: XSDF, name: str, xml: str, doc_cache: LRUCache | None
) -> BatchRecord:
    """Disambiguate one document, serving repeats from the result cache.

    The cache key is the document *text* digest: disambiguation is a
    pure function of (network, config, text), so an identical document
    seen again — the common shape of production traffic — costs one
    hash instead of a full pipeline run.
    """
    start = time.perf_counter()
    key = hashlib.sha256(xml.encode("utf-8")).hexdigest() \
        if doc_cache is not None else None
    if key is not None:
        cached = doc_cache.get(key)
        if cached is not None:
            return BatchRecord(
                name=name,
                result=cached[0],
                error=cached[1],
                elapsed_s=time.perf_counter() - start,
            )
    try:
        result = xsdf.disambiguate_document(xml).to_dict()
        error = None
    except Exception as exc:  # lint: disable=broad-except  # isolation boundary
        result = None
        error = f"{type(exc).__name__}: {exc}"
    if key is not None:
        # The document cache is this function's explicit output store,
        # not incidental state: writing it is the point.
        doc_cache[key] = (result, error)  # lint: disable=cache-purity
    return BatchRecord(
        name=name,
        result=result,
        error=error,
        elapsed_s=time.perf_counter() - start,
    )


class BatchExecutor:
    """Disambiguates document batches serially or across a worker pool.

    Parameters
    ----------
    network:
        The reference semantic network (shared by every document).
    config:
        Pipeline parameters (defaults follow the paper).
    workers:
        Process count; ``<= 1`` runs serially in-process.  Pool
        creation failures (platforms without working
        ``multiprocessing``) *and* mid-batch ``pool.map`` failures
        (worker crashes, pickling errors) degrade to the serial path
        instead of erroring.
    chunk_size:
        Documents per pool task; ``None`` picks ``ceil(n / (4 *
        workers))`` — large enough to amortize dispatch, small enough to
        load-balance.
    use_index:
        Build a semantic index + bounded LRU similarity cache (on by
        default — this is the runtime's raison d'être; disable to
        measure the uncached baseline).  The index is built once in the
        parent and shared: the serial path uses it directly, the
        parallel path ships it to every worker.
    packed:
        Use the interned flat-array :class:`PackedIndex` (default) —
        faster kernels and a compact pickled form for worker shipping.
        ``packed=False`` keeps the dict-keyed :class:`SemanticIndex`
        (the PR 1 runtime, retained for benchmarking and fallback).
        Scores are bit-identical either way.  Ignored when
        ``use_index`` is False.
    cache_size:
        Bound for the pairwise-similarity LRU (``None`` = unbounded).
    metrics:
        Optional :class:`MetricsRegistry`.  The serial path threads it
        through :class:`XSDF` for full per-stage latency; the parallel
        path records batch-level counters/timers plus the merged
        per-worker memo/prune counters (``memo_hits``, ``memo_misses``,
        ``memo_evictions``, ``candidates_evaluated``,
        ``candidates_pruned``) — other worker-process internals are not
        merged back.
    """

    def __init__(
        self,
        network: SemanticNetwork,
        config: XSDFConfig | None = None,
        workers: int = 1,
        chunk_size: int | None = None,
        use_index: bool = True,
        packed: bool = True,
        cache_size: int | None = DEFAULT_CACHE_SIZE,
        metrics: MetricsRegistry | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if cache_size is not None and cache_size < 1:
            raise ValueError("cache_size must be >= 1 (or None for unbounded)")
        self.network = network
        self.config = config or XSDFConfig()
        self.workers = workers
        self.chunk_size = chunk_size
        self.use_index = use_index
        self.packed = packed
        self.cache_size = cache_size
        self.metrics = metrics
        self._index: "PackedIndex | SemanticIndex | None" = None
        self._serial_xsdf: XSDF | None = None
        self._doc_cache: LRUCache | None = (
            LRUCache(maxsize=DOC_CACHE_SIZE) if use_index else None
        )

    def _ensure_index(self) -> "PackedIndex | SemanticIndex | None":
        """The shared per-executor index, built lazily exactly once."""
        if not self.use_index:
            return None
        if self._index is None:
            if self.packed:
                self._index = PackedIndex(self.network)
            else:
                self._index = SemanticIndex(self.network)
        return self._index

    # -- public API ----------------------------------------------------------

    def run(
        self, documents: Iterable[BatchDocument | tuple[str, str]]
    ) -> list[BatchRecord]:
        """Disambiguate every document; records come back in input order."""
        docs = [
            doc if isinstance(doc, BatchDocument) else BatchDocument(*doc)
            for doc in documents
        ]
        m = self.metrics
        if m is not None:
            m.count("batches")
            m.count("batch_documents", len(docs))
        start = time.perf_counter()
        if self.workers <= 1 or len(docs) <= 1:
            records = self._run_serial(docs)
        else:
            records = self._run_parallel(docs)
        if m is not None:
            m.observe("batch", time.perf_counter() - start)
            m.count("batch_failures", sum(1 for r in records if not r.ok))
        return records

    def run_to_jsonl(
        self,
        documents: Iterable[BatchDocument | tuple[str, str]],
        handle: IO[str],
    ) -> list[BatchRecord]:
        """Run the batch and stream canonical JSONL lines to ``handle``."""
        records = self.run(documents)
        for record in records:
            handle.write(record.to_json_line())
            handle.write("\n")
        return records

    # -- serial path ---------------------------------------------------------

    def _serial(self) -> XSDF:
        if self._serial_xsdf is None:
            self._serial_xsdf = _build_xsdf(
                self.network, self.config, self._ensure_index(),
                self.cache_size,
            )
            if self.metrics is not None:
                self._serial_xsdf.metrics = self.metrics
                sphere_memo = self._serial_xsdf.sphere_memo
                for name, cache in (
                    ("similarity_pairs", self._serial_xsdf.similarity_cache),
                    ("sense_scores", self._serial_xsdf.sense_cache),
                    ("documents", self._doc_cache),
                    (
                        "sphere_memo",
                        sphere_memo.cache if sphere_memo is not None else None,
                    ),
                ):
                    if isinstance(cache, LRUCache):
                        self.metrics.register_cache(name, cache)
        return self._serial_xsdf

    def _run_serial(self, docs: Sequence[BatchDocument]) -> list[BatchRecord]:
        xsdf = self._serial()
        return [
            _disambiguate_one(xsdf, doc.name, doc.xml, self._doc_cache)
            for doc in docs
        ]

    # -- parallel path -------------------------------------------------------

    def _auto_chunk(self, docs: Sequence[BatchDocument]) -> int:
        """Documents per pool task, adapted to per-document payload.

        Starts from the classic ``ceil(n / (4 * workers))`` (amortize
        dispatch, keep 4 waves per worker for load balancing) and then
        caps the chunk so its XML payload stays near
        :data:`TARGET_CHUNK_BYTES` — for corpora of large documents a
        count-only formula would serialize most of the batch into a
        single task and lose both balance and failure granularity.
        """
        count_chunk = max(1, -(-len(docs) // (4 * self.workers)))
        if count_chunk == 1:
            return 1
        mean_doc_bytes = max(
            1, sum(len(doc.xml) for doc in docs) // len(docs)
        )
        byte_cap = max(1, TARGET_CHUNK_BYTES // mean_doc_bytes)
        return min(count_chunk, byte_cap)

    def _run_parallel(self, docs: Sequence[BatchDocument]) -> list[BatchRecord]:
        index = self._ensure_index()
        try:
            import multiprocessing

            pool = multiprocessing.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(
                    self.network, self.config, index, self.cache_size,
                ),
            )
        except (ImportError, OSError, ValueError):
            # No usable multiprocessing on this platform — degrade
            # gracefully; output is identical either way.
            return self._run_serial(docs)
        chunk = self.chunk_size or self._auto_chunk(docs)
        tasks = [(doc.name, doc.xml) for doc in docs]
        records: list[BatchRecord] | None
        try:
            # Pool.map preserves task order, giving input-ordered merge.
            records = pool.map(_run_one, tasks, chunksize=chunk)
        except Exception:  # lint: disable=broad-except  # isolation boundary
            # A mid-batch failure (worker crash, PicklingError, pool
            # torn down under us) must not sink the run: per-document
            # errors are already isolated inside _disambiguate_one, so
            # anything surfacing here is pool machinery — redo the
            # batch on the serial path, whose output is identical.
            records = None
        finally:
            pool.close()
            pool.join()
        if records is None:
            return self._run_serial(docs)
        if self.metrics is not None:
            self._merge_worker_stats(records)
        return records

    def _merge_worker_stats(self, records: Sequence[BatchRecord]) -> None:
        """Fold worker memo/prune snapshots into the parent's counters.

        Each record carries its worker's *cumulative* counters at
        production time; the per-worker total is the elementwise max of
        that pid's snapshots, and the batch total the sum across pids.
        """
        per_pid: dict[int, dict[str, float]] = {}
        for record in records:
            stats = record.worker_stats
            if not stats:
                continue
            bucket = per_pid.setdefault(stats["pid"], {})
            for key, value in stats.items():
                if key != "pid" and value > bucket.get(key, 0):
                    bucket[key] = value
        totals: dict[str, float] = {}
        for bucket in per_pid.values():
            for key, value in bucket.items():
                totals[key] = totals.get(key, 0) + value
        for key, value in totals.items():
            if value:
                self.metrics.count(key, value)
