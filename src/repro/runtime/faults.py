"""Deterministic, seedable fault injection for the batch runtime.

The injector exists so every recovery path in
:mod:`repro.runtime.executor` and the XSDF degradation ladder is
exercised by tests and the CI chaos job rather than hoped-for.  It is
**deliberately stateless**: every decision is a pure function of
``(seed, spec, document name, attempt)`` hashed through blake2b, so the
same schedule fires identically in the parent, in any worker process,
and under any dispatch order — which is what makes the chaos parity
gate ("surviving documents are bit-identical to a fault-free run")
checkable at all.

Fault kinds:

* ``raise`` — raise :class:`InjectedFault` before the document is
  disambiguated (optionally only for the first ``max_attempt``
  attempts: the *flaky-then-recover* schedule).
* ``slow`` — sleep ``delay_s`` before the document runs, to trip the
  executor's per-document wall-clock timeout.
* ``corrupt-packed`` — deterministically flip a byte in the packed
  payload shipped to workers (``RXPK`` bytes or the shared ``RXPS``
  segment), so decode fails with a typed
  :class:`~repro.runtime.pack.PackedIndexError` and the worker degrades
  one rung down the ladder.
* ``exit`` — kill the worker process mid-document with ``os._exit``
  (the SIGKILL-shaped crash no ``except`` can catch), to exercise the
  persistent pool's respawn-and-requeue path.  In the parent process
  (serial drain, in-process test doubles) it raises a transient
  :class:`InjectedFault` instead — crashing the caller would take the
  test harness down with it.
* ``kill_midbatch`` — SIGKILL the whole batch *process* when a
  matching document comes up: the journal chaos gate's crash, taking
  the parent (and its journal buffers) down with no cleanup at all.
  Unlike ``exit`` this kind is meant to fire in the parent — the gate
  runs it in a sacrificial subprocess and then proves ``--resume``
  reconstructs a byte-identical output.
* ``bitrot`` — not a per-document hook at all: ``bitrot_shard`` flips
  one seeded byte inside an ``RXPD`` shard file *on disk*, past the
  32-byte header, so the scrubber's incremental CRC pass (not the
  attach-time check) is what must catch it.

The module also ships two tiny test doubles (:class:`FaultyKernel`,
:class:`BrokenMemo`) used by the ladder unit tests to fault a packed
kernel or a sphere memo mid-scoring without monkeypatching internals.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import hashlib
import os
import signal
import time
from typing import Any

#: Valid ``FaultSpec.kind`` values.
FAULT_KINDS = (
    "raise", "slow", "corrupt-packed", "exit", "kill_midbatch", "bitrot"
)


class InjectedFault(RuntimeError):
    """A fault raised on purpose by :class:`FaultInjector`.

    ``transient`` tells the executor whether a retry may succeed
    (flaky-then-recover schedules) or the fault is permanent for this
    document (retrying would waste attempts).
    """

    def __init__(self, message: str, transient: bool = True) -> None:
        super().__init__(message)
        self.transient = transient


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One seeded fault schedule.

    ``match`` is an :func:`fnmatch.fnmatch` pattern over document
    names; ``rate`` is the per-document firing probability (decided
    deterministically from the seed, not a shared RNG); ``max_attempt``
    limits a ``raise`` fault to the first N attempts — the
    flaky-then-recover schedule; ``delay_s`` is the sleep for ``slow``
    faults; ``transient`` is carried onto the raised
    :class:`InjectedFault`.
    """

    kind: str
    match: str = "*"
    rate: float = 1.0
    transient: bool = True
    max_attempt: int | None = None
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.max_attempt is not None and self.max_attempt < 1:
            raise ValueError(f"max_attempt must be >= 1, got {self.max_attempt}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")

    @classmethod
    def raising(
        cls, match: str = "*", rate: float = 1.0, transient: bool = True
    ) -> "FaultSpec":
        """Raise an :class:`InjectedFault` for every matching attempt."""
        return cls(kind="raise", match=match, rate=rate, transient=transient)

    @classmethod
    def flaky(
        cls, match: str = "*", fail_attempts: int = 1, rate: float = 1.0
    ) -> "FaultSpec":
        """Fail the first ``fail_attempts`` attempts, then recover."""
        return cls(
            kind="raise",
            match=match,
            rate=rate,
            transient=True,
            max_attempt=fail_attempts,
        )

    @classmethod
    def slow(
        cls,
        match: str = "*",
        delay_s: float = 0.5,
        rate: float = 1.0,
        max_attempt: int | None = None,
    ) -> "FaultSpec":
        """Sleep ``delay_s`` before matching documents run.

        ``max_attempt`` makes the straggler recover on re-dispatch —
        the slow-then-recover schedule for per-document timeout tests.
        """
        return cls(
            kind="slow",
            match=match,
            rate=rate,
            delay_s=delay_s,
            max_attempt=max_attempt,
        )

    @classmethod
    def corrupt_packed(cls, rate: float = 1.0) -> "FaultSpec":
        """Flip a byte in the packed index payload shipped to workers."""
        return cls(kind="corrupt-packed", rate=rate)

    @classmethod
    def exiting(
        cls,
        match: str = "*",
        rate: float = 1.0,
        max_attempt: int | None = 1,
    ) -> "FaultSpec":
        """Hard-kill the worker running matching documents.

        Defaults to ``max_attempt=1`` — crash-then-recover — so the
        blamelessly requeued document succeeds on its second attempt in
        the respawned pool instead of assassinating every generation.
        """
        return cls(kind="exit", match=match, rate=rate, max_attempt=max_attempt)

    @classmethod
    def kill_midbatch(
        cls, match: str = "*", rate: float = 1.0
    ) -> "FaultSpec":
        """SIGKILL the whole batch process at a matching document.

        The crash the journal must survive: no ``finally``, no flush,
        no atexit — only what already reached the OS persists.
        """
        return cls(kind="kill_midbatch", match=match, rate=rate)

    @classmethod
    def bitrot(cls, match: str = "*", rate: float = 1.0) -> "FaultSpec":
        """Flip one seeded byte inside a shard file on disk.

        ``match`` patterns the shard's basename (not a document name);
        applied through :meth:`FaultInjector.bitrot_shard`.
        """
        return cls(kind="bitrot", match=match, rate=rate)

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse a CLI fault spec: ``KIND[:MATCH[:RATE]]``.

        ``MATCH`` may itself contain colons (file paths); when the
        final segment parses as a float it is the rate, otherwise it is
        part of the match pattern.  Examples::

            kill_midbatch:*doc-03*
            raise:*.xml:0.25
            bitrot
        """
        parts = text.split(":")
        kind = parts[0]
        match = "*"
        rate = 1.0
        if len(parts) >= 3:
            try:
                rate = float(parts[-1])
            except ValueError:  # lint: disable=silent-degrade  # not a failure: a non-numeric tail is part of the match pattern
                match = ":".join(parts[1:])
            else:
                match = ":".join(parts[1:-1])
        elif len(parts) == 2:
            match = parts[1]
        try:
            return cls(kind=kind, match=match, rate=rate)
        except ValueError as exc:
            raise ValueError(f"bad fault spec {text!r}: {exc}") from None


class FaultInjector:
    """Seeded, stateless fault schedule shared by executor and workers.

    The injector is picklable (plain ints/strings/dataclasses) and is
    shipped to workers through the pool initializer; because decisions
    hash only ``(seed, spec index, name, ...)`` the parent and every
    worker agree on exactly which documents fault, independent of
    process identity, dispatch order, or wall clock.
    """

    def __init__(self, seed: int, specs: list[FaultSpec] | tuple[FaultSpec, ...] = ()) -> None:
        self.seed = int(seed)
        self.specs: tuple[FaultSpec, ...] = tuple(specs)

    def _roll(self, spec_index: int, *parts: Any) -> float:
        """Deterministic uniform draw in [0, 1) for one decision point."""
        token = "|".join([str(self.seed), str(spec_index), *map(str, parts)])
        digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0**64

    def _fires(self, spec_index: int, spec: FaultSpec, name: str) -> bool:
        """Whether ``spec`` fires for document ``name`` under this seed."""
        if not fnmatch.fnmatch(name, spec.match):
            return False
        if spec.rate >= 1.0:
            return True
        return self._roll(spec_index, name) < spec.rate

    def before_document(self, name: str, attempt: int) -> None:
        """Injection hook run just before a document is disambiguated.

        Raises :class:`InjectedFault` for matching ``raise`` schedules
        (respecting ``max_attempt``) and sleeps for matching ``slow``
        schedules.  A no-op when nothing matches.
        """
        for spec_index, spec in enumerate(self.specs):
            if not self._fires(spec_index, spec, name):
                continue
            if spec.max_attempt is not None and attempt > spec.max_attempt:
                continue  # flaky-then-recover: later attempts succeed
            if spec.kind == "raise":
                raise InjectedFault(
                    f"injected fault for {name!r} (attempt {attempt}, "
                    f"seed {self.seed}, spec {spec_index})",
                    transient=spec.transient,
                )
            if spec.kind == "exit":
                import multiprocessing

                if multiprocessing.parent_process() is not None:
                    os._exit(17)  # a real crash: no finally, no atexit
                raise InjectedFault(
                    f"injected exit for {name!r} demoted to raise in the "
                    f"parent process (attempt {attempt}, seed {self.seed})",
                    transient=spec.transient,
                )
            if spec.kind == "kill_midbatch":
                import multiprocessing

                sigkill = getattr(signal, "SIGKILL", None)
                target = os.getpid()
                if multiprocessing.parent_process() is not None:
                    # A pool worker reached the fault first: kill the
                    # batch parent (the point of the schedule), then
                    # die — the gate's crash must take the journal
                    # buffers down, not just one worker.
                    target = os.getppid()
                if sigkill is not None:
                    os.kill(target, sigkill)
                os._exit(17)  # platforms without SIGKILL, and workers
            if spec.kind == "slow" and spec.delay_s > 0:
                time.sleep(spec.delay_s)

    def bitrot_shard(self, path: "str | os.PathLike[str]") -> "int | None":
        """Flip one seeded byte of an ``RXPD`` shard file, in place.

        Applies the first matching ``bitrot`` schedule (patterns match
        the shard's basename); the flip position is deterministic in
        the seed and the file size, and always lands past the 32-byte
        disk header so attach-time magic checks still pass and the
        *scrubber's* body CRC is what must catch it.  Returns the
        flipped offset, or ``None`` when no schedule fires.
        """
        path = os.fspath(path)
        base = os.path.basename(path)
        header = 32  # RXPD disk header; flip inside the body
        for spec_index, spec in enumerate(self.specs):
            if spec.kind != "bitrot":
                continue
            if not fnmatch.fnmatch(base, spec.match):
                continue
            if spec.rate < 1.0 and self._roll(spec_index, base) >= spec.rate:
                continue
            size = os.path.getsize(path)
            if size <= header + 1:
                return None
            pos = header + int(
                self._roll(spec_index, "pos", size) * (size - header)
            )
            pos = min(pos, size - 1)
            with open(path, "r+b") as fh:
                fh.seek(pos)
                byte = fh.read(1)
                fh.seek(pos)
                fh.write(bytes([byte[0] ^ 0xFF]))
            return pos
        return None

    @property
    def corrupts_packed(self) -> bool:
        """True when any schedule can corrupt the packed payload."""
        return any(spec.kind == "corrupt-packed" for spec in self.specs)

    def corrupt_bytes(self, blob: bytes) -> bytes:
        """Return ``blob`` with a deterministically chosen byte flipped.

        The flip lands past the 15-byte ``RXPK`` header so decoding
        fails with a typed checksum/structure error rather than a bad
        magic number; the position depends only on the seed and the
        payload length.  Returns ``blob`` unchanged when no
        ``corrupt-packed`` schedule fires.
        """
        for spec_index, spec in enumerate(self.specs):
            if spec.kind != "corrupt-packed":
                continue
            if spec.rate < 1.0 and self._roll(spec_index, "packed") >= spec.rate:
                continue
            header = 15  # RXPK magic + <HBII> header; flip inside the body
            if len(blob) <= header + 1:
                return blob
            pos = header + int(self._roll(spec_index, "pos", len(blob)) * (len(blob) - header))
            pos = min(pos, len(blob) - 1)
            mutated = bytearray(blob)
            mutated[pos] ^= 0xFF
            return bytes(mutated)
        return blob


class FaultyKernel:
    """Packed-index proxy whose ``pair_terms`` raises for the first N calls.

    Used by ladder tests: scoring hits the injected
    :class:`~repro.runtime.pack.PackedIndexCRCError`, the ladder drops
    one rung, and the test asserts the final result is bit-identical to
    a fault-free run.  All other attribute access delegates to the
    wrapped index, so the proxy is a drop-in ``index=`` argument.
    """

    def __init__(
        self,
        inner: Any,
        fail_calls: int = 1,
        exc_type: type[BaseException] | None = None,
        method: str = "pair_terms",
    ) -> None:
        if exc_type is None:
            from .pack import PackedIndexCRCError

            exc_type = PackedIndexCRCError
        self._inner = inner
        self._remaining = fail_calls
        self._exc_type = exc_type
        self._method = method

    def __getattr__(self, name: str) -> Any:
        target = getattr(self._inner, name)
        if name != self._method:
            return target

        def _guarded(*args: Any, **kwargs: Any) -> Any:
            if self._remaining > 0:
                self._remaining -= 1
                raise self._exc_type(f"injected fault in {self._method}")
            return target(*args, **kwargs)

        return _guarded


class BrokenMemo:
    """Sphere-memo proxy whose ``signature`` raises for the first N calls.

    Exercises the memoized → fresh rung: the XSDF ladder disables the
    memo, rescoring proceeds uncached, and results stay bit-identical.
    """

    def __init__(self, inner: Any, fail_calls: int = 1) -> None:
        self._inner = inner
        self._remaining = fail_calls

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def signature(self, sphere: Any) -> Any:
        """Delegate to the wrapped memo after the injected failures."""
        if self._remaining > 0:
            self._remaining -= 1
            raise RuntimeError("injected memo signature fault")
        return self._inner.signature(sphere)
