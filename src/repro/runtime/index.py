"""Precomputed semantic-network indexes for the disambiguation runtime.

Knowledge-based WSD spends almost all of its time in repeated taxonomy
walks: hypernym closures, depths, lowest common subsumers, information
content, and gloss token bags are recomputed for the same concepts over
and over (conceptual-density and conceptual-distance methods amortize
exactly these via precomputed taxonomy indexes — Agirre & Rigau).
:class:`SemanticIndex` performs every walk **once** per network and
serves the results from flat dictionaries.

The index is a pure read-through accelerator: the similarity measures
in :mod:`repro.similarity` accept it via an optional ``index=``
parameter and must return **bit-identical** scores with and without it.
To guarantee that, the index stores the very objects the network's own
queries produce (closure dicts in BFS order, depths from the same
root-distance formula, LCS via the same tie-break expression) rather
than re-deriving them with different algorithms.

Build it once per (frozen) network and share it freely — all tables are
treated as immutable after construction::

    index = SemanticIndex(network)
    sim = CombinedSimilarity(network, index=index)
    xsdf = XSDF(network, config, index=index)
"""

from __future__ import annotations

import time

from ..semnet.ic import InformationContent
from ..semnet.network import SemanticNetwork, UnknownConceptError
from ..similarity.gloss import extended_gloss_tokens


class SemanticIndex:
    """Immutable precomputed lookup tables over one semantic network.

    Parameters
    ----------
    network:
        The network to index.  It must not be mutated afterwards (the
        index holds no invalidation hook — it is a snapshot).
    include_gloss:
        Precompute extended-Lesk gloss token bags (True by default;
        disable for taxonomic-only workloads to save build time).
    ic_smoothing:
        Laplace smoothing for the lazily built information-content
        table, matching :class:`repro.semnet.ic.InformationContent`'s
        default so indexed Lin/Resnik scores equal the uncached ones.
    """

    def __init__(
        self,
        network: SemanticNetwork,
        include_gloss: bool = True,
        ic_smoothing: float = 1.0,
    ):
        start = time.perf_counter()
        self.network = network
        self._ic_smoothing = ic_smoothing
        # Ancestor closures with distances, exactly as the network's BFS
        # produces them (dict insertion order matters for the LCS
        # tie-break below — do not rebuild these with another traversal).
        self._ancestors: dict[str, dict[str, int]] = {}
        for concept in network:
            self._ancestors[concept.id] = network.hypernym_closure(concept.id)
        # Depth table: minimal root distance within the closure — the
        # same formula as SemanticNetwork.depth.
        self._depths: dict[str, int] = {}
        for cid, closure in self._ancestors.items():
            root_distances = [
                dist for ancestor, dist in closure.items()
                if not network.hypernyms(ancestor)
            ]
            self._depths[cid] = min(root_distances) if root_distances else 0
        self.max_taxonomy_depth = max(self._depths.values(), default=1)
        self._lcs_memo: dict[tuple[str, str], str | None] = {}
        self._lcs_memo_hits = 0
        self._lcs_memo_misses = 0
        self._gloss_bags: dict[str, list[str]] | None = None
        if include_gloss:
            self._gloss_bags = {
                concept.id: extended_gloss_tokens(network, concept.id)
                for concept in network
            }
        self._ic: InformationContent | None = None
        self.build_seconds = time.perf_counter() - start

    # -- taxonomy ------------------------------------------------------------

    def hypernym_closure(self, concept_id: str) -> dict[str, int]:
        """Ancestor -> minimal IS-A distance (includes self at 0)."""
        try:
            return self._ancestors[concept_id]
        except KeyError:
            raise UnknownConceptError(concept_id) from None

    def depth(self, concept_id: str) -> int:
        """Minimal number of IS-A edges from a taxonomy root."""
        try:
            return self._depths[concept_id]
        except KeyError:
            raise UnknownConceptError(concept_id) from None

    def lowest_common_subsumer(self, a: str, b: str) -> str | None:
        """Deepest shared IS-A ancestor, memoized per ordered pair.

        Replicates ``SemanticNetwork.lowest_common_subsumer`` exactly —
        the same intersection construction and tie-break key over the
        same closure dicts — so tie decisions are bit-identical.
        """
        key = (a, b)
        try:
            lcs = self._lcs_memo[key]
        except KeyError:
            pass
        else:
            self._lcs_memo_hits += 1
            return lcs
        self._lcs_memo_misses += 1
        closure_a = self.hypernym_closure(a)
        closure_b = self.hypernym_closure(b)
        shared = set(closure_a) & set(closure_b)
        if not shared:
            self._lcs_memo[key] = None
            return None
        depths = self._depths
        lcs = max(
            shared,
            key=lambda cid: (
                depths[cid], -closure_a[cid] - closure_b[cid], cid
            ),
        )
        self._lcs_memo[key] = lcs
        return lcs

    def taxonomic_distance(self, a: str, b: str) -> int | None:
        """Shortest IS-A path length between two concepts (via the LCS)."""
        lcs = self.lowest_common_subsumer(a, b)
        if lcs is None:
            return None
        return self.hypernym_closure(a)[lcs] + self.hypernym_closure(b)[lcs]

    # -- information content -------------------------------------------------

    @property
    def ic(self) -> InformationContent:
        """The network's information-content table (built on first use)."""
        if self._ic is None:
            self._ic = InformationContent(
                self.network, smoothing=self._ic_smoothing
            )
        return self._ic

    # -- gloss bags ----------------------------------------------------------

    def gloss_bag(self, concept_id: str) -> list[str]:
        """Precomputed extended-Lesk token bag of one concept."""
        if self._gloss_bags is None:
            raise RuntimeError(
                "index was built with include_gloss=False; "
                "gloss bags are unavailable"
            )
        try:
            return self._gloss_bags[concept_id]
        except KeyError:
            raise UnknownConceptError(concept_id) from None

    # -- observability -------------------------------------------------------

    def stats(self) -> dict[str, int | float | str]:
        """Size/build statistics for reports and benchmarks.

        Counts are ints, ``build_seconds`` is a float, ``backing`` a
        string; the LCS-memo hit/miss counters make index-layer caching
        observable alongside the runtime's LRU caches.
        """
        return {
            "concepts": len(self._ancestors),
            # Dict tables always live on this process's heap — reported
            # so stats() is shape-compatible with PackedIndex.stats(),
            # whose tables may be shm- or mmap-backed.
            "backing": "heap",
            "ancestor_entries": sum(
                len(closure) for closure in self._ancestors.values()
            ),
            "lcs_memo_pairs": len(self._lcs_memo),
            "lcs_memo_hits": self._lcs_memo_hits,
            "lcs_memo_misses": self._lcs_memo_misses,
            "gloss_bags": (
                len(self._gloss_bags) if self._gloss_bags is not None else 0
            ),
            "max_taxonomy_depth": self.max_taxonomy_depth,
            "build_seconds": round(self.build_seconds, 6),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SemanticIndex({self.network.name!r}, "
            f"{len(self._ancestors)} concepts)"
        )
