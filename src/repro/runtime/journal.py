"""Append-only, CRC-framed outcome journal (WAL) for batch jobs.

A ``repro batch`` run that dies mid-way today loses every completed
document.  The journal makes batch work *crash-recoverable*: as each
document's final :class:`~repro.runtime.executor.BatchRecord` lands in
the parent (through the executor's ``record_hook``), one self-delimiting
frame is appended to the journal file.  ``repro batch --resume`` replays
the journal, skips the documents it proves complete, scores only the
remainder, and emits output **byte-identical** to an uninterrupted run
— the CI chaos gate SIGKILLs a batch subprocess mid-run and asserts
exactly that.

Frame format (all little-endian)::

    +--------+------------+-------------+----------------------+
    | b"RXJF"| crc32(body)| body length | body (canonical JSON)|
    |  4 B   |    4 B     |     4 B     |      length B        |
    +--------+------------+-------------+----------------------+

Every frame is written with **one** ``os.write`` on an unbuffered file
object, so a crash (even ``kill -9``) can tear at most the final frame
— and a torn tail is detected by the length/CRC check and dropped at
replay, never mistaken for a completed document.  Durability is
fsync-batched: the OS has the bytes after every append (which is what
survives a process kill), and ``fsync`` runs every ``fsync_every``
frames plus on :meth:`JournalWriter.close` (which is what survives a
power cut).

The first frame is a **meta** frame stamping the run's config and
network fingerprints; ``--resume`` refuses a journal written under a
different configuration or network, because replaying those records
would violate byte-identity.

Outcome frames are keyed by ``(name, sha256(xml))`` — editing a
document's content invalidates its journal entry, so a resumed run
re-scores it instead of replaying a stale result.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import struct
import zlib
from typing import Any

#: Journal frame header: magic, CRC-32 of the body, body length.
_FRAME = struct.Struct("<4sII")

#: Frame magic ("RXJF": Repro XML Journal Frame).
_MAGIC = b"RXJF"

#: Bump when the frame payload schema changes incompatibly.
JOURNAL_VERSION = 1


class JournalError(ValueError):
    """Raised for unreadable, mismatched, or malformed journals."""


def document_digest(xml: str) -> str:
    """The content half of a journal entry key: SHA-256 of the text.

    Keying entries by ``(name, digest)`` means a document edited
    between the crash and the resume is re-scored, never replayed.
    """
    return hashlib.sha256(xml.encode("utf-8")).hexdigest()


def _encode_frame(payload: dict) -> bytes:
    """One self-delimiting frame: header + canonical JSON body."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _FRAME.pack(_MAGIC, zlib.crc32(body), len(body)) + body


class JournalWriter:
    """Appends outcome frames to a journal file as documents complete.

    ``meta`` (config/network fingerprints) is stamped as the first
    frame of a fresh journal; opening with ``resume=True`` appends to
    an existing file instead (the meta frame is already there — the
    reader, not the writer, checks it).  The file object is unbuffered,
    so every :meth:`append` hands the OS one complete frame in one
    write; ``fsync`` is batched every ``fsync_every`` frames.
    """

    def __init__(
        self,
        path: "str | os.PathLike[str]",
        meta: "dict | None" = None,
        fsync_every: int = 16,
        resume: bool = False,
    ) -> None:
        if fsync_every < 1:
            raise JournalError("fsync_every must be >= 1")
        self.path = os.fspath(path)
        self._fsync_every = fsync_every
        self._pending = 0
        self.appended = 0
        existing = (
            resume and os.path.exists(self.path)
            and os.path.getsize(self.path) > 0
        )
        self._fh = open(self.path, "ab" if resume else "wb", buffering=0)
        if not existing:
            payload = {"kind": "meta", "version": JOURNAL_VERSION}
            payload.update(meta or {})
            self._write_frame(payload)
            self.flush()

    def _write_frame(self, payload: dict) -> None:
        self._fh.write(_encode_frame(payload))
        self._pending += 1

    def append(self, record: Any, doc_digest: str) -> None:
        """Journal one final :class:`BatchRecord` (completion order).

        ``doc_digest`` is :func:`document_digest` of the document's
        text.  The stored ``record`` dict is exactly the record's JSONL
        payload, so replay re-emits the byte-identical line.
        """
        payload: dict = {
            "kind": "outcome",
            "doc_sha": doc_digest,
            "record": record.to_dict(),
        }
        outcome = getattr(record, "outcome", None)
        if outcome is not None:
            payload["outcome"] = outcome.to_dict()
        self._write_frame(payload)
        self.appended += 1
        if self._pending >= self._fsync_every:
            self.flush()

    def flush(self) -> None:
        """Force the journal to stable storage (``fsync``)."""
        if not self._fh.closed:
            os.fsync(self._fh.fileno())
        self._pending = 0

    def close(self) -> None:
        """Flush and close the journal file (idempotent)."""
        if self._fh.closed:
            return
        self.flush()
        self._fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclasses.dataclass
class JournalReplay:
    """One journal, decoded: its meta frame and the salvaged outcomes.

    ``truncated_bytes`` counts trailing bytes that did not form a valid
    frame — the torn tail of a crash mid-write.  A clean journal has
    zero; a nonzero value is expected after ``kill -9`` and means the
    final in-flight document was *not* journaled (it re-scores on
    resume — correct, just not free).
    """

    path: str
    meta: dict
    entries: list[dict]
    truncated_bytes: int = 0

    def completed(self) -> "dict[tuple[str, str], dict]":
        """Outcome entries keyed by ``(name, doc_sha)``.

        Later frames win (a document journaled twice — e.g. resumed
        twice — replays its most recent outcome).
        """
        done: dict[tuple[str, str], dict] = {}
        for entry in self.entries:
            done[(entry["record"]["name"], entry["doc_sha"])] = entry
        return done

    def matches(self, config_fingerprint: str,
                network_fingerprint: str) -> bool:
        """Whether this journal was written under the given run identity."""
        return (
            self.meta.get("config") == config_fingerprint
            and self.meta.get("network") == network_fingerprint
        )


def read_journal(path: "str | os.PathLike[str]") -> JournalReplay:
    """Decode a journal, salvaging every intact frame.

    Decoding stops at the first frame that fails its magic, length, or
    CRC check: everything before it is trusted (each earlier frame
    proved itself), everything from it on is reported as
    ``truncated_bytes``.  Raises :class:`JournalError` when the file is
    missing, is empty, or does not start with a valid meta frame of a
    supported version.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from None
    frames: list[dict] = []
    offset = 0
    while len(data) - offset >= _FRAME.size:
        magic, crc, length = _FRAME.unpack_from(data, offset)
        body_start = offset + _FRAME.size
        if (
            magic != _MAGIC
            or length > len(data) - body_start
        ):
            break
        body = data[body_start:body_start + length]
        if zlib.crc32(body) != crc:
            break
        try:
            payload = json.loads(body)
        except ValueError:  # lint: disable=silent-degrade  # torn/corrupt tail is surfaced via truncated_bytes
            break
        if not isinstance(payload, dict):
            break
        frames.append(payload)
        offset = body_start + length
    if not frames:
        raise JournalError(
            f"journal {path} holds no valid frames "
            f"(empty file or corrupt head)"
        )
    meta = frames[0]
    if meta.get("kind") != "meta":
        raise JournalError(f"journal {path} does not start with a meta frame")
    if meta.get("version") != JOURNAL_VERSION:
        raise JournalError(
            f"journal {path} has version {meta.get('version')!r}; "
            f"this build reads version {JOURNAL_VERSION}"
        )
    entries = [
        frame for frame in frames[1:]
        if frame.get("kind") == "outcome" and "record" in frame
    ]
    return JournalReplay(
        path=path,
        meta=meta,
        entries=entries,
        truncated_bytes=len(data) - offset,
    )
