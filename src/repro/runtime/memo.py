"""Cross-document sphere memoization: skip whole repeated disambiguations.

The Table 3 corpora are structurally repetitive — thousands of nodes
across documents present the *identical disambiguation situation*: same
target label, same sphere neighborhood (Definitions 4-5), same
configuration, same network.  Disambiguation is a pure function of that
situation, so its outcome (the chosen sense plus every per-candidate
score) can be memoized once and replayed for every recurrence, across
documents and for the lifetime of a batch process.

:class:`SphereMemo` implements the memo as a bounded LRU keyed by a
canonical, hash-stable **sphere signature**:

* the *frozen config fingerprint* — a digest of every
  :class:`~repro.core.config.XSDFConfig` field (weights, radius,
  approach, measure mix, ...), built once by :func:`config_fingerprint`;
* the *frozen network fingerprint* —
  :meth:`repro.semnet.network.SemanticNetwork.fingerprint`, a content
  digest that changes whenever the network mutates;
* the target's ``(label, tokens)`` pair;
* the **ordered** sphere member sequence as ``(distance, label,
  tokens)`` triples.

The member sequence is deliberately *ordered*, not a sorted multiset:
float accumulation follows sphere order (the concept-based sum and the
context-vector dict are both built member-by-member), and float addition
is commutative but not associative — two spheres with equal multisets
but different orders may produce different low-order bits.  Keying on
the exact order is what makes memoized results **bit-identical** to
fresh computation (see docs/architecture.md for the full argument).

Every value folded into the signature must come from the frozen
fingerprint helpers or from the sphere itself — reading live config or
network attributes inside the signature builder is how stale-memo bugs
are born, and reprolint's ``memo-key-purity`` rule rejects it.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from .cache import LRUCache

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..core.config import XSDFConfig
    from ..core.sphere import Sphere

#: Default bound for the sphere-result memo.  Entries are small (a
#: handful of tuples), but result payloads are bigger than similarity
#: floats, so the default sits between the pair cache (65536) and the
#: document cache (1024).
DEFAULT_MEMO_SIZE = 8192

#: A memoized disambiguation outcome: ``(chosen, combined_items,
#: concept_items, context_items)`` — the argmax candidate plus the three
#: per-candidate score tables as hashable item tuples.
MemoEntry = tuple[
    tuple[str, ...],
    tuple[tuple[tuple[str, ...], float], ...],
    tuple[tuple[tuple[str, ...], float], ...],
    tuple[tuple[tuple[str, ...], float], ...],
]


def config_fingerprint(config: "XSDFConfig") -> str:
    """Frozen digest of every scoring-relevant configuration field.

    Computed **once** when a memo is created and never re-read on the
    hot path; folding the digest (rather than live attribute reads)
    into sphere signatures is the ``memo-key-purity`` contract.  All
    fields join the digest — including ones that cannot change scores,
    like the ambiguity weights — because over-keying only costs a few
    hashed bytes while under-keying serves stale results.
    """
    policy = config.distance_policy
    if policy is not None and not isinstance(policy, str):
        # Policy objects have no canonical repr; freeze their type and
        # constructor state.  (The sphere signature already captures the
        # policy's *effect* — member distances — so this is belt and
        # braces against two policies producing equal cost bands.)
        policy = (
            type(policy).__qualname__,
            tuple(sorted(vars(policy).items())) if vars(policy) else (),
        )
    weights = config.similarity_weights
    ambiguity = config.ambiguity_weights
    canonical = (
        config.sphere_radius,
        config.approach.value,
        config.concept_weight,
        config.context_weight,
        (weights.edge, weights.node, weights.gloss),
        config.vector_measure,
        config.include_values,
        config.strip_target_dimension,
        (ambiguity.polysemy, ambiguity.depth, ambiguity.density),
        config.ambiguity_threshold,
        policy,
    )
    return hashlib.blake2b(
        repr(canonical).encode("utf-8"), digest_size=16
    ).hexdigest()


def sphere_signature(
    sphere: "Sphere", config_fp: str, network_fp: str
) -> bytes:
    """Canonical hash-stable key of one disambiguation situation.

    ``config_fp`` and ``network_fp`` must be the **frozen** digests from
    :func:`config_fingerprint` and ``SemanticNetwork.fingerprint()`` —
    never live attribute reads (the ``memo-key-purity`` rule).  The
    member sequence is folded in sphere order, which is exactly the
    order every float accumulation follows; see the module docstring
    for why sorting it would break bit-identity.
    """
    center = sphere.center
    payload = (
        config_fp,
        network_fp,
        center.label,
        center.tokens,
        tuple(
            (member.distance, member.node.label, member.node.tokens)
            for member in sphere.members
        ),
    )
    # One repr of the nested tuple stays in C; per-member hasher updates
    # cost ~3x as much on repetitive corpora.
    return hashlib.blake2b(
        repr(payload).encode("utf-8"), digest_size=24
    ).digest()


class SphereMemo:
    """Bounded LRU of disambiguation outcomes keyed by sphere signature.

    One instance is shared across every document an :class:`~repro.core
    .framework.XSDF` disambiguates — serially for the process lifetime,
    or per worker under :class:`~repro.runtime.executor.BatchExecutor`
    (whose parent merges worker hit/miss statistics back).  Because the
    signature covers the complete input of the disambiguation function,
    replayed entries are bit-identical to fresh computation; the memo
    can never change a result, only skip recomputing it.

    Parameters
    ----------
    config:
        The run configuration; frozen into a fingerprint at
        construction time.
    network_fingerprint:
        The network's content digest
        (:meth:`~repro.semnet.network.SemanticNetwork.fingerprint`).
    maxsize:
        LRU bound (:data:`DEFAULT_MEMO_SIZE` by default; ``None`` for
        unbounded).
    """

    def __init__(
        self,
        config: "XSDFConfig",
        network_fingerprint: str,
        maxsize: int | None = DEFAULT_MEMO_SIZE,
    ):
        self._config_fp = config_fingerprint(config)
        self._network_fp = network_fingerprint
        self._cache: LRUCache = LRUCache(maxsize=maxsize)

    @property
    def cache(self) -> LRUCache:
        """The underlying LRU (for metrics registration and tests)."""
        return self._cache

    def signature(self, sphere: "Sphere") -> bytes:
        """The canonical signature of one sphere under this memo's
        frozen config/network fingerprints."""
        return sphere_signature(sphere, self._config_fp, self._network_fp)

    def get(self, signature: bytes) -> MemoEntry | None:
        """The memoized entry for ``signature``, or None (counted)."""
        return self._cache.get(signature)

    def put(self, signature: bytes, entry: MemoEntry) -> None:
        """Memoize one disambiguation outcome."""
        self._cache[signature] = entry

    def stats(self) -> dict[str, float]:
        """JSON-ready hit/miss/eviction counters snapshot."""
        return self._cache.stats()

    def __len__(self) -> int:
        return len(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SphereMemo({len(self._cache)} entries, "
            f"hit_rate={self._cache.hit_rate:.2f})"
        )
