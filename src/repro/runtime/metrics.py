"""Lightweight runtime instrumentation: counters, stage timers, reports.

The pipeline stays zero-overhead by default: :class:`repro.core
.framework.XSDF` holds ``metrics = None`` and every instrumentation site
is guarded by a plain ``is not None`` check, so uninstrumented runs
execute exactly the seed code path.  Passing a :class:`MetricsRegistry`
turns on per-stage latency timers (parse, select, sphere, score),
document/target counters, and cache-statistics collection, all
exportable as a JSON report for dashboards or the perf trajectory
(``BENCH_runtime.json``).

Timers use ``time.perf_counter`` and cost one function call plus a dict
update per observation — cheap enough to leave on in batch jobs.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cache import LRUCache


class StageTimer:
    """Accumulated wall-clock time of one named pipeline stage."""

    __slots__ = ("name", "count", "total")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        """Record one more observation of this stage."""
        self.count += 1
        self.total += seconds

    @property
    def mean(self) -> float:
        """Average seconds per observation (0.0 before any)."""
        return self.total / self.count if self.count else 0.0

    def stats(self) -> dict[str, float]:
        """JSON-ready counters snapshot for this stage."""
        return {
            "count": self.count,
            "total_s": round(self.total, 6),
            "mean_ms": round(self.mean * 1e3, 6),
        }


class MetricsRegistry:
    """Counters + timers + cache stats for one runtime session.

    All mutation methods are cheap and allocation-free on the hot path;
    aggregation happens only in :meth:`report`.
    """

    #: Cap on retained structured events; older runs never grow unbounded.
    MAX_EVENTS = 256

    def __init__(self):
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, StageTimer] = {}
        self._caches: dict[str, "LRUCache"] = {}
        self._events: list[dict] = []
        self._events_dropped = 0
        self._started = time.perf_counter()

    # -- counters ------------------------------------------------------------

    def count(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the named counter (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0.0) + value

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never touched)."""
        return self._counters.get(name, 0.0)

    # -- gauges --------------------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time level (``shm_bytes``, queue depths, ...).

        Unlike counters, gauges overwrite: the snapshot reports the
        latest value, not an accumulation.
        """
        self._gauges[name] = value

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        """Current value of a gauge (``default`` when never set)."""
        return self._gauges.get(name, default)

    # -- events --------------------------------------------------------------

    def event(self, name: str, **fields) -> None:
        """Record one structured event (degradation, fault, retry, ...).

        Events are the audit trail of the resilience layer: every
        fallback, retry, and ladder rung emits one so "it silently
        degraded" can never happen again (the ``silent-degrade`` lint
        rule enforces this).  The list is capped at :data:`MAX_EVENTS`;
        overflow is counted, not silently discarded.
        """
        if len(self._events) >= self.MAX_EVENTS:
            self._events_dropped += 1
            return
        self._events.append({"event": name, **fields})

    def events(self, name: str | None = None) -> list[dict]:
        """Recorded events, optionally filtered by event name."""
        if name is None:
            return list(self._events)
        return [e for e in self._events if e["event"] == name]

    # -- timers --------------------------------------------------------------

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager timing one observation of stage ``name``."""
        stage = self._timers.get(name)
        if stage is None:
            stage = self._timers[name] = StageTimer(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            stage.observe(time.perf_counter() - start)

    def observe(self, name: str, seconds: float) -> None:
        """Record an externally measured duration for stage ``name``."""
        stage = self._timers.get(name)
        if stage is None:
            stage = self._timers[name] = StageTimer(name)
        stage.observe(seconds)

    def stage(self, name: str) -> StageTimer | None:
        """The named timer, if any observation was recorded."""
        return self._timers.get(name)

    # -- cache attachment ----------------------------------------------------

    def register_cache(self, name: str, cache: "LRUCache") -> None:
        """Attach a cache whose stats join the report snapshot."""
        self._caches[name] = cache

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready snapshot of everything observed so far, safe for
        concurrent readers.

        ``throughput.docs_per_s`` is derived from the ``documents``
        counter over the registry's lifetime — the number a capacity
        plan actually needs.  Every container is copied through an
        atomic ``.copy()``/``list(...)`` before iteration, so a reader
        on another thread (the server answering ``GET /metrics`` while
        its scoring thread observes timers) never races a concurrent
        insert into a ``RuntimeError``.  Values are read without a
        lock: a snapshot is a consistent *shape*, and individual
        counters are monotone, so the worst case is a reading one
        observation stale.
        """
        elapsed = time.perf_counter() - self._started
        counters = self._counters.copy()
        docs = counters.get("documents", 0.0)
        return {
            "elapsed_s": round(elapsed, 6),
            "counters": counters,
            "gauges": self._gauges.copy(),
            "events": [dict(e) for e in list(self._events)],
            "events_dropped": self._events_dropped,
            "stages": {
                name: timer.stats()
                for name, timer in list(self._timers.items())
            },
            "caches": {
                name: cache.stats()
                for name, cache in list(self._caches.items())
            },
            "throughput": {
                "documents": docs,
                "docs_per_s": round(docs / elapsed, 6) if elapsed > 0 else 0.0,
            },
        }

    def report(self) -> dict:
        """Alias of :meth:`snapshot` (the report is the snapshot)."""
        return self.snapshot()

    def to_json(self, indent: int = 1) -> str:
        """The report serialized as JSON text."""
        return json.dumps(self.report(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        """Write the JSON report to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")


def batch_summary(report: dict, n_records: int, n_failures: int) -> str:
    """The one-line human summary of a batch/serve metrics report.

    Shared by ``repro batch`` (its end-of-run stderr line) and the
    server's logs so the two surfaces describe a run in one vocabulary:
    document/failure counts, throughput from the ``batch`` stage timer,
    memo traffic (serial runs surface it through the registered LRU,
    parallel runs through the merged worker counters), pruning, retry,
    and degradation counts.  Pure function of the report snapshot —
    callers append surface-specific suffixes (quarantine paths, ...)
    themselves.
    """
    batch = report.get("stages", {}).get("batch", {})
    rate = n_records / batch["total_s"] if batch.get("total_s") else 0.0
    summary = (
        f"{n_records} documents, {n_failures} failed, "
        f"{rate:.1f} docs/s"
    )
    counters = report.get("counters", {})
    caches = report.get("caches", {})
    memo_hits = counters.get("memo_hits", 0) or caches.get(
        "sphere_memo", {}
    ).get("hits", 0)
    memo_misses = counters.get("memo_misses", 0) or caches.get(
        "sphere_memo", {}
    ).get("misses", 0)
    pruned = counters.get("candidates_pruned", 0)
    if memo_hits or memo_misses or pruned:
        summary += (
            f", memo {int(memo_hits)}/{int(memo_hits + memo_misses)} hits"
            f", {int(pruned)} candidates pruned"
        )
    retried = int(counters.get("outcome_retried", 0))
    degradations = int(sum(
        value for key, value in counters.items()
        if key.startswith("degrade_")
    ))
    if retried:
        summary += f", {retried} retried"
    if degradations:
        summary += f", {degradations} degradations"
    return summary
