"""Packed semantic kernels: an interned, flat-array semantic index.

:class:`repro.runtime.index.SemanticIndex` already amortizes taxonomy
walks, but its tables are string-keyed dicts of dicts: every lookup
hashes concept-id strings, every gloss comparison equality-tests token
strings, and pickling the index for a worker pool ships a fat object
graph.  :class:`PackedIndex` interns concept ids and gloss tokens to
dense integers and lays the same tables out as flat ``array`` buffers
(CSR-style offsets + values):

* **ancestor closures** — one ``(concept, distance)`` run per concept,
  in the exact BFS order the network produces;
* **depth / information-content tables** — one slot per concept;
* **gloss bags** — token-id sequences (order preserved: the extended
  Lesk overlap is sequence-sensitive) plus per-concept token *sets* for
  an exact-match quick reject.

The similarity kernels (:meth:`pair_terms` for the edge/node measures,
:meth:`lesk_similarity` for gloss overlap) consume the packed tables
directly and are **bit-identical** to the unpacked scores — the parity
suite in ``tests/similarity`` pins ``==`` equality for all 8 measures.
The lowest-common-subsumer tie-break is the same total order the
network and :class:`SemanticIndex` use: ``(depth, -distance-sum,
concept-id)``.

The index also carries a compact binary codec (:meth:`to_bytes` /
:meth:`from_bytes`, wired into pickling via ``__getstate__`` /
``__setstate__``), so :class:`repro.runtime.executor.BatchExecutor`
builds the index **once in the parent** and ships a small byte buffer
to pool workers — worker initialization decodes a buffer instead of
re-walking the whole network::

    packed = PackedIndex(network)
    blob = packed.to_bytes()            # small, checksummed, versioned
    clone = PackedIndex.from_bytes(blob)
    xsdf = XSDF(network, config, index=packed)   # drop-in index=
"""

from __future__ import annotations

import mmap
import os
import struct
import sys
import time
import zlib
from array import array
from typing import Any, Iterable

from ..semnet.ic import InformationContent
from ..semnet.network import SemanticNetwork, UnknownConceptError
from .index import SemanticIndex

_MAGIC = b"RXPK"
_VERSION = 1

#: Shared-memory layout magic.  Unlike the ``RXPK`` pickle codec the
#: shared form is **uncompressed and 8-byte aligned** so attached
#: processes can serve the CSR tables directly as ``memoryview`` casts
#: over the segment — zero decode, zero copy.
_SHARED_MAGIC = b"RXPS"

#: Shared header: magic, version, byteorder flag, pad, CRC-32 of the
#: body, body length.  16 bytes, so the body starts 8-byte aligned.
_SHARED_HEADER = struct.Struct("<4sHBxII")

#: On-disk shard magic (``repro pack`` output).  The body is the exact
#: ``RXPS`` shared layout — uncompressed, 8-byte aligned sections — so
#: a file can be memory-mapped and served through the same zero-copy
#: attach path workers use for shared-memory segments.
_DISK_MAGIC = b"RXPD"

#: Disk header: the shared header fields plus a 16-byte network
#: fingerprint prefix (SHA-256 of the source network, zero when
#: unknown) so attaching processes can refuse a shard built from a
#: different network.  32 bytes, so the body stays 8-byte aligned.
_DISK_HEADER = struct.Struct("<4sHBxII16s")

#: Attribute names materialized on demand for mmap-attached indexes.
#: Cold attach leaves the string tables undecoded and the per-concept
#: memo lists unallocated (together they are the bulk of attach cost);
#: the first access of any of these materializes them all.
_LAZY_ATTRS = frozenset({
    "_ids", "_id_of", "_tokens", "_depths", "_ic_list",
    "_closures", "_bags", "_bag_sets", "_bag_counts",
})

#: Sentinel distinguishing "no memo entry" from a memoized ``None``.
_MISSING = object()


class PackedIndexError(ValueError):
    """Raised when a packed-index buffer is truncated or corrupted."""


class PackedIndexTruncatedError(PackedIndexError):
    """The buffer ends before the header/body it declares.

    Actionable: the payload was cut short in transit or on disk —
    re-ship or re-serialize it; the bytes that *are* present are intact.
    """


class PackedIndexCRCError(PackedIndexError):
    """The body checksum (or compressed stream) does not match.

    Actionable: the payload is the right length but its content was
    altered — a corrupt write, a bad copy, or injected chaos; rebuild
    the index from the network (the degradation ladder does this
    automatically one rung down).
    """


def _encode_strings(items: Iterable[str]) -> bytes:
    """NUL-join a string table (ids/tokens must not contain NUL)."""
    table = tuple(items)
    if any("\x00" in item for item in table):
        raise PackedIndexError("string table entries must not contain NUL")
    return "\x00".join(table).encode("utf-8")


def _decode_strings(blob: bytes) -> tuple[str, ...]:
    """Inverse of :func:`_encode_strings` (empty blob -> empty table)."""
    if not blob:
        return ()
    return tuple(blob.decode("utf-8").split("\x00"))


def _typecode_of(arr: "array | memoryview") -> str:
    """The element typecode of a flat table (array or memoryview)."""
    code = getattr(arr, "typecode", None)
    if code is None:
        code = arr.format  # a cast memoryview over a shared segment
    return code


def _pack_array(arr: "array | memoryview") -> bytes:
    """Typecode byte + item count + raw buffer for one flat table."""
    return (
        _typecode_of(arr).encode("ascii")
        + struct.pack("<I", len(arr))
        + arr.tobytes()
    )


def _unpack_array(blob: bytes, swap: bool) -> array:
    """Inverse of :func:`_pack_array`; byteswaps on endianness mismatch."""
    if len(blob) < 5:
        raise PackedIndexError("array section truncated")
    typecode = blob[:1].decode("ascii")
    (count,) = struct.unpack_from("<I", blob, 1)
    arr = array(typecode)
    try:
        arr.frombytes(blob[5:])
    except ValueError as exc:
        raise PackedIndexError(f"array section malformed: {exc}") from None
    if len(arr) != count:
        raise PackedIndexError(
            f"array section declares {count} items, holds {len(arr)}"
        )
    if swap:
        arr.byteswap()
    return arr


def _index_typecode(n: int) -> str:
    """Smallest unsigned array typecode that can hold ids ``< n``."""
    return "H" if n <= 0xFFFF else "I"


def _pad8(blob: bytes) -> bytes:
    """``blob`` zero-padded to a multiple of 8 bytes."""
    remainder = len(blob) % 8
    return blob if remainder == 0 else blob + b"\x00" * (8 - remainder)


def _shared_array_section(arr: "array | memoryview") -> bytes:
    """One shared-layout array payload: typecode, pad, count, raw data.

    The 8-byte prologue keeps the raw element data 8-aligned inside an
    8-aligned section, so ``memoryview.cast`` over the attached segment
    serves even ``"d"`` tables without copying.
    """
    return (
        _typecode_of(arr).encode("ascii")
        + b"\x00\x00\x00"
        + struct.pack("<I", len(arr))
        + arr.tobytes()
    )


def _shared_array_view(section: memoryview) -> memoryview:
    """Zero-copy typed view over one shared-layout array payload."""
    if len(section) < 8:
        raise PackedIndexTruncatedError("shared array section truncated")
    typecode = bytes(section[:1]).decode("ascii")
    (count,) = struct.unpack_from("<I", section, 4)
    try:
        itemsize = array(typecode).itemsize
    except ValueError as exc:
        raise PackedIndexError(
            f"shared array section malformed: {exc}"
        ) from None
    data = section[8 : 8 + count * itemsize]
    if len(data) != count * itemsize:
        raise PackedIndexTruncatedError(
            f"shared array section declares {count} items, "
            f"holds {len(data) // max(1, itemsize)}"
        )
    return data.cast(typecode)


class _SharedAttachment:
    """Owns one worker-side attachment to a published shared segment.

    Wraps the raw ``mmap`` adopted out of a ``SharedMemory`` object
    instead of the object itself: ``SharedMemory.__del__`` insists on
    closing its mmap even while table views still point into it, which
    raises ``BufferError`` whenever the garbage collector tears the
    index and its owner down in the wrong order.  A bare ``mmap``'s
    mapping is reference-counted through the exported views, so
    teardown in *any* order is safe, and the attachment fd can be
    closed eagerly (POSIX mappings survive their fd).
    """

    __slots__ = ("name", "_mmap")

    def __init__(self, name: str, mmap_obj: Any):
        self.name = name
        self._mmap = mmap_obj

    @classmethod
    def adopt(cls, shm: Any) -> Any:
        """Take ownership of ``shm``'s mapping, neutering its __del__.

        Returns the attachment owner to thread through
        :meth:`PackedIndex.from_shared_buffer`; falls back to ``shm``
        itself on Python builds whose ``SharedMemory`` lacks the
        private ``_mmap``/``_buf``/``_fd`` slots this relies on.
        """
        mmap_obj = getattr(shm, "_mmap", None)
        if mmap_obj is None:
            return shm
        buf = getattr(shm, "_buf", None)
        if buf is not None:
            buf.release()
        # Neutering the wrapper is the whole point of adoption: its
        # __del__ must find nothing left to close.
        shm._buf = None  # lint: disable=cache-purity
        shm._mmap = None  # lint: disable=cache-purity
        fd = getattr(shm, "_fd", -1)
        if fd >= 0:
            os.close(fd)
            shm._fd = -1  # lint: disable=cache-purity
        return cls(shm.name, mmap_obj)

    @property
    def buf(self) -> memoryview:
        """A fresh view over the adopted mapping."""
        return memoryview(self._mmap)

    def close(self) -> None:
        """Release the mapping once no table views are exported.

        A still-exported view (a caller kept a table slice alive past
        ``release_shared``) makes ``mmap.close`` raise ``BufferError``;
        the mapping is then reclaimed by refcount when the last view
        dies, so swallowing it leaks nothing.
        """
        try:
            self._mmap.close()
        except BufferError:  # lint: disable=silent-degrade  # refcount reclaims the mapping when the last view dies
            pass


class _MmapAttachment:
    """Owns one read-only memory mapping of an ``RXPD`` shard file.

    The mapping is created with ``ACCESS_READ`` so every attaching
    process shares the same physical pages through the OS page cache —
    a second attach costs address space, not resident memory.  The
    backing fd is closed eagerly (POSIX mappings survive their fd);
    :meth:`close` mirrors :class:`_SharedAttachment.close`'s
    BufferError tolerance so teardown order never matters.
    """

    __slots__ = ("path", "size", "_mmap")

    def __init__(self, path: str, mmap_obj: Any, size: int):
        self.path = path
        self.size = size
        self._mmap = mmap_obj

    @property
    def buf(self) -> memoryview:
        """A fresh view over the mapped shard."""
        return memoryview(self._mmap)

    def close(self) -> None:
        """Unmap once no table views are exported (refcount otherwise)."""
        try:
            self._mmap.close()
        except BufferError:  # lint: disable=silent-degrade  # refcount reclaims the mapping when the last view dies
            pass


class PackedIC:
    """Information-content view over a :class:`PackedIndex`.

    Presents the :class:`repro.semnet.ic.InformationContent` query API
    (``ic`` / ``max_ic`` / ``resnik`` / ``lin`` /
    ``jiang_conrath_distance``) served from the packed IC table, with
    the LCS resolved by the packed pair kernel.  Values are the exact
    floats the unpacked table holds, so scores are bit-identical.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "PackedIndex"):
        self._owner = owner

    def ic(self, concept_id: str) -> float:
        """Information content of one concept."""
        owner = self._owner
        return owner._ic_list[owner._intern(concept_id)]

    @property
    def max_ic(self) -> float:
        """Highest finite IC in the network (for normalization)."""
        return self._owner._max_ic

    def resnik(self, a: str, b: str) -> float:
        """IC of the lowest common subsumer (0 when none exists)."""
        terms = self._owner.pair_terms(a, b)
        if terms is None:
            return 0.0
        return self._owner._ic_list[terms[0]]

    def lin(self, a: str, b: str) -> float:
        """Lin similarity ``2*IC(lcs) / (IC(a)+IC(b))`` in [0, 1]."""
        if a == b:
            return 1.0
        denominator = self.ic(a) + self.ic(b)
        if denominator <= 0:
            return 0.0
        return max(0.0, min(1.0, 2.0 * self.resnik(a, b) / denominator))

    def jiang_conrath_distance(self, a: str, b: str) -> float:
        """Jiang-Conrath distance ``IC(a) + IC(b) - 2 * IC(lcs)``."""
        return max(0.0, self.ic(a) + self.ic(b) - 2.0 * self.resnik(a, b))


def _interned_overlap_score(tokens_a: list[int], tokens_b: list[int]) -> float:
    """Greedy extended-Lesk overlap over interned token-id sequences.

    The same procedure as :func:`repro.similarity.gloss
    ._ngram_overlap_score` — repeatedly find the longest common
    contiguous run, score it ``len**2``, remove it from both sides —
    but the DP rows are *sparse*: only positions where the tokens
    actually match are visited (non-match cells are always zero and can
    never beat the running best), and comparisons are int equality
    instead of string equality.  Identical removal sequence, identical
    score, a fraction of the work.
    """
    a = list(tokens_a)
    b = list(tokens_b)
    score = 0.0
    while a and b:
        positions: dict[int, list[int]] = {}
        for j, token in enumerate(b):
            positions.setdefault(token, []).append(j)
        best_len = 0
        best_a = best_b = -1
        prev: dict[int, int] = {}
        for i, token in enumerate(a):
            hits = positions.get(token)
            row: dict[int, int] = {}
            if hits:
                prev_get = prev.get
                for j in hits:
                    length = prev_get(j - 1, 0) + 1
                    row[j] = length
                    if length > best_len:
                        best_len = length
                        best_a = i - length + 1
                        best_b = j - length + 1
            prev = row
        if best_len == 0:
            break
        score += float(best_len * best_len)
        del a[best_a : best_a + best_len]
        del b[best_b : best_b + best_len]
    return score


class PackedIndex:
    """Interned flat-array semantic index with a compact binary codec.

    A drop-in ``index=`` accelerator: pass it wherever a
    :class:`~repro.runtime.index.SemanticIndex` is accepted (the
    similarity measures and :class:`repro.core.framework.XSDF` detect
    it via the ``is_packed`` marker and route through the packed
    kernels).  All scores are bit-identical to the dict-index and
    plain-network paths.

    Parameters
    ----------
    network:
        The network to index (not mutated; the packed tables are a
        snapshot and hold **no** reference to it afterwards, which is
        what keeps the pickled form small).
    include_gloss:
        Pack extended-Lesk gloss token bags (True by default).
    ic_smoothing:
        Laplace smoothing for the information-content table, matching
        :class:`repro.semnet.ic.InformationContent`'s default.
    include_ic:
        Pack the IC table eagerly (True by default) so workers never
        recompute it.  Networks with no frequency mass (possible only
        with ``ic_smoothing=0``) simply omit the table.
    """

    #: Duck-type marker the similarity measures test for (avoids an
    #: import cycle between ``repro.similarity`` and ``repro.runtime``).
    is_packed = True

    #: Path of the ``RXPD`` shard this index was attached from (set by
    #: :meth:`from_mmap`; ``None`` for heap/shm-backed indexes).  The
    #: executor ships this path to pool workers instead of a shared-
    #: memory payload when it is set — the file outlives the parent.
    shard_path: "str | None" = None

    def __init__(
        self,
        network: SemanticNetwork,
        include_gloss: bool = True,
        ic_smoothing: float = 1.0,
        include_ic: bool = True,
    ):
        start = time.perf_counter()
        index = SemanticIndex(
            network, include_gloss=include_gloss, ic_smoothing=ic_smoothing
        )
        self._load_from_semantic_index(index, include_ic=include_ic)
        self.build_seconds = time.perf_counter() - start

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_semantic_index(
        cls, index: SemanticIndex, include_ic: bool = True
    ) -> "PackedIndex":
        """Pack an already-built :class:`SemanticIndex` (shares no state)."""
        start = time.perf_counter()
        packed = cls.__new__(cls)
        packed._load_from_semantic_index(index, include_ic=include_ic)
        packed.build_seconds = time.perf_counter() - start
        return packed

    def _load_from_semantic_index(
        self, index: SemanticIndex, include_ic: bool
    ) -> None:
        """Intern and flatten one SemanticIndex's tables into arrays."""
        network = index.network
        ids = tuple(concept.id for concept in network)
        id_of = {cid: i for i, cid in enumerate(ids)}
        n = len(ids)
        ref_code = _index_typecode(n)

        anc_off = array("I", [0])
        anc_cid = array(ref_code)
        anc_dist = array("I")
        depths = array("I")
        for cid in ids:
            closure = index.hypernym_closure(cid)
            for ancestor, dist in closure.items():
                anc_cid.append(id_of[ancestor])
                anc_dist.append(dist)
            anc_off.append(len(anc_cid))
            depths.append(index.depth(cid))

        tokens: tuple[str, ...] = ()
        gloss_off = gloss_tok = None
        if index._gloss_bags is not None:
            token_of: dict[str, int] = {}
            flat: list[int] = []
            gloss_off = array("I", [0])
            for cid in ids:
                for token in index.gloss_bag(cid):
                    slot = token_of.get(token)
                    if slot is None:
                        slot = len(token_of)
                        token_of[token] = slot
                    flat.append(slot)
                gloss_off.append(len(flat))
            tokens = tuple(token_of)
            gloss_tok = array(_index_typecode(len(tokens)), flat)

        ic_values = None
        max_ic = 1.0
        if include_ic and n:
            try:
                ic = index.ic
            except ValueError:  # lint: disable=silent-degrade  # no frequency mass -> IC table omitted by design
                ic = None  # no frequency mass (only when smoothing == 0)
            if ic is not None:
                ic_values = array("d", (ic.ic(cid) for cid in ids))
                max_ic = ic.max_ic

        self._install_tables(
            ids=ids,
            depths=depths,
            anc_off=anc_off,
            anc_cid=anc_cid,
            anc_dist=anc_dist,
            tokens=tokens,
            gloss_off=gloss_off,
            gloss_tok=gloss_tok,
            ic_values=ic_values,
            max_ic=max_ic,
            max_taxonomy_depth=index.max_taxonomy_depth,
            ic_smoothing=index._ic_smoothing,
        )

    def _install_tables(
        self,
        ids: tuple[str, ...],
        depths: "array | memoryview",
        anc_off: "array | memoryview",
        anc_cid: "array | memoryview",
        anc_dist: "array | memoryview",
        tokens: tuple[str, ...],
        gloss_off: "array | memoryview | None",
        gloss_tok: "array | memoryview | None",
        ic_values: "array | memoryview | None",
        max_ic: float,
        max_taxonomy_depth: int,
        ic_smoothing: float,
    ) -> None:
        """Set serialized tables and (re)initialize derived lazy state.

        Tables may be ``array`` objects (the codec path) or typed
        ``memoryview`` casts over an attached shared-memory segment
        (the zero-copy path) — every kernel consumes them through the
        common slice/``tolist`` surface.
        """
        self._shared_owner: object | None = None
        self._lazy_blobs: tuple | None = None
        self._ids = ids
        self._id_of = {cid: i for i, cid in enumerate(ids)}
        self._depths = depths.tolist()
        self._anc_off = anc_off
        self._anc_cid = anc_cid
        self._anc_dist = anc_dist
        self._tokens = tokens
        self._gloss_off = gloss_off
        self._gloss_tok = gloss_tok
        self._ic_values = ic_values
        self._ic_list = ic_values.tolist() if ic_values is not None else None
        self._install_common(
            n=len(ids),
            max_ic=max_ic,
            max_taxonomy_depth=max_taxonomy_depth,
            ic_smoothing=ic_smoothing,
        )
        self._install_derived(len(ids))

    def _install_lazy_tables(
        self,
        n: int,
        id_blob: memoryview,
        depths: memoryview,
        anc_off: memoryview,
        anc_cid: memoryview,
        anc_dist: memoryview,
        token_blob: memoryview,
        gloss_off: "memoryview | None",
        gloss_tok: "memoryview | None",
        ic_values: "memoryview | None",
        max_ic: float,
        max_taxonomy_depth: int,
        ic_smoothing: float,
    ) -> None:
        """Install mmap-backed tables without decoding the string blobs.

        Cold attach must stay O(section count), not O(concepts): the
        id/token tables (the bulk of the body) are kept as raw views and
        decoded on the first access of any interned-string surface
        (see ``__getattr__``); the CSR arrays are served as typed views
        directly, exactly like the shared-memory path.
        """
        self._shared_owner = None
        self._lazy_blobs = (id_blob, token_blob, depths, ic_values)
        self._anc_off = anc_off
        self._anc_cid = anc_cid
        self._anc_dist = anc_dist
        self._gloss_off = gloss_off
        self._gloss_tok = gloss_tok
        self._ic_values = ic_values
        self._install_common(
            n=n,
            max_ic=max_ic,
            max_taxonomy_depth=max_taxonomy_depth,
            ic_smoothing=ic_smoothing,
        )

    def _install_common(
        self,
        n: int,
        max_ic: float,
        max_taxonomy_depth: int,
        ic_smoothing: float,
    ) -> None:
        """(Re)initialize scalar metadata and the pair-kernel memo."""
        self._n = n
        self._max_ic = max_ic
        self.max_taxonomy_depth = max_taxonomy_depth
        self._ic_smoothing = ic_smoothing
        self.build_seconds = 0.0
        self._pair_memo: dict[
            tuple[int, int], tuple[int, int, int, int] | None
        ] = {}
        self._pair_hits = 0
        self._pair_misses = 0
        self._ic_view: PackedIC | None = None

    def _install_derived(self, n: int) -> None:
        """Allocate the per-concept memo lists (never serialized)."""
        self._closures: list[dict[int, int] | None] = [None] * n
        self._bags: list[list[int] | None] = [None] * n
        self._bag_sets: list[frozenset[int] | None] = [None] * n
        self._bag_counts: list[dict[int, int] | None] = [None] * n

    def __getattr__(self, name: str):
        """Materialize the deferred string tables on first access.

        Only fires for attributes missing from the instance dict: an
        mmap attach leaves ``_ids``/``_id_of``/``_tokens``/``_depths``/
        ``_ic_list`` unset so cold attach never pays the decode; the
        first interned lookup decodes them all at once, after which
        attribute access is back on the zero-overhead fast path.
        """
        if name in _LAZY_ATTRS and self.__dict__.get("_lazy_blobs") is not None:
            self._materialize_lazy()
            return self.__dict__[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def _materialize_lazy(self) -> None:
        """Decode the deferred id/token/depth/IC tables (idempotent)."""
        lazy = self.__dict__.get("_lazy_blobs")
        if lazy is None:
            return
        id_blob, token_blob, depths, ic_values = lazy
        ids = _decode_strings(bytes(id_blob))
        if len(ids) != self._n:
            raise PackedIndexError(
                f"id table declares {self._n} concepts, holds {len(ids)}"
            )
        self._ids = ids
        self._id_of = {cid: i for i, cid in enumerate(ids)}
        self._tokens = _decode_strings(bytes(token_blob))
        self._depths = depths.tolist()
        self._ic_list = ic_values.tolist() if ic_values is not None else None
        self._install_derived(self._n)
        self._lazy_blobs = None

    # -- interning ------------------------------------------------------------

    def _intern(self, concept_id: str) -> int:
        """Dense integer id of one concept (raises on unknown ids)."""
        try:
            return self._id_of[concept_id]
        except KeyError:
            raise UnknownConceptError(concept_id) from None

    def concept_id(self, slot: int) -> str:
        """The concept-id string a dense integer id stands for."""
        return self._ids[slot]

    def __len__(self) -> int:
        # ``_n`` (not ``len(self._ids)``) so sizing an mmap-attached
        # index never forces the deferred string decode.
        return self._n

    # -- packed kernels -------------------------------------------------------

    def _closure(self, slot: int) -> dict[int, int]:
        """Interned ancestor->distance map of one concept (memoized)."""
        closure = self._closures[slot]
        if closure is None:
            lo, hi = self._anc_off[slot], self._anc_off[slot + 1]
            closure = dict(
                zip(self._anc_cid[lo:hi].tolist(),
                    self._anc_dist[lo:hi].tolist())
            )
            self._closures[slot] = closure
        return closure

    def pair_terms(
        self, a: str, b: str
    ) -> tuple[int, int, int, int] | None:
        """``(lcs_slot, depth(lcs), dist(a, lcs), dist(b, lcs))`` or None.

        One memoized lookup serves every taxonomic measure: Wu-Palmer
        reads all four terms, path/Leacock-Chodorow read the distance
        sum, and the IC measures read the LCS slot.  The memo is keyed
        on the unordered pair (the LCS and its tie-break are symmetric
        in ``a`` and ``b``), halving its footprint.
        """
        ia = self._intern(a)
        ib = self._intern(b)
        if ia <= ib:
            key = (ia, ib)
            swapped = False
        else:
            key = (ib, ia)
            swapped = True
        terms = self._pair_memo.get(key, _MISSING)
        if terms is _MISSING:
            self._pair_misses += 1
            terms = self._compute_pair(key[0], key[1])
            self._pair_memo[key] = terms
        else:
            self._pair_hits += 1
        if terms is None or not swapped:
            return terms
        lcs, depth, dist_a, dist_b = terms
        return (lcs, depth, dist_b, dist_a)

    def _compute_pair(
        self, ia: int, ib: int
    ) -> tuple[int, int, int, int] | None:
        """Scan the smaller closure for the max-key shared ancestor.

        The selection key is the total order ``(depth, -distance-sum,
        concept-id)`` — exactly the tie-break the network and
        :class:`SemanticIndex` use, so all three paths agree bit-for-bit.
        """
        closure_a = self._closure(ia)
        closure_b = self._closure(ib)
        if len(closure_a) <= len(closure_b):
            outer, other, outer_is_a = closure_a, closure_b, True
        else:
            outer, other, outer_is_a = closure_b, closure_a, False
        depths = self._depths
        other_get = other.get
        best = -1
        best_depth = -1
        best_sum = 0
        best_out = best_oth = 0
        for cid, dist_out in outer.items():
            dist_oth = other_get(cid)
            if dist_oth is None:
                continue
            depth = depths[cid]
            total = dist_out + dist_oth
            if best < 0 or depth > best_depth or (
                depth == best_depth and (
                    total < best_sum or (
                        total == best_sum
                        and self._ids[cid] > self._ids[best]
                    )
                )
            ):
                best = cid
                best_depth = depth
                best_sum = total
                best_out = dist_out
                best_oth = dist_oth
        if best < 0:
            return None
        if outer_is_a:
            return (best, best_depth, best_out, best_oth)
        return (best, best_depth, best_oth, best_out)

    def _bag(self, slot: int) -> list[int]:
        """Interned gloss token sequence of one concept (memoized)."""
        bag = self._bags[slot]
        if bag is None:
            assert self._gloss_off is not None and self._gloss_tok is not None
            lo, hi = self._gloss_off[slot], self._gloss_off[slot + 1]
            bag = self._gloss_tok[lo:hi].tolist()
            self._bags[slot] = bag
        return bag

    def _bag_set(self, slot: int) -> frozenset[int]:
        """Distinct token ids of one gloss bag (for the quick reject)."""
        bag_set = self._bag_sets[slot]
        if bag_set is None:
            bag_set = frozenset(self._bag(slot))
            self._bag_sets[slot] = bag_set
        return bag_set

    def _bag_count(self, slot: int) -> dict[int, int]:
        """Token-id multiplicity map of one gloss bag (memoized)."""
        counts = self._bag_counts[slot]
        if counts is None:
            counts = {}
            for token in self._bag(slot):
                counts[token] = counts.get(token, 0) + 1
            self._bag_counts[slot] = counts
        return counts

    def lesk_upper_bound(self, a: str, b: str) -> float:
        """Cheap exact upper bound on :meth:`lesk_similarity`.

        Let ``m`` be the multiset-intersection size of the two token
        bags (``sum_t min(count_a(t), count_b(t))``).  Every maximal
        common run the greedy overlap removes is made of matched
        tokens, and runs are removed from both sides, so the removed
        lengths sum to at most ``m``; the raw score ``sum len_k**2``
        is therefore at most ``(sum len_k)**2 <= m**2``.  In floats:
        ``raw`` is an exactly-represented integer ``<= m**2``,
        ``sqrt`` is correctly rounded and ``m**2`` is a perfect
        square, so ``fl(sqrt(raw)) <= m`` exactly; division and
        ``min`` are monotone.  Hence ``min(1, m/shorter)`` bounds the
        true similarity in *float* arithmetic, which is what exact
        pruning requires.
        """
        if self._gloss_off is None:
            raise RuntimeError(
                "index was packed with include_gloss=False; "
                "gloss kernels are unavailable"
            )
        ia = self._intern(a)
        ib = self._intern(b)
        if ia == ib:
            return 1.0
        bag_a = self._bag(ia)
        bag_b = self._bag(ib)
        if not bag_a or not bag_b:
            return 0.0
        if self._bag_set(ia).isdisjoint(self._bag_set(ib)):
            return 0.0
        counts_a = self._bag_count(ia)
        counts_b = self._bag_count(ib)
        if len(counts_a) > len(counts_b):
            counts_a, counts_b = counts_b, counts_a
        other_get = counts_b.get
        m = 0
        for token, count in counts_a.items():
            other = other_get(token)
            if other is not None:
                m += count if count < other else other
        shorter = min(len(bag_a), len(bag_b))
        return min(1.0, m / shorter)

    def lesk_similarity(self, a: str, b: str) -> float:
        """Normalized extended-Lesk gloss overlap over interned tokens.

        Bit-identical to :class:`repro.similarity.gloss
        .ExtendedLeskSimilarity`'s unpacked arithmetic: disjoint token
        sets short-circuit to the same 0.0 the full DP would produce.
        """
        if self._gloss_off is None:
            raise RuntimeError(
                "index was packed with include_gloss=False; "
                "gloss kernels are unavailable"
            )
        ia = self._intern(a)
        ib = self._intern(b)
        if ia == ib:
            return 1.0
        bag_a = self._bag(ia)
        bag_b = self._bag(ib)
        if not bag_a or not bag_b:
            return 0.0
        if self._bag_set(ia).isdisjoint(self._bag_set(ib)):
            return 0.0
        raw = _interned_overlap_score(bag_a, bag_b)
        shorter = min(len(bag_a), len(bag_b))
        return min(1.0, (raw ** 0.5) / shorter)

    def ic_value(self, concept_id: str) -> float:
        """Packed information content of one concept (table lookup)."""
        ic_list = self._ic_list
        if ic_list is None:
            raise RuntimeError(
                "index was packed with include_ic=False; "
                "the IC table is unavailable"
            )
        return ic_list[self._intern(concept_id)]

    def ic_of_slot(self, slot: int) -> float:
        """Packed information content of one interned concept slot."""
        ic_list = self._ic_list
        if ic_list is None:
            raise RuntimeError(
                "index was packed with include_ic=False; "
                "the IC table is unavailable"
            )
        return ic_list[slot]

    # -- SemanticIndex-compatible query surface -------------------------------

    @property
    def has_gloss(self) -> bool:
        """True when gloss bags were packed."""
        return self._gloss_off is not None

    @property
    def has_ic(self) -> bool:
        """True when the information-content table was packed."""
        return self._ic_values is not None

    @property
    def ic(self) -> PackedIC:
        """Information-content view (API-compatible with the IC table)."""
        if self._ic_list is None:
            raise RuntimeError(
                "index was packed with include_ic=False; "
                "the IC table is unavailable"
            )
        if self._ic_view is None:
            self._ic_view = PackedIC(self)
        return self._ic_view

    def hypernym_closure(self, concept_id: str) -> dict[str, int]:
        """Ancestor -> minimal IS-A distance (includes self at 0)."""
        slot = self._intern(concept_id)
        lo, hi = self._anc_off[slot], self._anc_off[slot + 1]
        ids = self._ids
        return {
            ids[cid]: dist
            for cid, dist in zip(self._anc_cid[lo:hi], self._anc_dist[lo:hi])
        }

    def depth(self, concept_id: str) -> int:
        """Minimal number of IS-A edges from a taxonomy root."""
        return self._depths[self._intern(concept_id)]

    def lowest_common_subsumer(self, a: str, b: str) -> str | None:
        """Deepest shared IS-A ancestor under the total tie-break order."""
        terms = self.pair_terms(a, b)
        if terms is None:
            return None
        return self._ids[terms[0]]

    def taxonomic_distance(self, a: str, b: str) -> int | None:
        """Shortest IS-A path length between two concepts (via the LCS)."""
        terms = self.pair_terms(a, b)
        if terms is None:
            return None
        return terms[2] + terms[3]

    def gloss_bag(self, concept_id: str) -> list[str]:
        """Extended-Lesk token bag of one concept (reconstructed strings)."""
        if self._gloss_off is None:
            raise RuntimeError(
                "index was packed with include_gloss=False; "
                "gloss bags are unavailable"
            )
        tokens = self._tokens
        return [tokens[t] for t in self._bag(self._intern(concept_id))]

    # -- codec ----------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize every table to one checksummed, versioned buffer.

        The payload is zlib-compressed (interned int runs compress
        well); the header carries magic, format version, byte order,
        and a CRC-32 of the compressed body so truncation and
        corruption are detected before any table is trusted.
        """
        flags = (1 if self._gloss_off is not None else 0) | (
            2 if self._ic_values is not None else 0
        )
        meta = struct.pack(
            "<IIBdd",
            len(self._ids),
            self.max_taxonomy_depth,
            flags,
            self._ic_smoothing,
            self._max_ic,
        )
        empty = array("I")
        sections = [
            meta,
            _encode_strings(self._ids),
            _pack_array(array("I", self._depths)),
            _pack_array(self._anc_off),
            _pack_array(self._anc_cid),
            _pack_array(self._anc_dist),
            _encode_strings(self._tokens),
            _pack_array(self._gloss_off if self._gloss_off is not None
                        else empty),
            _pack_array(self._gloss_tok if self._gloss_tok is not None
                        else empty),
            _pack_array(self._ic_values if self._ic_values is not None
                        else array("d")),
        ]
        body = b"".join(
            struct.pack("<I", len(section)) + section for section in sections
        )
        packed_body = zlib.compress(body, 6)
        header = _MAGIC + struct.pack(
            "<HBII",
            _VERSION,
            0 if sys.byteorder == "little" else 1,
            zlib.crc32(packed_body),
            len(packed_body),
        )
        return header + packed_body

    @classmethod
    def from_bytes(cls, data: bytes) -> "PackedIndex":
        """Decode a :meth:`to_bytes` buffer into a ready-to-query index.

        Raises a typed :class:`PackedIndexError`:
        :class:`PackedIndexTruncatedError` when the buffer is shorter
        than the header or the body it declares,
        :class:`PackedIndexCRCError` when the checksum or compressed
        stream is corrupt, and the base class for bad magic,
        unsupported versions, and inconsistent tables.
        """
        packed = cls.__new__(cls)
        packed._decode(data)
        return packed

    def _decode(self, data: bytes) -> None:
        """Populate this instance from one serialized buffer."""
        start = time.perf_counter()
        header_size = len(_MAGIC) + struct.calcsize("<HBII")
        if len(data) < header_size:
            raise PackedIndexTruncatedError(
                "buffer shorter than the packed header"
            )
        if data[: len(_MAGIC)] != _MAGIC:
            raise PackedIndexError("not a packed-index buffer (bad magic)")
        version, byteorder, crc, body_len = struct.unpack_from(
            "<HBII", data, len(_MAGIC)
        )
        if version != _VERSION:
            raise PackedIndexError(
                f"unsupported packed-index version {version}"
            )
        packed_body = data[header_size:]
        if len(packed_body) < body_len:
            raise PackedIndexTruncatedError(
                f"buffer truncated: header declares {body_len} body bytes, "
                f"{len(packed_body)} present"
            )
        packed_body = packed_body[:body_len]
        if zlib.crc32(packed_body) != crc:
            raise PackedIndexCRCError("buffer corrupted (checksum mismatch)")
        try:
            body = zlib.decompress(packed_body)
        except zlib.error as exc:
            raise PackedIndexCRCError(f"buffer corrupted: {exc}") from None
        sections: list[bytes] = []
        offset = 0
        while offset < len(body):
            if offset + 4 > len(body):
                raise PackedIndexError("section length truncated")
            (length,) = struct.unpack_from("<I", body, offset)
            offset += 4
            if offset + length > len(body):
                raise PackedIndexError("section payload truncated")
            sections.append(body[offset : offset + length])
            offset += length
        if len(sections) != 10:
            raise PackedIndexError(
                f"expected 10 sections, found {len(sections)}"
            )
        swap = (byteorder == 1) != (sys.byteorder == "big")
        try:
            n, max_depth, flags, smoothing, max_ic = struct.unpack(
                "<IIBdd", sections[0]
            )
        except struct.error as exc:
            raise PackedIndexError(f"meta section malformed: {exc}") from None
        ids = _decode_strings(sections[1])
        if len(ids) != n:
            raise PackedIndexError(
                f"id table declares {n} concepts, holds {len(ids)}"
            )
        depths = _unpack_array(sections[2], swap)
        anc_off = _unpack_array(sections[3], swap)
        anc_cid = _unpack_array(sections[4], swap)
        anc_dist = _unpack_array(sections[5], swap)
        if len(anc_off) != n + 1 or len(depths) != n:
            raise PackedIndexError("taxonomy tables inconsistent")
        if len(anc_cid) != len(anc_dist) or (
            n and anc_off[-1] != len(anc_cid)
        ):
            raise PackedIndexError("ancestor tables inconsistent")
        tokens = _decode_strings(sections[6])
        gloss_off = gloss_tok = None
        if flags & 1:
            gloss_off = _unpack_array(sections[7], swap)
            gloss_tok = _unpack_array(sections[8], swap)
            if len(gloss_off) != n + 1 or (
                n and gloss_off[-1] != len(gloss_tok)
            ):
                raise PackedIndexError("gloss tables inconsistent")
        ic_values = None
        if flags & 2:
            ic_values = _unpack_array(sections[9], swap)
            if len(ic_values) != n:
                raise PackedIndexError("IC table inconsistent")
        self._install_tables(
            ids=ids,
            depths=depths,
            anc_off=anc_off,
            anc_cid=anc_cid,
            anc_dist=anc_dist,
            tokens=tokens,
            gloss_off=gloss_off,
            gloss_tok=gloss_tok,
            ic_values=ic_values,
            max_ic=max_ic,
            max_taxonomy_depth=max_depth,
            ic_smoothing=smoothing,
        )
        self.build_seconds = time.perf_counter() - start

    # -- shared-memory layout -------------------------------------------------

    def to_shared_payload(self) -> bytes:
        """Serialize every table to the uncompressed shared layout.

        Unlike :meth:`to_bytes` (zlib-compressed, decode-on-attach)
        this layout is built for :meth:`from_shared_buffer`: sections
        are 8-byte aligned and raw, so an attached process serves the
        CSR tables as ``memoryview`` casts straight over the segment.
        The header carries a CRC-32 of the whole body, verified once at
        attach time, so a corrupted segment fails with the same typed
        errors as a corrupted codec buffer.
        """
        body = self._shared_body()
        header = _SHARED_HEADER.pack(
            _SHARED_MAGIC,
            _VERSION,
            0 if sys.byteorder == "little" else 1,
            zlib.crc32(body),
            len(body),
        )
        return header + body

    def _shared_body(self) -> bytes:
        """The uncompressed 8-aligned section body (RXPS and RXPD)."""
        flags = (1 if self._gloss_off is not None else 0) | (
            2 if self._ic_values is not None else 0
        )
        meta = struct.pack(
            "<IIBdd",
            len(self._ids),
            self.max_taxonomy_depth,
            flags,
            self._ic_smoothing,
            self._max_ic,
        )
        empty = array("I")
        sections = [
            meta,
            _encode_strings(self._ids),
            _shared_array_section(array("I", self._depths)),
            _shared_array_section(self._anc_off),
            _shared_array_section(self._anc_cid),
            _shared_array_section(self._anc_dist),
            _encode_strings(self._tokens),
            _shared_array_section(self._gloss_off
                                  if self._gloss_off is not None else empty),
            _shared_array_section(self._gloss_tok
                                  if self._gloss_tok is not None else empty),
            _shared_array_section(self._ic_values
                                  if self._ic_values is not None
                                  else array("d")),
        ]
        return b"".join(
            _pad8(struct.pack("<II", len(section), 0) + section)
            for section in sections
        )

    # -- on-disk shard layout -------------------------------------------------

    def to_disk_payload(self, fingerprint: str | None = None) -> bytes:
        """Serialize every table to the ``RXPD`` on-disk shard layout.

        The body is byte-identical to :meth:`to_shared_payload`'s; only
        the header differs: the disk header additionally records the
        first 16 bytes of the source network's SHA-256 fingerprint (all
        zeros when unknown) so :meth:`from_mmap` can refuse a shard
        built from a different network.
        """
        digest = b"\x00" * 16
        if fingerprint:
            try:
                digest = bytes.fromhex(fingerprint)[:16]
            except ValueError:
                raise PackedIndexError(
                    "fingerprint must be a hex digest"
                ) from None
            if len(digest) < 16:
                digest = digest.ljust(16, b"\x00")
        body = self._shared_body()
        header = _DISK_HEADER.pack(
            _DISK_MAGIC,
            _VERSION,
            0 if sys.byteorder == "little" else 1,
            zlib.crc32(body),
            len(body),
            digest,
        )
        return header + body

    @classmethod
    def from_shared_buffer(
        cls, buf: "memoryview | bytes", owner: object | None = None
    ) -> "PackedIndex":
        """Attach zero-copy to a :meth:`to_shared_payload` buffer.

        The flat tables become typed ``memoryview`` casts over ``buf``
        — no table is decoded or copied.  ``owner`` (typically the
        ``SharedMemory`` object backing ``buf``) is kept referenced for
        the index's lifetime so the mapping cannot be closed while
        kernels still read through it; :meth:`release_shared` detaches.
        Raises the same typed :class:`PackedIndexError` family as
        :meth:`from_bytes` on truncated or corrupted segments.
        """
        packed = cls.__new__(cls)
        packed._attach_shared(memoryview(buf), owner)
        return packed

    def _attach_shared(self, mv: memoryview, owner: object | None) -> None:
        """Populate this instance with views over one shared buffer."""
        start = time.perf_counter()
        mv = mv.cast("B")
        if len(mv) < _SHARED_HEADER.size:
            raise PackedIndexTruncatedError(
                "buffer shorter than the shared packed header"
            )
        magic, version, byteorder, crc, body_len = _SHARED_HEADER.unpack_from(
            mv, 0
        )
        if magic != _SHARED_MAGIC:
            raise PackedIndexError(
                "not a shared packed-index buffer (bad magic)"
            )
        if version != _VERSION:
            raise PackedIndexError(
                f"unsupported shared packed-index version {version}"
            )
        if byteorder != (0 if sys.byteorder == "little" else 1):
            # Shared memory never crosses hosts, so a byte-order
            # mismatch is corruption, not a portability case.
            raise PackedIndexError(
                "shared packed-index buffer has a foreign byte order"
            )
        if _SHARED_HEADER.size + body_len > len(mv):
            raise PackedIndexTruncatedError(
                f"buffer truncated: header declares {body_len} body bytes, "
                f"{len(mv) - _SHARED_HEADER.size} present"
            )
        body = mv[_SHARED_HEADER.size : _SHARED_HEADER.size + body_len]
        if zlib.crc32(body) != crc:
            raise PackedIndexCRCError(
                "shared buffer corrupted (checksum mismatch)"
            )
        self._attach_body(body, owner, lazy=False)
        self.build_seconds = time.perf_counter() - start

    def _attach_body(
        self, body: memoryview, owner: object | None, lazy: bool
    ) -> None:
        """Install table views over one shared/disk section body.

        ``lazy=False`` (the shared-memory path) decodes the string
        tables eagerly, exactly as before; ``lazy=True`` (the mmap
        path) defers them so cold attach touches only the section
        prologues — a handful of pages regardless of shard size.
        """
        body_len = len(body)
        sections: list[memoryview] = []
        offset = 0
        while offset < body_len:
            if offset + 8 > body_len:
                raise PackedIndexTruncatedError("section length truncated")
            (length,) = struct.unpack_from("<I", body, offset)
            offset += 8
            if offset + length > body_len:
                raise PackedIndexTruncatedError("section payload truncated")
            sections.append(body[offset : offset + length])
            offset += (length + 7) & ~7
        if len(sections) != 10:
            raise PackedIndexError(
                f"expected 10 sections, found {len(sections)}"
            )
        try:
            n, max_depth, flags, smoothing, max_ic = struct.unpack(
                "<IIBdd", sections[0]
            )
        except struct.error as exc:
            raise PackedIndexError(f"meta section malformed: {exc}") from None
        depths = _shared_array_view(sections[2])
        anc_off = _shared_array_view(sections[3])
        anc_cid = _shared_array_view(sections[4])
        anc_dist = _shared_array_view(sections[5])
        if len(anc_off) != n + 1 or len(depths) != n:
            raise PackedIndexError("taxonomy tables inconsistent")
        if len(anc_cid) != len(anc_dist) or (
            n and anc_off[-1] != len(anc_cid)
        ):
            raise PackedIndexError("ancestor tables inconsistent")
        gloss_off = gloss_tok = None
        if flags & 1:
            gloss_off = _shared_array_view(sections[7])
            gloss_tok = _shared_array_view(sections[8])
            if len(gloss_off) != n + 1 or (
                n and gloss_off[-1] != len(gloss_tok)
            ):
                raise PackedIndexError("gloss tables inconsistent")
        ic_values = None
        if flags & 2:
            ic_values = _shared_array_view(sections[9])
            if len(ic_values) != n:
                raise PackedIndexError("IC table inconsistent")
        if lazy:
            self._install_lazy_tables(
                n=n,
                id_blob=sections[1],
                depths=depths,
                anc_off=anc_off,
                anc_cid=anc_cid,
                anc_dist=anc_dist,
                token_blob=sections[6],
                gloss_off=gloss_off,
                gloss_tok=gloss_tok,
                ic_values=ic_values,
                max_ic=max_ic,
                max_taxonomy_depth=max_depth,
                ic_smoothing=smoothing,
            )
        else:
            ids = _decode_strings(bytes(sections[1]))
            if len(ids) != n:
                raise PackedIndexError(
                    f"id table declares {n} concepts, holds {len(ids)}"
                )
            tokens = _decode_strings(bytes(sections[6]))
            self._install_tables(
                ids=ids,
                depths=depths,
                anc_off=anc_off,
                anc_cid=anc_cid,
                anc_dist=anc_dist,
                tokens=tokens,
                gloss_off=gloss_off,
                gloss_tok=gloss_tok,
                ic_values=ic_values,
                max_ic=max_ic,
                max_taxonomy_depth=max_depth,
                ic_smoothing=smoothing,
            )
        self._shared_owner = owner

    @classmethod
    def from_mmap(
        cls,
        path: "str | os.PathLike[str]",
        verify: bool = False,
        expect_fingerprint: str | None = None,
    ) -> "PackedIndex":
        """Attach zero-copy to an ``RXPD`` shard file on disk.

        The file is memory-mapped read-only and the CSR tables become
        typed ``memoryview`` casts over the mapping — no decode, no
        copy, and every process attaching the same shard shares the
        same physical pages through the OS page cache.  Cold attach is
        O(section count): the id/token string tables stay undecoded
        until first use, so attaching a 100k-concept shard touches a
        handful of pages.

        ``verify=True`` additionally checks the body CRC-32 (paging in
        the whole shard — the write-time default trusts the filesystem
        the way the shm path trusts the kernel, because unlike a shm
        publish/attach pair the file was already CRC-stamped by
        :meth:`to_disk_payload` and validated structurally here).
        ``expect_fingerprint`` (a network SHA-256 hex digest) raises
        when the shard records a different source network.  Raises
        ``FileNotFoundError``/``OSError`` for missing/unmappable files
        and the typed :class:`PackedIndexError` family for truncated or
        corrupted shards.
        """
        path = os.fspath(path)
        with open(path, "rb") as fh:
            size = os.fstat(fh.fileno()).st_size
            if size < _DISK_HEADER.size:
                raise PackedIndexTruncatedError(
                    "shard file shorter than the RXPD header"
                )
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        owner = _MmapAttachment(path, mapped, size)
        try:
            start = time.perf_counter()
            mv = owner.buf.cast("B")
            magic, version, byteorder, crc, body_len, digest = (
                _DISK_HEADER.unpack_from(mv, 0)
            )
            if magic != _DISK_MAGIC:
                raise PackedIndexError("not an RXPD shard file (bad magic)")
            if version != _VERSION:
                raise PackedIndexError(
                    f"unsupported shard version {version}"
                )
            if byteorder != (0 if sys.byteorder == "little" else 1):
                raise PackedIndexError(
                    "shard file has a foreign byte order"
                )
            if _DISK_HEADER.size + body_len > size:
                raise PackedIndexTruncatedError(
                    f"shard truncated: header declares {body_len} body "
                    f"bytes, {size - _DISK_HEADER.size} present"
                )
            if expect_fingerprint is not None and digest != b"\x00" * 16:
                expected = bytes.fromhex(expect_fingerprint)[:16]
                if digest[: len(expected)] != expected:
                    raise PackedIndexError(
                        "shard was packed from a different network "
                        "(fingerprint mismatch)"
                    )
            body = mv[_DISK_HEADER.size : _DISK_HEADER.size + body_len]
            if verify and zlib.crc32(body) != crc:
                raise PackedIndexCRCError(
                    "shard corrupted (checksum mismatch)"
                )
            packed = cls.__new__(cls)
            packed._attach_body(body, owner, lazy=True)
            packed.shard_path = path
            packed.build_seconds = time.perf_counter() - start
            return packed
        except BaseException:  # lint: disable=broad-except  # close-and-reraise cleanup, not a handler
            owner.close()
            raise

    @classmethod
    def from_shared(cls, name: str) -> "PackedIndex":
        """Attach to a published shared-memory segment by name.

        This is the worker-side entry point of the zero-copy shipping
        path: the parent publishes :meth:`to_shared_payload` into a
        ``multiprocessing.shared_memory`` segment once, and every
        worker attaches by name instead of decoding a pickled payload.
        The returned index owns its attachment (the ``SharedMemory``
        object rides along as the buffer owner); the *segment* stays
        owned by the publisher.  Raises ``FileNotFoundError`` when no
        such segment exists and the typed :class:`PackedIndexError`
        family when its content is corrupt.
        """
        import multiprocessing
        from multiprocessing import resource_tracker, shared_memory

        shm = shared_memory.SharedMemory(name=name)
        # Attaching registered the segment with a resource tracker as if
        # we owned it; the publisher owns the unlink.  Whether to
        # deregister the borrow depends on *whose* tracker that was:
        # fork children inherit the publisher's tracker process, so the
        # register was an idempotent re-add of the publisher's own entry
        # and unregistering here would delete it (the publisher's later
        # unlink then KeyErrors inside the tracker).  Spawn children run
        # their own tracker, which really would unlink a segment it does
        # not own at exit — there the borrow must be deregistered.
        try:
            start_method = multiprocessing.get_start_method(allow_none=True)
        except (ValueError, RuntimeError):  # lint: disable=silent-degrade  # exotic context; treat as unknown method
            start_method = None
        borrowed_tracker = (
            multiprocessing.parent_process() is not None
            and start_method != "fork"
        )
        if borrowed_tracker:
            unregister = getattr(resource_tracker, "unregister", None)
            if unregister is not None:
                unregister(getattr(shm, "_name", None) or shm.name,
                           "shared_memory")
        owner = _SharedAttachment.adopt(shm)
        try:
            return cls.from_shared_buffer(owner.buf, owner=owner)
        except BaseException:  # lint: disable=broad-except  # close-and-reraise cleanup, not a handler
            close = getattr(owner, "close", None)
            if close is not None:
                close()
            raise

    def release_shared(self) -> None:
        """Detach from the shared segment backing this index, if any.

        The flat tables are materialized into private ``array`` copies
        (the index stays fully usable) and the attachment is closed.
        Safe to call on non-shared indexes (a no-op); idempotent.
        """
        owner = self._shared_owner
        if owner is None:
            return
        # Deferred string tables read through the mapping too — decode
        # them into private objects before the attachment goes away.
        self._materialize_lazy()

        def _materialize(view: "memoryview | None") -> "array | None":
            if view is None or isinstance(view, array):
                return view
            arr = array(_typecode_of(view))
            arr.frombytes(view.tobytes())
            return arr

        self._anc_off = _materialize(self._anc_off)
        self._anc_cid = _materialize(self._anc_cid)
        self._anc_dist = _materialize(self._anc_dist)
        self._gloss_off = _materialize(self._gloss_off)
        self._gloss_tok = _materialize(self._gloss_tok)
        self._ic_values = _materialize(self._ic_values)
        self._shared_owner = None
        close = getattr(owner, "close", None)
        if close is not None:
            close()

    @property
    def is_shared(self) -> bool:
        """True while this index reads through a shared-memory segment."""
        return self._shared_owner is not None

    @property
    def backing(self) -> str:
        """Where the flat tables live: ``mmap``, ``shm``, or ``heap``.

        ``mmap`` — typed views over a memory-mapped ``RXPD`` shard
        file (pages shared with every other attaching process);
        ``shm`` — views over a ``multiprocessing.shared_memory``
        segment (pages shared within one executor's pool); ``heap`` —
        private ``array`` objects owned by this process.
        """
        owner = self._shared_owner
        if owner is None:
            return "heap"
        return "mmap" if isinstance(owner, _MmapAttachment) else "shm"

    def __getstate__(self) -> dict[str, bytes]:
        """Pickle as the compact codec buffer, not the object graph."""
        return {"packed": self.to_bytes()}

    def __setstate__(self, state: dict[str, bytes]) -> None:
        """Rebuild every table from the pickled codec buffer."""
        self._decode(state["packed"])

    # -- observability --------------------------------------------------------

    def stats(self) -> dict[str, int | float | str]:
        """Size/build statistics, including pair-kernel memo hit rates.

        ``backing`` reports where the tables live (``heap``/``shm``/
        ``mmap``).  ``packed_bytes`` is the compact codec size for
        heap-backed indexes; for attached indexes it is the attachment
        size (segment or shard file) — re-compressing a mapped shard
        just to report a number would page the whole thing in.
        """
        if self._shared_owner is None:
            packed_bytes = len(self.to_bytes())
        else:
            packed_bytes = getattr(self._shared_owner, "size", None)
            if packed_bytes is None:
                packed_bytes = len(self._shared_owner.buf)
        return {
            "concepts": self._n,
            "backing": self.backing,
            "ancestor_entries": len(self._anc_cid),
            "gloss_tokens": (
                len(self._gloss_tok) if self._gloss_tok is not None else 0
            ),
            "distinct_tokens": (
                len(self._tokens)
                if self.__dict__.get("_lazy_blobs") is None
                else -1  # undecoded token table (mmap attach, cold)
            ),
            "pair_memo_pairs": len(self._pair_memo),
            "pair_memo_hits": self._pair_hits,
            "pair_memo_misses": self._pair_misses,
            "max_taxonomy_depth": self.max_taxonomy_depth,
            "packed_bytes": packed_bytes,
            "build_seconds": round(self.build_seconds, 6),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedIndex({self._n} concepts, "
            f"{len(self._anc_cid)} ancestor entries)"
        )
