"""Persistent worker-pool runtime: spawn once, serve many batches.

Before this module the :class:`~repro.runtime.executor.BatchExecutor`
created a fresh ``multiprocessing.Pool`` per batch: every batch paid
worker fork + initializer cost (network unpickle, packed-index decode,
cold caches) and re-shipped the packed index to every worker.  The
persistent runtime splits that fixed cost out of the per-batch path:

* :class:`SharedIndexSegment` — the packed index's shared layout
  (:meth:`repro.runtime.pack.PackedIndex.to_shared_payload`) published
  **once** into ``multiprocessing.shared_memory``; workers attach
  zero-copy by name and serve the CSR tables as ``memoryview`` casts
  over the segment.  Reference-counted: the segment is unlinked when
  the last owner releases it, so ``/dev/shm`` never leaks.
* :class:`PersistentPool` — a long-lived worker pool created once per
  executor and reused across batches.  Workers keep their session
  state (attached index, warm :class:`~repro.runtime.memo.SphereMemo`,
  document cache) between batches, so steady-state batches pay only
  document payloads across the process boundary.  A poisoned pool
  (straggler kill, worker crash, machinery fault) is terminated and
  respawned with a bumped *generation* — the executor's stats merge
  uses the generation to keep per-worker counters monotone.

Both degrade gracefully: platforms without ``multiprocessing`` or
POSIX shared memory fall back to the byte-shipping path (the executor
handles ``publish`` / ``ensure`` returning ``None``), and output stays
byte-identical either way.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable

from .metrics import MetricsRegistry


def auto_workers() -> int:
    """The worker count ``--workers auto`` resolves to.

    Prefers ``os.process_cpu_count()`` (Python 3.13+: CPUs usable by
    *this process*), then ``os.sched_getaffinity(0)`` (the affinity
    mask on platforms that pin processes — a container limited to 2 of
    64 cores gets 2, not 64), then ``os.cpu_count()``.  Never less
    than 1.
    """
    process_cpus = getattr(os, "process_cpu_count", None)
    if process_cpus is not None:
        return max(1, process_cpus() or 1)
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            return max(1, len(affinity(0)))
        except OSError:  # lint: disable=silent-degrade  # platform stubs the syscall; fall through to cpu_count
            pass
    return max(1, os.cpu_count() or 1)


def parse_workers(value: "int | str") -> int:
    """Parse a ``--workers`` value: an integer or the literal ``auto``.

    Returns the integer as-is (range validation stays with the
    consumer — :class:`~repro.runtime.executor.BatchExecutor` and
    ``ServerConfig`` both reject ``< 1`` with their own clean error),
    and raises ``ValueError`` for anything that is neither an integer
    nor ``auto``.
    """
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "auto":
            return auto_workers()
        try:
            return int(text)
        except ValueError:
            raise ValueError(
                f"workers must be an integer or 'auto', got {value!r}"
            ) from None
    return int(value)


@dataclass(frozen=True)
class SharedIndexHandle:
    """The tiny picklable ticket a worker needs to attach an index.

    Shipped through the pool initializer instead of the packed payload
    itself: ``name`` addresses the published segment, ``size`` is the
    payload length (observability — the segment knows its own size).
    """

    name: str
    size: int


class SharedIndexSegment:
    """A reference-counted shared-memory segment holding one payload.

    Created by :meth:`publish` with one reference owned by the
    publisher.  Long-lived co-owners (a second executor sharing the
    segment) take :meth:`acquire` / :meth:`release` pairs; the last
    release closes **and unlinks** the segment, so a drained runtime
    leaves no ``/dev/shm`` entry behind.  Workers are *not* co-owners:
    they borrow the mapping via
    :meth:`~repro.runtime.pack.PackedIndex.from_shared` and the OS
    reclaims their attachment when they exit.
    """

    def __init__(self, shm: Any, size: int):
        self._shm = shm
        self.size = size
        self._refs = 1
        self._released = False

    @classmethod
    def publish(
        cls, payload: bytes, metrics: MetricsRegistry | None = None
    ) -> "SharedIndexSegment | None":
        """Publish ``payload`` into a fresh segment.

        Returns ``None`` (with a ``pool_fault`` event) on platforms
        without working POSIX shared memory — the caller falls back to
        shipping bytes through the pool initializer.
        """
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(
                create=True, size=max(1, len(payload))
            )
        except (ImportError, OSError, ValueError) as exc:
            if metrics is not None:
                metrics.event("pool_fault", kind="shm_publish", error=str(exc))
            return None
        shm.buf[: len(payload)] = payload
        return cls(shm, len(payload))

    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self._shm.name

    @property
    def handle(self) -> SharedIndexHandle:
        """The picklable attach ticket for this segment."""
        return SharedIndexHandle(name=self._shm.name, size=self.size)

    @property
    def released(self) -> bool:
        """True once the segment has been closed and unlinked."""
        return self._released

    def acquire(self) -> "SharedIndexSegment":
        """Add one co-owner reference; returns self for chaining."""
        if self._released:
            raise ValueError("shared index segment is already released")
        self._refs += 1
        return self

    def release(self) -> None:
        """Drop one reference; the last one closes and unlinks.

        Idempotent past zero: releasing an already-released segment is
        a no-op, so teardown paths can overlap (explicit ``close()``
        racing the garbage-collection finalizer) without double-free.
        """
        if self._released:
            return
        self._refs -= 1
        if self._refs > 0:
            return
        self._released = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # lint: disable=silent-degrade  # already unlinked by the OS/tracker; nothing leaks
            pass


def shutdown_pool(pool: Any, terminate: bool = False) -> None:
    """Close (or hard-terminate) a raw pool and reap its workers."""
    if terminate and hasattr(pool, "terminate"):
        pool.terminate()
    else:
        pool.close()
    pool.join()


class PersistentPool:
    """A long-lived ``multiprocessing.Pool`` reused across batches.

    The inner pool is spawned lazily by :meth:`ensure` and survives
    between batches; :meth:`restart` tears a poisoned pool down so the
    next :meth:`ensure` respawns it one *generation* up.  Initializer
    arguments are extended with the generation number so workers can
    tag their counter snapshots (the executor keys its merge
    watermarks on ``(generation, pid)``).

    Observability: ``generation`` counts spawns, ``reuse_count``
    counts batches served on an already-warm pool, ``respawns`` counts
    replacement spawns after a poisoning, all mirrored into the
    metrics registry (``pool_spawns`` / ``pool_reuses`` /
    ``worker_respawns``).
    """

    def __init__(
        self,
        processes: int,
        initializer: Callable[..., None],
        initargs: tuple = (),
        metrics: MetricsRegistry | None = None,
    ):
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self.metrics = metrics
        self._pool: Any = None
        self.generation = 0
        self.reuse_count = 0
        self.respawns = 0

    @property
    def alive(self) -> bool:
        """True while an inner pool is spawned and trusted."""
        return self._pool is not None

    def note_batch(self) -> None:
        """Record one batch arriving; a warm pool counts as a reuse."""
        if self._pool is not None:
            self.reuse_count += 1
            if self.metrics is not None:
                self.metrics.count("pool_reuses")

    def ensure(self) -> Any:
        """The live inner pool, spawning one if needed.

        Returns ``None`` (with a ``pool_fault`` event) when the
        platform refuses to create a pool — the executor's circuit
        breaker counts it and eventually drains serially.
        """
        if self._pool is not None:
            return self._pool
        self.generation += 1
        try:
            import multiprocessing

            pool = multiprocessing.Pool(
                processes=self.processes,
                initializer=self._initializer,
                initargs=(*self._initargs, self.generation),
            )
        except (ImportError, OSError, ValueError) as exc:
            if self.metrics is not None:
                self.metrics.event("pool_fault", kind="create", error=str(exc))
            return None
        self._pool = pool
        if self.metrics is not None:
            self.metrics.count("pool_spawns")
        return pool

    def restart(self) -> None:
        """Hard-terminate a poisoned inner pool; ensure() respawns it.

        Worker session state (warm memo, doc cache) dies with the
        workers — correctness never depended on it — while the shared
        index segment stays published, so the respawned generation
        re-attaches instead of re-shipping.
        """
        if self._pool is None:
            return
        shutdown_pool(self._pool, terminate=True)
        self._pool = None
        self.respawns += 1
        if self.metrics is not None:
            self.metrics.count("worker_respawns")

    def close(self, terminate: bool = False) -> None:
        """Shut the inner pool down for good (drain or terminate)."""
        if self._pool is None:
            return
        shutdown_pool(self._pool, terminate=terminate)
        self._pool = None

    def stats(self) -> dict[str, int]:
        """Spawn/reuse counters for bench honesty and health reports."""
        return {
            "workers": self.processes,
            "generation": self.generation,
            "pool_reuse_count": self.reuse_count,
            "worker_respawns": self.respawns,
            "alive": int(self.alive),
        }
