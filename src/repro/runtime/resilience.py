"""Resilience primitives for the batch runtime.

This module holds the small, dependency-free building blocks of the
fault-isolated batch pipeline:

* :class:`DocOutcome` — the structured per-document verdict attached to
  every :class:`~repro.runtime.executor.BatchRecord` (``ok`` /
  ``retried`` / ``degraded`` / ``failed``, with the typed error, the
  attempt count, and the pipeline stage that failed).
* :class:`RetryPolicy` — bounded retry with exponential backoff for
  transient faults.
* :class:`CircuitBreaker` — consecutive-failure counter that trips the
  parallel path to the serial fallback.
* :class:`BatchAbortError` — raised under ``on_error="fail"``; carries
  the records completed before the abort.

None of these touch scoring: outcomes are observability metadata and the
JSONL payload of a record (``BatchRecord.to_dict``) never includes them,
so the bit-identity contract of the runtime is untouched.
"""

from __future__ import annotations

import dataclasses
from typing import Any

#: Valid ``DocOutcome.status`` values, from best to worst.
STATUS_OK = "ok"
STATUS_RETRIED = "retried"
STATUS_DEGRADED = "degraded"
STATUS_FAILED = "failed"

#: Valid ``on_error`` batch policies.
ON_ERROR_POLICIES = ("fail", "skip", "quarantine")

#: ``DocOutcome.stage`` values the runtime assigns to final errors —
#: shared constants so the executor, the server's envelope mapping, and
#: the tests name stages without scattering string literals.
STAGE_PARSE = "parse"
STAGE_INJECT = "inject"
STAGE_INDEX = "index"
STAGE_TIMEOUT = "timeout"
STAGE_POOL = "pool"
STAGE_PIPELINE = "pipeline"


@dataclasses.dataclass
class DocOutcome:
    """Structured resolution of one document's trip through the batch.

    ``status`` is one of ``ok`` (first try, no degradation),
    ``retried`` (succeeded after >= 1 transient fault), ``degraded``
    (succeeded but a degradation-ladder rung fired while scoring it),
    or ``failed`` (no result; ``error_type``/``error`` describe why).
    ``stage`` classifies where the *final* error happened (``parse``,
    ``inject``, ``index``, ``timeout``, ``pool``, ``pipeline``) and is
    empty for successful documents.  ``degradations`` lists the ladder
    counters that moved while the document was scored.
    """

    name: str
    status: str = STATUS_OK
    attempts: int = 1
    stage: str = ""
    error_type: str = ""
    error: str = ""
    transient: bool = False
    degradations: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when the document produced a result."""
        return self.status != STATUS_FAILED

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable view (used by quarantine sidecars/metrics)."""
        payload: dict[str, Any] = {
            "name": self.name,
            "status": self.status,
            "attempts": self.attempts,
        }
        if self.stage:
            payload["stage"] = self.stage
        if self.error_type:
            payload["error_type"] = self.error_type
        if self.error:
            payload["error"] = self.error
        if self.degradations:
            payload["degradations"] = list(self.degradations)
        return payload

    @classmethod
    def from_dict(cls, payload: "dict[str, Any]") -> "DocOutcome":
        """Rebuild an outcome from its :meth:`to_dict` payload.

        The journal replay path: a resumed batch reconstructs each
        completed document's outcome exactly as the crashed run
        recorded it, so summaries and quarantine sidecars match an
        uninterrupted run.
        """
        return cls(
            name=payload["name"],
            status=payload.get("status", STATUS_OK),
            attempts=payload.get("attempts", 1),
            stage=payload.get("stage", ""),
            error_type=payload.get("error_type", ""),
            error=payload.get("error", ""),
            degradations=tuple(payload.get("degradations", ())),
        )


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient faults.

    ``max_retries`` counts *re*-dispatches: a document is attempted at
    most ``max_retries + 1`` times.  ``delay(attempt)`` returns the
    backoff to sleep before re-dispatching attempt ``attempt + 1`` —
    ``backoff_base * 2**(attempt - 1)`` capped at ``backoff_cap``.
    Benchmarks and tests pass ``backoff_base=0.0`` to retry instantly.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")

    def allows(self, attempt: int) -> bool:
        """True when a failure on ``attempt`` may be re-dispatched."""
        return attempt <= self.max_retries

    def delay(self, attempt: int) -> float:
        """Backoff (seconds) before re-dispatching after ``attempt``."""
        if self.backoff_base <= 0.0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * 2.0 ** (attempt - 1))


class CircuitBreaker:
    """Trip to serial fallback after N *consecutive* pool failures.

    Pool-machinery failures (worker crashes, broken pipes, pickling
    errors) increment the counter; any successfully collected task
    resets it.  Once ``tripped`` the executor stops re-creating pools
    and drains the remaining documents serially in the parent.
    """

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.failures = 0
        self.trips = 0

    @property
    def tripped(self) -> bool:
        """True once the consecutive-failure threshold has been hit."""
        return self.failures >= self.threshold

    def record_failure(self) -> bool:
        """Count one pool failure; returns True if this one tripped it."""
        self.failures += 1
        if self.failures == self.threshold:
            self.trips += 1
            return True
        return False

    def record_success(self) -> None:
        """Reset the consecutive-failure counter."""
        self.failures = 0


class BatchAbortError(RuntimeError):
    """Raised under ``on_error="fail"`` when a document finally fails.

    ``records`` holds the :class:`~repro.runtime.executor.BatchRecord`
    objects completed before the abort (in input order, failures
    included) so callers can still persist partial results.
    """

    def __init__(self, message: str, records: list[Any] | None = None) -> None:
        super().__init__(message)
        self.records: list[Any] = list(records or [])
