"""Background integrity scrubber for attached ``RXPD`` index shards.

A shard that rots on disk *after* ``repro pack`` is only caught at
attach time — a long-lived server that attached it weeks ago keeps
serving whatever the page cache (or the damaged disk) hands back.  The
scrubber closes that gap: it re-verifies each registered shard's body
CRC **incrementally**, one bounded slice per step, so a multi-GB shard
is audited continuously without ever stalling the serving process.

Damage handling is typed and loud:

* detection — a short read (``truncated``), a body-CRC mismatch
  (``crc-mismatch``), a bad or torn header (``bad-header``), or the
  file vanishing (``missing``);
* quarantine — the damaged shard is renamed to ``*.quarantined`` (the
  evidence is preserved for a post-mortem, and no future attach can map
  the bad bytes) and a metrics event is emitted;
* failover — the ``on_damage`` callback fires so the owner (the server
  app, the registry) can swap the serving sessions to a fallback or a
  heap-built index with zero failed requests;
* repair — when the target knows its source network path, the shard is
  re-packed from the network in place, ready for a hot reload to
  re-attach the mmap fast path.

Steps are driven either by the scrubber's own daemon thread
(:meth:`start` / :meth:`stop`, joined on all paths) or synchronously by
tests and gates calling :meth:`step`.  Each step opens the shard,
verifies one slice, and closes it — no file handle outlives a step, so
a quarantine rename or an atomic re-pack never races a kept-open
descriptor.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import zlib
from typing import Callable

from .metrics import MetricsRegistry
from .pack import (
    _DISK_HEADER,
    PackedIndexError,
    PackedIndexTruncatedError,
)
from .store import read_shard_header

#: Typed damage kinds reported by the scrubber.
DAMAGE_MISSING = "missing"
DAMAGE_TRUNCATED = "truncated"
DAMAGE_CRC = "crc-mismatch"
DAMAGE_HEADER = "bad-header"
DAMAGE_IO = "io-error"

#: Target lifecycle states.
STATE_PENDING = "pending"
STATE_CLEAN = "clean"
STATE_QUARANTINED = "quarantined"
STATE_REPAIRED = "repaired"


@dataclasses.dataclass
class ScrubTarget:
    """One shard under scrub, with its verification state."""

    path: str
    network_path: "str | None" = None
    domain: "str | None" = None
    status: str = STATE_PENDING
    passes: int = 0
    damage: "str | None" = None
    quarantined_path: "str | None" = None
    last_error: str = ""

    def to_dict(self) -> dict:
        """JSON-ready state for ``/healthz``."""
        payload: dict = {
            "path": self.path,
            "status": self.status,
            "passes": self.passes,
        }
        if self.domain:
            payload["domain"] = self.domain
        if self.damage:
            payload["damage"] = self.damage
        if self.quarantined_path:
            payload["quarantined_path"] = self.quarantined_path
        if self.last_error:
            payload["last_error"] = self.last_error
        return payload


class ShardScrubber:
    """Incremental CRC re-verification with quarantine and repair.

    ``slice_bytes`` bounds the I/O + CPU of one step; ``interval_s`` is
    the daemon thread's sleep between steps (together they cap the
    scrub bandwidth at roughly ``slice_bytes / interval_s``).
    ``on_damage(target, kind)`` fires — after quarantine, outside the
    scrubber lock — so the owner can fail over; it may be called from
    the scrub thread and must be thread-safe.  ``repair=True`` re-packs
    a quarantined shard from its source network when the target knows
    one.
    """

    def __init__(
        self,
        slice_bytes: int = 1 << 20,
        interval_s: float = 0.5,
        metrics: "MetricsRegistry | None" = None,
        on_damage: "Callable[[ScrubTarget, str], None] | None" = None,
        repair: bool = True,
    ) -> None:
        if slice_bytes < 1:
            raise ValueError("slice_bytes must be >= 1")
        if interval_s < 0:
            raise ValueError("interval_s must be >= 0")
        self.slice_bytes = slice_bytes
        self.interval_s = interval_s
        self.metrics = metrics
        self.on_damage = on_damage
        self.repair = repair
        self._targets: dict[str, ScrubTarget] = {}
        #: Per-target pass cursor: offset, running CRC, expectations.
        self._cursors: dict[str, dict] = {}
        self._next = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None

    # -- target registry ------------------------------------------------------

    def add_target(
        self,
        path: "str | os.PathLike[str]",
        network_path: "str | None" = None,
        domain: "str | None" = None,
    ) -> ScrubTarget:
        """Register one shard for scrubbing (idempotent by path)."""
        path = os.fspath(path)
        with self._lock:
            target = self._targets.get(path)
            if target is None:
                target = ScrubTarget(
                    path=path, network_path=network_path, domain=domain
                )
                self._targets[path] = target
            return target

    def reset_targets(
        self, targets: "list[tuple[str, str | None, str | None]]"
    ) -> None:
        """Replace the target set (hot reload swaps the watched shards)."""
        with self._lock:
            self._targets = {}
            self._cursors = {}
            self._next = 0
        for path, network_path, domain in targets:
            self.add_target(path, network_path=network_path, domain=domain)

    def targets(self) -> "list[ScrubTarget]":
        """The registered targets (snapshot)."""
        with self._lock:
            return list(self._targets.values())

    # -- scrub steps ----------------------------------------------------------

    def step(self) -> "dict | None":
        """Verify one bounded slice of the next scrubbable target.

        Returns a small event dict when something notable happened
        (``pass-complete``, ``damage``, ``repaired``) and ``None`` for
        an uneventful slice.  Synchronous — tests and gates drive the
        scrubber deterministically through this, the daemon thread is
        just a loop around it.
        """
        with self._lock:
            scannable = [
                t for t in self._targets.values()
                if t.status != STATE_QUARANTINED or (
                    self.repair and t.network_path
                )
            ]
            if not scannable:
                return None
            target = scannable[self._next % len(scannable)]
            self._next += 1
        if target.status == STATE_QUARANTINED:
            return self._repair(target.path)
        event = self._scrub_slice(target.path)
        if event is not None and event.get("event") == "damage":
            self._handle_damage(
                target.path, event["kind"], event.get("detail", "")
            )
        return event

    def _scrub_slice(self, path: str) -> "dict | None":
        """Advance one target's pass by one slice; classify any damage.

        A raised/short read is returned as a typed damage verdict, not
        handled here — :meth:`step` routes it to :meth:`_handle_damage`,
        which quarantines the shard and emits the metrics events.
        """
        target = self._targets.get(path)
        if target is None:
            return None
        try:
            cursor = self._cursors.get(target.path)
            if cursor is None:
                header = read_shard_header(target.path)
                stat = os.stat(target.path)
                cursor = {
                    "offset": _DISK_HEADER.size,
                    "crc": 0,
                    "end": _DISK_HEADER.size + header["body_bytes"],
                    "expect_crc": header["crc"],
                    "sig": (stat.st_ino, stat.st_mtime_ns, stat.st_size),
                }
                self._cursors[target.path] = cursor
            with open(target.path, "rb") as fh:
                stat = os.fstat(fh.fileno())
                sig = (stat.st_ino, stat.st_mtime_ns, stat.st_size)
                if sig != cursor["sig"]:
                    # The shard was atomically replaced (re-pack, hot
                    # reload) mid-pass: restart against the new file,
                    # this is churn, not damage.
                    self._cursors.pop(target.path, None)
                    return {"event": "restart", "path": target.path}
                fh.seek(cursor["offset"])
                want = min(self.slice_bytes, cursor["end"] - cursor["offset"])
                chunk = fh.read(want)
        except FileNotFoundError:  # lint: disable=silent-degrade  # verdict returned to step() -> _handle_damage quarantines + emits metrics
            return {
                "event": "damage", "kind": DAMAGE_MISSING,
                "detail": "shard file is gone",
            }
        except PackedIndexTruncatedError as exc:  # lint: disable=silent-degrade,exception-flow  # verdict returned to step() -> _handle_damage quarantines + emits metrics
            return {
                "event": "damage", "kind": DAMAGE_TRUNCATED,
                "detail": str(exc),
            }
        except PackedIndexError as exc:  # lint: disable=silent-degrade,exception-flow  # verdict returned to step() -> _handle_damage quarantines + emits metrics
            return {
                "event": "damage", "kind": DAMAGE_HEADER, "detail": str(exc),
            }
        except OSError as exc:  # lint: disable=silent-degrade  # verdict returned to step() -> _handle_damage quarantines + emits metrics
            return {"event": "damage", "kind": DAMAGE_IO, "detail": str(exc)}
        if len(chunk) < want:
            return {
                "event": "damage", "kind": DAMAGE_TRUNCATED,
                "detail": (
                    f"short read at offset {cursor['offset']}: "
                    f"wanted {want}, got {len(chunk)}"
                ),
            }
        cursor["crc"] = zlib.crc32(chunk, cursor["crc"])
        cursor["offset"] += len(chunk)
        if cursor["offset"] < cursor["end"]:
            return None
        self._cursors.pop(target.path, None)
        if cursor["crc"] != cursor["expect_crc"]:
            return {
                "event": "damage", "kind": DAMAGE_CRC,
                "detail": (
                    f"body CRC {cursor['crc']:#010x} != stamped "
                    f"{cursor['expect_crc']:#010x}"
                ),
            }
        target.passes += 1
        target.status = STATE_CLEAN
        target.damage = None
        if self.metrics is not None:
            self.metrics.count("scrub_passes")
        return {"event": "pass-complete", "path": target.path}

    # -- damage handling ------------------------------------------------------

    def _handle_damage(self, path: str, kind: str, detail: str) -> None:
        """Quarantine the damaged shard, then notify the owner."""
        target = self._targets.get(path)
        if target is None:
            return
        target.damage = kind
        target.last_error = detail
        self._cursors.pop(target.path, None)
        if self.metrics is not None:
            self.metrics.count("scrub_damage")
            self.metrics.event(
                "shard_damage", path=target.path, kind=kind, detail=detail,
            )
        if kind != DAMAGE_MISSING:
            quarantined = f"{target.path}.quarantined"
            n = 1
            while os.path.exists(quarantined):
                quarantined = f"{target.path}.quarantined.{n}"
                n += 1
            try:
                os.rename(target.path, quarantined)
                target.quarantined_path = quarantined
                if self.metrics is not None:
                    self.metrics.count("scrub_quarantined")
                    self.metrics.event(
                        "shard_quarantined",
                        path=target.path, moved_to=quarantined, kind=kind,
                    )
            except OSError as exc:
                # The rename lost a race (concurrent re-pack, unlink);
                # failover still proceeds on the damage verdict.
                if self.metrics is not None:
                    self.metrics.event(
                        "scrub_quarantine_failed",
                        path=target.path, error=str(exc),
                    )
        target.status = STATE_QUARANTINED
        callback = self.on_damage
        if callback is not None:
            try:
                callback(target, kind)
            except Exception as exc:  # lint: disable=broad-except  # scrub thread isolation: a failing failover hook must not kill the scrub loop
                if self.metrics is not None:
                    self.metrics.event(
                        "scrub_callback_failed",
                        path=target.path, error=str(exc),
                    )

    def _repair(self, path: str) -> "dict | None":
        """Re-pack a quarantined shard from its source network."""
        target = self._targets.get(path)
        if target is None or not (self.repair and target.network_path):
            return None
        try:
            from ..semnet.io import load_network
            from .pack import PackedIndex
            from .store import write_shard
            network = load_network(target.network_path)
            index = PackedIndex(network)
            write_shard(index, target.path, fingerprint=network.fingerprint())
        except Exception as exc:  # lint: disable=broad-except  # repair is best-effort: the shard stays quarantined, the failure is an event
            target.last_error = f"repair failed: {exc}"
            if self.metrics is not None:
                self.metrics.event(
                    "shard_repair_failed", path=target.path, error=str(exc),
                )
            return {"event": "repair-failed", "path": target.path}
        target.status = STATE_REPAIRED
        target.damage = None
        target.last_error = ""
        if self.metrics is not None:
            self.metrics.count("scrub_repairs")
            self.metrics.event(
                "shard_repaired",
                path=target.path, network=target.network_path,
            )
        return {"event": "repaired", "path": target.path}

    # -- daemon thread --------------------------------------------------------

    def start(self) -> None:
        """Start the background scrub thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop = threading.Event()
        thread = threading.Thread(
            target=self._run, name="repro-scrub", daemon=True
        )
        self._thread = thread
        thread.start()

    def stop(self) -> None:
        """Stop and join the scrub thread (idempotent, all paths)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.step()
            except Exception as exc:  # lint: disable=broad-except  # scrub loop isolation: one bad step must not end supervision
                if self.metrics is not None:
                    self.metrics.event("scrub_error", error=str(exc))

    @property
    def running(self) -> bool:
        """Whether the scrub thread is alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def stats(self) -> dict:
        """Scrubber state for ``/healthz``."""
        with self._lock:
            targets = [t.to_dict() for t in self._targets.values()]
        return {
            "running": self.running,
            "interval_s": self.interval_s,
            "slice_bytes": self.slice_bytes,
            "repair": self.repair,
            "passes": sum(t["passes"] for t in targets),
            "quarantined": sum(
                1 for t in targets if t["status"] == STATE_QUARANTINED
            ),
            "targets": targets,
        }
