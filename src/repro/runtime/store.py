"""On-disk ``RXPD`` index shards and the multi-network registry.

:mod:`repro.runtime.pack` gives one process zero-copy CSR tables over
a shared-memory segment, but the segment dies with its publisher —
every fresh ``repro batch``/``repro serve`` invocation still pays the
full index build or ``RXPK`` decode at startup.  This module makes the
packed tables a *persistent* artifact:

* :func:`write_shard` — atomically write a :class:`PackedIndex` to an
  ``RXPD`` shard file (the ``RXPS`` shared layout under a disk header
  carrying the source network's fingerprint);
* :meth:`PackedIndex.from_mmap` — attach the shard read-only through
  ``mmap``; every attaching process (server, pool workers, concurrent
  CLI runs) shares the same physical pages via the OS page cache;
* :class:`NetworkRegistry` — a ``registry.toml`` manifest mapping
  *domains* to ``(network, shard)`` pairs, with an LRU of attached
  shards and coverage-based cross-network fallback routing for
  documents whose vocabulary misses their primary domain.

The shard body is CRC-stamped at write time and structurally validated
at attach time; :func:`verify_shard` re-checks the full checksum (the
deep, page-everything-in variant) for offline integrity audits.
"""

from __future__ import annotations

import os
import re
import tomllib
from dataclasses import dataclass
from typing import Iterable

from ..semnet.io import load_network
from ..semnet.network import SemanticNetwork
from .pack import (
    _DISK_HEADER,
    _DISK_MAGIC,
    _VERSION,
    PackedIndex,
    PackedIndexError,
    PackedIndexTruncatedError,
)

#: Raw-token extractor for routing: every alphabetic run in a document
#: (tag names, attribute names, values) is a candidate lexicon term.
_WORD_RE = re.compile(r"[A-Za-z]+")


class RegistryError(ValueError):
    """Raised for malformed registry manifests and unknown domains."""


@dataclass(frozen=True)
class MmapIndexHandle:
    """A pool-shippable ticket for an on-disk shard attachment.

    The mmap analogue of :class:`repro.runtime.pool.SharedIndexHandle`:
    instead of a shared-memory segment name, workers receive the shard
    *path* and attach with :meth:`PackedIndex.from_mmap` — no payload
    pickling, no publish step, and the file (unlike a segment) outlives
    every process, so there is nothing to unlink.
    """

    path: str
    size: int


def write_shard(
    index: PackedIndex,
    path: "str | os.PathLike[str]",
    fingerprint: str | None = None,
) -> dict:
    """Atomically write ``index`` to an ``RXPD`` shard file.

    The payload is staged to a sibling temp file and ``os.replace``-d
    into place, so a concurrent reader never maps a half-written shard.
    ``fingerprint`` (the source network's SHA-256 hex digest) is
    stamped into the header so attaches can detect a network/shard
    mismatch.  Returns a stats dict (path, bytes, concepts).
    """
    path = os.fspath(path)
    payload = index.to_disk_payload(fingerprint=fingerprint)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return {
        "path": path,
        "shard_bytes": len(payload),
        "concepts": len(index),
    }


def read_shard_header(path: "str | os.PathLike[str]") -> dict:
    """Parse and validate one shard's 32-byte header (no body I/O).

    Returns ``{version, body_bytes, file_bytes, fingerprint, crc}``
    with ``fingerprint`` the stamped hex prefix or ``None`` when the
    shard was written without one, and ``crc`` the stamped CRC-32 of
    the body (what the scrubber re-verifies incrementally).  Raises
    the typed :class:`~repro.runtime.pack.PackedIndexError` family on
    bad or truncated headers.
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    with open(path, "rb") as fh:
        raw = fh.read(_DISK_HEADER.size)
    if len(raw) < _DISK_HEADER.size:
        raise PackedIndexTruncatedError(
            "shard file shorter than the RXPD header"
        )
    magic, version, _byteorder, crc, body_len, digest = _DISK_HEADER.unpack(
        raw
    )
    if magic != _DISK_MAGIC:
        raise PackedIndexError("not an RXPD shard file (bad magic)")
    if version != _VERSION:
        raise PackedIndexError(f"unsupported shard version {version}")
    if _DISK_HEADER.size + body_len > size:
        raise PackedIndexTruncatedError(
            f"shard truncated: header declares {body_len} body bytes, "
            f"{size - _DISK_HEADER.size} present"
        )
    return {
        "version": version,
        "body_bytes": body_len,
        "file_bytes": size,
        "fingerprint": digest.hex() if digest != b"\x00" * 16 else None,
        "crc": crc,
    }


def verify_shard(path: "str | os.PathLike[str]") -> dict:
    """Deep-verify one shard: header, structure, and full body CRC.

    Pages the whole file in (that is the point); returns the shard's
    stats dict.  Raises :class:`PackedIndexTruncatedError` /
    :class:`~repro.runtime.pack.PackedIndexCRCError` on damage.
    """
    header = read_shard_header(path)
    index = PackedIndex.from_mmap(path, verify=True)
    try:
        stats = {
            "path": os.fspath(path),
            "concepts": len(index),
            "ancestor_entries": len(index._anc_cid),
            "shard_bytes": header["file_bytes"],
            "fingerprint": header["fingerprint"],
        }
    finally:
        index.release_shared()
    return stats


def document_terms(xml_text: str) -> tuple[str, ...]:
    """Distinct lowercased alphabetic tokens of one XML document.

    The routing vocabulary: every tag name, attribute, and value word
    is a candidate term.  Extraction is regex-based on purpose — the
    router must not fail on malformed XML (the pipeline will surface
    the parse error with a proper outcome; routing just needs a bag of
    words to score coverage with).
    """
    seen: dict[str, None] = {}
    for match in _WORD_RE.finditer(xml_text):
        seen.setdefault(match.group().lower())
    return tuple(seen)


@dataclass(frozen=True)
class RegistryEntry:
    """One domain's manifest row: where its network and shard live."""

    name: str
    network_path: str
    shard_path: "str | None"
    fallback: tuple[str, ...] = ()


@dataclass
class AttachedDomain:
    """One attached domain: its network and (possibly mmap) index."""

    entry: RegistryEntry
    network: SemanticNetwork
    index: PackedIndex


class NetworkRegistry:
    """Domain -> (network, shard) manifest with routed, LRU attachment.

    The manifest is TOML (parsed with the stdlib ``tomllib``)::

        default = "general"

        [networks.general]
        network = "general.network.json"   # repro-semnet JSON
        shard = "general.rxpd"             # optional: mmap fast path
        fallback = ["medical"]             # coverage-routed spillover

    Relative paths resolve against the manifest's directory.  A domain
    without a ``shard`` builds its :class:`PackedIndex` from the
    network on attach (the slow path — ``repro pack`` exists so you
    never have to).  At most ``max_attached`` domains stay attached;
    the least recently used is evicted and its mmap released
    (materializing nothing — an evicted index owned by a still-running
    session keeps working because eviction only drops the registry's
    reference, and ``release_shared`` is applied only when the registry
    owns the last one).

    Routing (:meth:`route`) scores each candidate domain by *lexicon
    coverage* — the fraction of a document's distinct alphabetic terms
    the domain's network knows — and falls back from the primary
    domain to its ``fallback`` list when one of them covers strictly
    more of the document.  Ties keep manifest order (primary first),
    so routing is deterministic.
    """

    def __init__(
        self,
        entries: "Iterable[RegistryEntry]",
        default: "str | None" = None,
        max_attached: int = 4,
        base_dir: str = ".",
        verify_fingerprints: bool = False,
    ):
        if max_attached < 1:
            raise RegistryError("max_attached must be >= 1")
        self._entries: dict[str, RegistryEntry] = {}
        for entry in entries:
            if entry.name in self._entries:
                raise RegistryError(f"duplicate domain {entry.name!r}")
            self._entries[entry.name] = entry
        if not self._entries:
            raise RegistryError("registry defines no networks")
        for entry in self._entries.values():
            for fb in entry.fallback:
                if fb not in self._entries:
                    raise RegistryError(
                        f"domain {entry.name!r} lists unknown fallback {fb!r}"
                    )
        if default is None:
            default = next(iter(self._entries))
        if default not in self._entries:
            raise RegistryError(f"default domain {default!r} is not defined")
        self.default_domain = default
        self.max_attached = max_attached
        self.base_dir = base_dir
        self.verify_fingerprints = verify_fingerprints
        # Insertion order is recency order (oldest first).
        self._attached: dict[str, AttachedDomain] = {}
        self._attach_count = 0
        self._evict_count = 0
        self._route_fallbacks = 0
        # Shard paths the scrubber condemned: attach() skips the mmap
        # rung for these until a repair/reload clears the mark.
        self._damaged: set[str] = set()

    @classmethod
    def load(
        cls,
        path: "str | os.PathLike[str]",
        max_attached: int = 4,
        verify_fingerprints: bool = False,
    ) -> "NetworkRegistry":
        """Parse a ``registry.toml`` manifest into a registry."""
        path = os.fspath(path)
        try:
            with open(path, "rb") as fh:
                manifest = tomllib.load(fh)
        except tomllib.TOMLDecodeError as exc:
            raise RegistryError(f"malformed registry manifest: {exc}") from None
        networks = manifest.get("networks")
        if not isinstance(networks, dict) or not networks:
            raise RegistryError(
                "registry manifest must define a [networks.<domain>] table"
            )
        base_dir = os.path.dirname(os.path.abspath(path))
        entries = []
        for name, spec in networks.items():
            if not isinstance(spec, dict) or "network" not in spec:
                raise RegistryError(
                    f"domain {name!r} must set a 'network' path"
                )
            fallback = spec.get("fallback", [])
            if not isinstance(fallback, list) or not all(
                isinstance(fb, str) for fb in fallback
            ):
                raise RegistryError(
                    f"domain {name!r}: 'fallback' must be a list of domains"
                )
            entries.append(RegistryEntry(
                name=name,
                network_path=os.path.join(base_dir, spec["network"]),
                shard_path=(
                    os.path.join(base_dir, spec["shard"])
                    if spec.get("shard") else None
                ),
                fallback=tuple(fallback),
            ))
        default = manifest.get("default")
        if default is not None and not isinstance(default, str):
            raise RegistryError("'default' must be a domain name")
        return cls(
            entries,
            default=default,
            max_attached=max_attached,
            base_dir=base_dir,
            verify_fingerprints=verify_fingerprints,
        )

    # -- manifest surface -----------------------------------------------------

    def domains(self) -> tuple[str, ...]:
        """Every declared domain, in manifest order."""
        return tuple(self._entries)

    def entry(self, domain: str) -> RegistryEntry:
        """The manifest row for ``domain`` (raises on unknown names)."""
        try:
            return self._entries[domain]
        except KeyError:
            raise RegistryError(
                f"unknown domain {domain!r} "
                f"(registry defines {', '.join(self._entries)})"
            ) from None

    # -- attachment LRU -------------------------------------------------------

    def attach(self, domain: str) -> AttachedDomain:
        """The attached network + index for ``domain`` (LRU-cached).

        A hit refreshes recency; a miss loads the network, attaches the
        shard via ``from_mmap`` when the manifest names one (falling
        back to an in-memory :class:`PackedIndex` build when the shard
        is missing or unreadable — the resilience ladder's next rung),
        and may evict the least recently used domain.
        """
        attached = self._attached.pop(domain, None)
        if attached is not None:
            self._attached[domain] = attached  # refresh recency
            return attached
        entry = self.entry(domain)
        network = load_network(entry.network_path)
        index: "PackedIndex | None" = None
        if entry.shard_path is not None and entry.shard_path not in (
            self._damaged
        ):
            expect = (
                network.fingerprint() if self.verify_fingerprints else None
            )
            try:
                index = PackedIndex.from_mmap(
                    entry.shard_path, expect_fingerprint=expect
                )
            except (PackedIndexError, OSError):  # lint: disable=silent-degrade  # ladder rung: shardless attach, surfaced via stats()["backing"]
                index = None
        if index is None:
            index = PackedIndex(network)
        attached = AttachedDomain(entry=entry, network=network, index=index)
        self._attached[domain] = attached
        self._attach_count += 1
        while len(self._attached) > self.max_attached:
            _, evicted = next(iter(self._attached.items()))
            self._evict(evicted)
        return attached

    def _evict(self, attached: AttachedDomain) -> None:
        """Drop the registry's reference to one attached domain.

        ``release_shared`` materializes the tables into private arrays
        first, so any session still holding the index keeps working —
        eviction trades the page-shared mapping for heap copies, never
        correctness.
        """
        self._attached.pop(attached.entry.name, None)
        self._evict_count += 1
        attached.index.release_shared()

    def mark_damaged(self, shard_path: str) -> tuple[str, ...]:
        """Condemn one shard path after an integrity failure.

        Every attached domain backed by that shard is *dropped* (not
        evicted — ``release_shared`` would materialize the tables by
        reading the damaged mapping, exactly the bytes we no longer
        trust; sessions still holding the old index degrade through the
        per-request resilience ladder instead).  Future :meth:`attach`
        calls skip the mmap rung and heap-build from the network until
        :meth:`clear_damaged` (post-repair reload) lifts the mark.
        Returns the affected domain names.
        """
        self._damaged.add(shard_path)
        affected = tuple(
            name for name, att in self._attached.items()
            if att.entry.shard_path == shard_path
            and att.index.backing == "mmap"
        )
        for name in affected:
            self._attached.pop(name, None)
        return affected

    def clear_damaged(self) -> None:
        """Forget every damage mark (a repaired shard may re-attach)."""
        self._damaged.clear()

    def close(self) -> None:
        """Release every attached shard (idempotent)."""
        while self._attached:
            _, attached = next(iter(self._attached.items()))
            self._evict(attached)

    def __enter__(self) -> "NetworkRegistry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- routing --------------------------------------------------------------

    def _vocabulary_coverage(
        self, attached: AttachedDomain, terms: "tuple[str, ...]"
    ) -> float:
        """Fraction of ``terms`` the domain's lexicon knows."""
        if not terms:
            return 0.0
        network = attached.network
        known = sum(1 for term in terms if network.has_word(term))
        return known / len(terms)

    def route(
        self, xml_text: str, domain: "str | None" = None
    ) -> tuple[str, float]:
        """Pick the serving domain for one document.

        Returns ``(domain, coverage)``.  The primary is ``domain`` (or
        the manifest default); its ``fallback`` domains are scored only
        when they could win, and one takes over only with *strictly*
        higher lexicon coverage — a document at home in its primary
        domain never moves, and ties keep the primary (deterministic).
        """
        primary = self.entry(domain or self.default_domain)
        terms = document_terms(xml_text)
        best_name = primary.name
        best_cov = self._vocabulary_coverage(self.attach(primary.name), terms)
        if best_cov < 1.0:
            for name in primary.fallback:
                cov = self._vocabulary_coverage(self.attach(name), terms)
                if cov > best_cov:
                    best_name, best_cov = name, cov
        if best_name != primary.name:
            self._route_fallbacks += 1
        return best_name, best_cov

    # -- observability --------------------------------------------------------

    def stats(self) -> dict:
        """Registry counters and the per-domain attachment states.

        ``domain_count`` (not ``domains``) so the server's ``/healthz``
        can merge these counters next to its ``domains`` name list
        without a key collision.
        """
        return {
            "domain_count": len(self._entries),
            "attached": len(self._attached),
            "max_attached": self.max_attached,
            "attach_count": self._attach_count,
            "evictions": self._evict_count,
            "route_fallbacks": self._route_fallbacks,
            "damaged": sorted(self._damaged),
            "backings": {
                name: att.index.backing
                for name, att in self._attached.items()
            },
        }
