"""Semantic network substrate (paper Definition 2).

A from-scratch WordNet-style semantic network engine plus a curated
mini-WordNet lexicon, a synthetic network generator, and corpus /
information-content machinery for the weighted network ``SN-bar``.
"""

from .builders import NetworkBuilder
from .concepts import Concept, Edge, Relation
from .corpus import (
    count_concept_frequencies,
    generate_corpus,
    weight_network,
    zipf_weights,
)
from .generator import GeneratorConfig, generate_network
from .ic import InformationContent
from .io import (
    NetworkFormatError,
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from .lexicon import build_lexicon, default_lexicon
from .network import SemanticNetwork, UnknownConceptError
from .validate import Issue, ValidationReport, validate_network
from .wordnet_format import WordNetFormatError, load_wordnet_nouns

__all__ = [
    "Concept",
    "Edge",
    "GeneratorConfig",
    "InformationContent",
    "NetworkFormatError",
    "NetworkBuilder",
    "Relation",
    "SemanticNetwork",
    "UnknownConceptError",
    "Issue",
    "ValidationReport",
    "build_lexicon",
    "count_concept_frequencies",
    "default_lexicon",
    "generate_corpus",
    "generate_network",
    "load_network",
    "network_from_dict",
    "network_to_dict",
    "save_network",
    "WordNetFormatError",
    "load_wordnet_nouns",
    "validate_network",
    "weight_network",
    "zipf_weights",
]
