"""Fluent construction API for semantic networks.

The curated lexicon modules declare hundreds of synsets; this builder
keeps those declarations compact and readable::

    b = NetworkBuilder("mini-wordnet")
    b.synset("entity.n.01", ["entity"], "that which is perceived to exist")
    b.synset(
        "person.n.01", ["person", "individual", "someone"],
        "a human being", hypernym="entity.n.01", freq=812,
    )
    network = b.build()

Relations may reference synsets declared *later*; they are resolved when
:meth:`NetworkBuilder.build` runs, so declaration order never matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .concepts import Concept, Relation
from .network import SemanticNetwork


@dataclass
class _PendingRelation:
    source: str
    relation: Relation
    target: str


@dataclass
class NetworkBuilder:
    """Accumulates synset declarations, then materializes the network."""

    name: str = "semnet"
    _concepts: list[Concept] = field(default_factory=list)
    _relations: list[_PendingRelation] = field(default_factory=list)
    _seen_ids: set[str] = field(default_factory=set)

    def synset(
        self,
        concept_id: str,
        words: list[str] | tuple[str, ...],
        gloss: str,
        hypernym: str | list[str] | None = None,
        part_of: str | list[str] | None = None,
        member_of: str | list[str] | None = None,
        similar_to: str | list[str] | None = None,
        pos: str = "n",
        freq: float = 0.0,
    ) -> str:
        """Declare one synset and its outgoing relations; returns the id."""
        if concept_id in self._seen_ids:
            raise ValueError(f"synset {concept_id!r} declared twice")
        self._seen_ids.add(concept_id)
        self._concepts.append(
            Concept(id=concept_id, words=tuple(words), gloss=gloss, pos=pos,
                    frequency=freq)
        )
        for target in _as_list(hypernym):
            self._relations.append(
                _PendingRelation(concept_id, Relation.HYPERNYM, target)
            )
        for target in _as_list(part_of):
            self._relations.append(
                _PendingRelation(concept_id, Relation.PART_HOLONYM, target)
            )
        for target in _as_list(member_of):
            self._relations.append(
                _PendingRelation(concept_id, Relation.MEMBER_HOLONYM, target)
            )
        for target in _as_list(similar_to):
            self._relations.append(
                _PendingRelation(concept_id, Relation.SIMILAR, target)
            )
        return concept_id

    def relation(self, source: str, relation: Relation, target: str) -> None:
        """Declare an arbitrary typed relation between two synsets."""
        self._relations.append(_PendingRelation(source, relation, target))

    def build(self) -> SemanticNetwork:
        """Materialize the network, resolving all forward references."""
        network = SemanticNetwork(self.name)
        for concept in self._concepts:
            network.add_concept(concept)
        for pending in self._relations:
            network.add_relation(pending.source, pending.relation, pending.target)
        return network


def _as_list(value: str | list[str] | None) -> list[str]:
    if value is None:
        return []
    if isinstance(value, str):
        return [value]
    return list(value)
