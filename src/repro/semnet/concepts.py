"""Concepts and semantic relations (paper Definition 2).

A semantic network ``SN = (C, L, G, E, R, f, g)`` is made of concept
nodes (synsets) carrying a label, a set of synonymous words, and a gloss,
connected by typed semantic relations (IS-A, HAS-A, PART-OF, ...).

This module defines the value types; the graph itself lives in
:mod:`repro.semnet.network`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Relation(enum.Enum):
    """Semantic relation types, mirroring WordNet's noun relations."""

    HYPERNYM = "hypernym"              # is-a (specific -> general)
    HYPONYM = "hyponym"                # inverse of hypernym
    PART_MERONYM = "part_meronym"      # has-part (whole -> part)
    PART_HOLONYM = "part_holonym"      # part-of (part -> whole)
    MEMBER_MERONYM = "member_meronym"  # has-member
    MEMBER_HOLONYM = "member_holonym"  # member-of
    ATTRIBUTE = "attribute"            # symmetric attribute link
    SIMILAR = "similar"                # symmetric similarity link
    DERIVATION = "derivation"          # derivationally related forms

    @property
    def inverse(self) -> "Relation":
        """The relation read in the opposite direction."""
        return _INVERSES[self]

    @property
    def is_taxonomic(self) -> bool:
        """True for the IS-A backbone used by edge-based similarity."""
        return self in (Relation.HYPERNYM, Relation.HYPONYM)


_INVERSES = {
    Relation.HYPERNYM: Relation.HYPONYM,
    Relation.HYPONYM: Relation.HYPERNYM,
    Relation.PART_MERONYM: Relation.PART_HOLONYM,
    Relation.PART_HOLONYM: Relation.PART_MERONYM,
    Relation.MEMBER_MERONYM: Relation.MEMBER_HOLONYM,
    Relation.MEMBER_HOLONYM: Relation.MEMBER_MERONYM,
    Relation.ATTRIBUTE: Relation.ATTRIBUTE,
    Relation.SIMILAR: Relation.SIMILAR,
    Relation.DERIVATION: Relation.DERIVATION,
}


@dataclass
class Concept:
    """One concept node (synset).

    Attributes
    ----------
    id:
        Stable unique identifier, conventionally ``lemma.pos.NN``
        (e.g. ``star.n.02``).
    words:
        Synonymous words/expressions designating this sense.  Multiword
        expressions use spaces (``first name``).  The first word is the
        concept's *label* (``c.l`` in the paper).
    gloss:
        Textual definition (``c.gloss``).
    pos:
        Part of speech tag, ``n``/``v``/``a``; the paper's corpora are
        noun-dominated so ``n`` is the default.
    frequency:
        Corpus occurrence count for the weighted network ``SN-bar``
        (used by node-based similarity measures).  Zero until a corpus
        is applied.
    """

    id: str
    words: tuple[str, ...]
    gloss: str
    pos: str = "n"
    frequency: float = 0.0

    def __post_init__(self) -> None:
        if not self.words:
            raise ValueError(f"concept {self.id!r} must have at least one word")
        self.words = tuple(word.lower() for word in self.words)

    @property
    def label(self) -> str:
        """The concept label ``c.l`` — its first (preferred) word."""
        return self.words[0]

    @property
    def synonyms(self) -> tuple[str, ...]:
        """All synonymous words (``c.syn``), including the label."""
        return self.words

    def gloss_tokens(self) -> list[str]:
        """Stemmed content-word tokens of the gloss (for Lesk overlap).

        Stemming matters: glosses say "the lines spoken by an actor"
        while labels say "line" — without conflation the overlap measure
        misses exactly the matches it exists to find.
        """
        from ..linguistics.stemmer import stem
        from ..linguistics.stopwords import STOP_WORDS
        from ..linguistics.tokenizer import split_text_value

        return [
            stem(t) for t in split_text_value(self.gloss) if t not in STOP_WORDS
        ]

    def __hash__(self) -> int:
        return hash(self.id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Concept({self.id!r})"


@dataclass(frozen=True)
class Edge:
    """A typed, directed edge between two concepts."""

    source: str
    target: str
    relation: Relation

    @property
    def inverse(self) -> "Edge":
        """The same edge seen from the other endpoint."""
        return Edge(self.target, self.source, self.relation.inverse)
