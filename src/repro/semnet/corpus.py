"""Synthetic Brown-like corpus and concept frequency weighting.

The paper weights WordNet with concept frequencies from the Brown corpus
(its Figure 2 shows the counts next to each synset).  The Brown corpus is
not redistributable here, so this module provides the closest synthetic
equivalent: a deterministic generator that samples concept mentions with
a Zipfian rank-frequency law — the empirical shape of word frequencies in
English — and a counter that distributes word occurrences over senses
with the usual skew toward the first sense.

``weight_network(network, seed=...)`` is the one-call entry point used by
tests and benchmarks to obtain a weighted network ``SN-bar``.
"""

from __future__ import annotations

import random
from collections import Counter

from .network import SemanticNetwork

#: How much of a word's corpus mass goes to its k-th sense.  SemCor-style
#: annotation is heavily skewed toward the first sense; a geometric decay
#: with ratio ~0.45 matches the reported sense-rank distributions well.
SENSE_DECAY = 0.45


def zipf_weights(n: int, exponent: float = 1.05) -> list[float]:
    """Zipf rank weights ``1/rank^s`` for ranks 1..n (unnormalized)."""
    return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]


def generate_corpus(
    network: SemanticNetwork,
    n_tokens: int = 50_000,
    seed: int = 42,
    exponent: float = 1.05,
) -> list[str]:
    """Sample a word token stream whose vocabulary is the network's.

    Words are ranked deterministically (registration order) and sampled
    with Zipfian probability, which yields the heavy-tailed frequency
    profile the information-content measures expect.
    """
    words = network.words()
    if not words:
        raise ValueError("cannot generate a corpus from an empty network")
    rng = random.Random(seed)
    weights = zipf_weights(len(words), exponent)
    return rng.choices(words, weights=weights, k=n_tokens)


def count_concept_frequencies(
    network: SemanticNetwork, tokens: list[str]
) -> Counter[str]:
    """Distribute word occurrences over senses (first-sense skewed).

    Each occurrence of a word contributes fractional counts to its senses
    following a geometric decay over sense rank, mimicking how
    sense-tagged corpora such as SemCor distribute mentions.
    """
    word_counts = Counter(token.lower() for token in tokens)
    concept_counts: Counter[str] = Counter()
    for word, count in word_counts.items():
        senses = network.senses(word)
        if not senses:
            continue
        shares = [SENSE_DECAY**rank for rank in range(len(senses))]
        total_share = sum(shares)
        for sense, share in zip(senses, shares):
            concept_counts[sense.id] += count * share / total_share
    return concept_counts


def weight_network(
    network: SemanticNetwork,
    n_tokens: int = 50_000,
    seed: int = 42,
) -> SemanticNetwork:
    """Weight ``network`` in place with synthetic corpus frequencies.

    Returns the same network (now the weighted ``SN-bar``) for chaining.
    """
    tokens = generate_corpus(network, n_tokens=n_tokens, seed=seed)
    for concept_id, count in count_concept_frequencies(network, tokens).items():
        network.set_frequency(concept_id, count)
    return network
