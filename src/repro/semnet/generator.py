"""Deterministic synthetic semantic network generator.

Scale benchmarks and property-based tests need semantic networks far
larger than the curated lexicon, with controllable shape.  This
generator builds random — but seed-deterministic — taxonomies:

* a single root, ``branching``-ary IS-A tree of ``n_concepts`` synsets;
* a vocabulary where each word covers a controllable number of concepts
  (the *polysemy* knob: words are reused across concepts to create
  ambiguous entries);
* glosses synthesized from the labels of taxonomic neighbors, so
  gloss-overlap (Lesk) measures have realistic signal;
* optional part-of links sprinkled across subtrees.

Everything is driven by ``random.Random(seed)``: the same parameters
always produce the identical network.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .concepts import Relation
from .network import SemanticNetwork
from .concepts import Concept

_SYLLABLES = [
    "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
    "ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
    "ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
    "ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su",
    "ta", "te", "ti", "to", "tu", "za", "ze", "zi", "zo", "zu",
]


@dataclass
class GeneratorConfig:
    """Shape parameters for a synthetic semantic network.

    ``gloss_style`` trades gloss realism for generation speed at
    store scale (the ``RXPD`` shard benchmarks build 100k+ concept
    networks):

    * ``"sphere"`` (default) — vocabulary drawn from the full radius-2
      taxonomic neighborhood, one BFS per concept.  Richest Lesk
      signal; ~half of generation time at 100k concepts.
    * ``"local"`` — vocabulary from the concept's own words plus its
      IS-A parent's, collected during the tree walk (no BFS).  Still
      neighbor-correlated (Lesk overlap stays meaningful), O(1) per
      concept.

    The default output is byte-identical to earlier releases; only
    explicitly choosing ``"local"`` changes generated content.
    """

    n_concepts: int = 500
    branching: int = 4            # average IS-A fan-out
    mean_polysemy: float = 2.0    # average senses per word
    max_polysemy: int = 12        # polysemy ceiling
    synonyms_per_concept: int = 2
    part_of_fraction: float = 0.1  # fraction of concepts given a part-of link
    gloss_length: int = 8          # words per synthesized gloss
    gloss_style: str = "sphere"    # "sphere" (radius-2 BFS) | "local" (O(1))
    seed: int = 7


def _make_word(rng: random.Random, used: set[str]) -> str:
    """Generate a fresh pronounceable pseudo-word."""
    while True:
        word = "".join(rng.choice(_SYLLABLES) for _ in range(rng.randint(2, 4)))
        if word not in used:
            used.add(word)
            return word


def generate_network(config: GeneratorConfig | None = None) -> SemanticNetwork:
    """Build a synthetic semantic network from ``config``."""
    cfg = config or GeneratorConfig()
    if cfg.n_concepts < 1:
        raise ValueError("n_concepts must be >= 1")
    if cfg.gloss_style not in ("sphere", "local"):
        raise ValueError(
            f"gloss_style must be 'sphere' or 'local', got {cfg.gloss_style!r}"
        )
    rng = random.Random(cfg.seed)
    network = SemanticNetwork(f"synthetic-{cfg.seed}")

    used_words: set[str] = set()
    # Word pool sized so that average polysemy lands near mean_polysemy:
    # total sense slots ~= n_concepts * (1 + synonyms) spread over the pool.
    sense_slots = cfg.n_concepts * (1 + cfg.synonyms_per_concept)
    pool_size = max(1, int(sense_slots / max(cfg.mean_polysemy, 0.1)))
    pool = [_make_word(rng, used_words) for _ in range(pool_size)]
    usage: dict[str, int] = {word: 0 for word in pool}

    def draw_word() -> str:
        # Rejection-sample a word under the polysemy ceiling.
        for _ in range(32):
            word = rng.choice(pool)
            if usage[word] < cfg.max_polysemy:
                usage[word] += 1
                return word
        word = _make_word(rng, used_words)
        pool.append(word)
        usage[word] = 1
        return word

    parents: list[str] = []
    concept_ids: list[str] = []
    parent_of: dict[str, str] = {}
    for index in range(cfg.n_concepts):
        words = [draw_word() for _ in range(1 + cfg.synonyms_per_concept)]
        # Dedup while preserving order (a word may be drawn twice).
        words = list(dict.fromkeys(words))
        concept_id = f"syn{index:05d}.{words[0]}"
        concept = Concept(
            id=concept_id, words=tuple(words), gloss="", frequency=0.0
        )
        network.add_concept(concept)
        concept_ids.append(concept_id)
        if parents:
            parent = rng.choice(parents)
            network.add_relation(concept_id, Relation.HYPERNYM, parent)
            parent_of[concept_id] = parent
        # A node stays eligible as a parent until it has ~branching children.
        parents.append(concept_id)
        if len(parents) > max(2, cfg.n_concepts // cfg.branching):
            parents.pop(rng.randrange(len(parents) - 1))

    # Part-of links between random concept pairs in distinct subtrees.
    n_parts = int(cfg.n_concepts * cfg.part_of_fraction)
    for _ in range(n_parts):
        part, whole = rng.sample(concept_ids, 2)
        network.add_relation(part, Relation.PART_HOLONYM, whole)

    if cfg.gloss_style == "local":
        _synthesize_glosses_local(network, rng, cfg.gloss_length, parent_of)
    else:
        _synthesize_glosses(network, rng, cfg.gloss_length)
    return network


def _synthesize_glosses(
    network: SemanticNetwork, rng: random.Random, gloss_length: int
) -> None:
    """Write glosses drawn from each concept's taxonomic neighborhood.

    Sharing vocabulary with neighbors gives Lesk-style measures real
    overlap structure instead of noise.
    """
    for concept in network:
        neighborhood = network.sphere(concept.id, 2)
        vocabulary: list[str] = []
        for cid in neighborhood:
            vocabulary.extend(network.concept(cid).words)
        words = [rng.choice(vocabulary) for _ in range(gloss_length)]
        concept.gloss = "a kind of " + " ".join(words)


def _synthesize_glosses_local(
    network: SemanticNetwork,
    rng: random.Random,
    gloss_length: int,
    parent_of: dict[str, str],
) -> None:
    """The ``gloss_style="local"`` fast path: parent-correlated glosses.

    Vocabulary is the concept's own words plus its IS-A parent's —
    constant work per concept, no BFS — so sibling and parent/child
    glosses still share words and Lesk measures keep real overlap
    structure at 100k+ concepts.
    """
    for concept in network:
        vocabulary = list(concept.words)
        parent = parent_of.get(concept.id)
        if parent is not None:
            vocabulary.extend(network.concept(parent).words)
        words = [rng.choice(vocabulary) for _ in range(gloss_length)]
        concept.gloss = "a kind of " + " ".join(words)
