"""Information content over a weighted semantic network (``SN-bar``).

Node-based similarity measures (Resnik, Lin, Jiang-Conrath) need the
information content ``IC(c) = -log p(c)`` where ``p(c)`` is the
probability of encountering an instance of concept ``c`` in a reference
corpus.  Following Resnik, the count of a concept includes the counts of
all its IS-A descendants, so probabilities are monotone along the
taxonomy and ``IC`` decreases toward the root.

Laplace smoothing (+1 per concept) keeps IC finite for concepts that
never occur in the corpus.
"""

from __future__ import annotations

import math

from .network import SemanticNetwork


class InformationContent:
    """Precomputed IC values for every concept in a network.

    Parameters
    ----------
    network:
        The (frequency-weighted) semantic network.
    smoothing:
        Pseudo-count added to every concept's own frequency, so unseen
        concepts get small-but-finite probability.
    """

    def __init__(self, network: SemanticNetwork, smoothing: float = 1.0):
        self._network = network
        self._smoothing = smoothing
        self._ic: dict[str, float] = {}
        self._max_ic = 1.0
        self._compute()

    def _compute(self) -> None:
        n = len(self._network)
        total = self._network.total_frequency + self._smoothing * n
        if total <= 0:
            raise ValueError("network has no frequency mass to compute IC from")
        # Smoothed cumulative count: raw cumulative + smoothing * subtree size.
        subtree_sizes = self._subtree_sizes()
        for concept in self._network:
            cum = self._network.cumulative_frequency(concept.id)
            cum += self._smoothing * subtree_sizes[concept.id]
            p = min(cum / total, 1.0)
            self._ic[concept.id] = -math.log(p) if p > 0 else math.inf
        finite = [v for v in self._ic.values() if math.isfinite(v)]
        self._max_ic = max(finite) if finite else 1.0

    def _subtree_sizes(self) -> dict[str, int]:
        """Number of distinct concepts in each concept's IS-A subtree."""
        cache: dict[str, frozenset[str]] = {}

        def visit(cid: str, trail: set[str]) -> frozenset[str]:
            if cid in cache:
                return cache[cid]
            if cid in trail:
                return frozenset()
            trail.add(cid)
            members = {cid}
            for child in self._network.hyponyms(cid):
                members |= visit(child, trail)
            trail.discard(cid)
            result = frozenset(members)
            cache[cid] = result
            return result

        return {cid.id: len(visit(cid.id, set())) for cid in self._network}

    # -- queries ---------------------------------------------------------------

    def ic(self, concept_id: str) -> float:
        """Information content of one concept."""
        return self._ic[concept_id]

    @property
    def max_ic(self) -> float:
        """Highest finite IC in the network (for normalization)."""
        return self._max_ic

    def resnik(self, a: str, b: str) -> float:
        """IC of the lowest common subsumer (0 when none exists)."""
        lcs = self._network.lowest_common_subsumer(a, b)
        if lcs is None:
            return 0.0
        return self._ic[lcs]

    def lin(self, a: str, b: str) -> float:
        """Lin similarity: ``2 * IC(lcs) / (IC(a) + IC(b))`` in [0, 1]."""
        if a == b:
            return 1.0
        denominator = self._ic[a] + self._ic[b]
        if denominator <= 0:
            return 0.0
        return max(0.0, min(1.0, 2.0 * self.resnik(a, b) / denominator))

    def jiang_conrath_distance(self, a: str, b: str) -> float:
        """Jiang-Conrath distance: ``IC(a) + IC(b) - 2 * IC(lcs)``."""
        return max(0.0, self._ic[a] + self._ic[b] - 2.0 * self.resnik(a, b))
