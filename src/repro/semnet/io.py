"""Semantic network persistence (JSON) and interchange.

The paper stresses that "any other knowledge base can be used" in place
of WordNet (ODP for web pages, FOAF for social networks, ...).  For
that to be practical, users need a way to ship their own networks; this
module defines a stable JSON document format plus load/save helpers.

Format (version 1)::

    {
      "format": "repro-semnet",
      "version": 1,
      "name": "my-network",
      "concepts": [
        {"id": "star.n.02", "words": ["star", "lead"],
         "gloss": "an actor ...", "pos": "n", "frequency": 30.0},
        ...
      ],
      "relations": [
        {"source": "star.n.02", "relation": "hypernym",
         "target": "actor.n.01"},
        ...
      ]
    }

Only the forward direction of each relation pair is stored (the network
adds inverses automatically); the saver canonicalizes so save→load→save
is byte-stable.
"""

from __future__ import annotations

import json
from pathlib import Path

from .concepts import Concept, Relation
from .network import SemanticNetwork

FORMAT_NAME = "repro-semnet"
FORMAT_VERSION = 1

#: The direction stored on disk for each inverse pair.
_CANONICAL_RELATIONS = frozenset(
    {
        Relation.HYPERNYM,
        Relation.PART_HOLONYM,
        Relation.MEMBER_HOLONYM,
        Relation.ATTRIBUTE,
        Relation.SIMILAR,
        Relation.DERIVATION,
    }
)


class NetworkFormatError(ValueError):
    """Raised when a network document is malformed."""


def network_to_dict(network: SemanticNetwork) -> dict:
    """Serialize a network to the JSON-ready document structure."""
    concepts = [
        {
            "id": concept.id,
            "words": list(concept.words),
            "gloss": concept.gloss,
            "pos": concept.pos,
            # Always a float: builder declarations may use ints, and
            # 4 vs 4.0 would break byte-stable canonical output.
            "frequency": float(concept.frequency),
        }
        for concept in network
    ]
    relations = []
    seen: set[tuple[str, str, str]] = set()
    for edge in network.edges():
        relation = edge.relation
        source, target = edge.source, edge.target
        if relation not in _CANONICAL_RELATIONS:
            relation = relation.inverse
            source, target = target, source
        # Symmetric relations appear in both directions; canonicalize
        # by id order so save -> load -> save is byte-stable.
        if relation.inverse is relation and target < source:
            source, target = target, source
        key = (source, relation.value, target)
        if key in seen:
            continue
        seen.add(key)
        relations.append(
            {"source": source, "relation": relation.value, "target": target}
        )
    relations.sort(key=lambda r: (r["source"], r["relation"], r["target"]))
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": network.name,
        "concepts": concepts,
        "relations": relations,
    }


def network_from_dict(document: dict) -> SemanticNetwork:
    """Deserialize a network document; validates structure."""
    if document.get("format") != FORMAT_NAME:
        raise NetworkFormatError(
            f"not a {FORMAT_NAME} document (format={document.get('format')!r})"
        )
    if document.get("version") != FORMAT_VERSION:
        raise NetworkFormatError(
            f"unsupported version {document.get('version')!r}"
        )
    network = SemanticNetwork(document.get("name", "semnet"))
    relation_values = {relation.value: relation for relation in Relation}
    for entry in document.get("concepts", []):
        try:
            concept = Concept(
                id=entry["id"],
                words=tuple(entry["words"]),
                gloss=entry.get("gloss", ""),
                pos=entry.get("pos", "n"),
                frequency=float(entry.get("frequency", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise NetworkFormatError(f"bad concept entry {entry!r}: {exc}")
        network.add_concept(concept)
    for entry in document.get("relations", []):
        try:
            relation = relation_values[entry["relation"]]
            network.add_relation(entry["source"], relation, entry["target"])
        except KeyError as exc:
            raise NetworkFormatError(f"bad relation entry {entry!r}: {exc}")
    return network


def save_network(network: SemanticNetwork, path: str | Path) -> None:
    """Write ``network`` to ``path`` as formatted JSON."""
    document = network_to_dict(network)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=False)
        handle.write("\n")


def load_network(path: str | Path) -> SemanticNetwork:
    """Read a network from a JSON file written by :func:`save_network`."""
    with open(path, encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise NetworkFormatError(f"invalid JSON in {path}: {exc}")
    return network_from_dict(document)
