"""The curated mini-WordNet lexicon.

A hand-written semantic network covering the vocabulary of the paper's
ten test corpora (movies, theater, publications, commerce, people, food,
plants, music) on top of a WordNet-like upper ontology, with realistic
homonym structure (e.g. 5 senses of *star*, 7 of *line*, 33 of *head*)
and hand-assigned Brown-like concept frequencies.

Use :func:`build_lexicon` for a fresh network or :func:`default_lexicon`
for a process-wide shared instance (cheap repeated access in tests and
benchmarks; treat it as read-only).
"""

from __future__ import annotations

from ..builders import NetworkBuilder
from ..network import SemanticNetwork
from . import (
    base,
    commerce,
    computing,
    food,
    general,
    movies,
    music,
    people,
    plants,
    polysemy,
    publications,
    theater,
)

#: Population order: the upper ontology first, then the domain modules
#: (they may reference each other's ids — the builder resolves forward
#: references at build time, so order only affects sense ranking).
_MODULES = (base, movies, theater, publications, commerce, people, food,
            plants, music, general, computing, polysemy)


def build_lexicon() -> SemanticNetwork:
    """Construct a fresh curated lexicon network."""
    builder = NetworkBuilder("mini-wordnet")
    for module in _MODULES:
        module.populate(builder)
    return builder.build()


_cached: SemanticNetwork | None = None


def default_lexicon() -> SemanticNetwork:
    """A shared, lazily-built lexicon instance (do not mutate)."""
    global _cached
    if _cached is None:
        _cached = build_lexicon()
    return _cached


__all__ = ["build_lexicon", "default_lexicon"]
