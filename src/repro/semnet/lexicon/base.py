"""Upper ontology of the curated mini-WordNet.

Declares the abstract backbone every domain module hangs from: entity,
object, living thing, person, artifact, group, act, state, attribute,
communication, and their frequent intermediate classes.  Frequencies are
hand-assigned Brown-corpus-like counts (larger near the top, tapering
toward the leaves) so node-based similarity behaves like the paper's
weighted WordNet (cf. the paper's Figure 2).
"""

from __future__ import annotations

from ..builders import NetworkBuilder


def populate(b: NetworkBuilder) -> None:
    """Add the upper-ontology synsets to builder ``b``."""
    b.synset("entity.n.01", ["entity"],
             "that which is perceived or known or inferred to have its own "
             "distinct existence", freq=32)
    b.synset("physical_entity.n.01", ["physical entity"],
             "an entity that has physical existence",
             hypernym="entity.n.01", freq=20)
    b.synset("abstraction.n.01", ["abstraction", "abstract entity"],
             "a general concept formed by extracting common features from "
             "specific examples", hypernym="entity.n.01", freq=18)

    # -- physical branch ---------------------------------------------------
    b.synset("object.n.01", ["object", "physical object"],
             "a tangible and visible entity",
             hypernym="physical_entity.n.01", freq=154)
    b.synset("whole.n.01", ["whole", "unit"],
             "an assemblage of parts that is regarded as a single entity",
             hypernym="object.n.01", freq=46)
    b.synset("living_thing.n.01", ["living thing", "animate thing"],
             "a living or once living entity",
             hypernym="whole.n.01", freq=28)
    b.synset("organism.n.01", ["organism", "being"],
             "a living thing that has the ability to act or function "
             "independently", hypernym="living_thing.n.01", freq=70)
    b.synset("person.n.01", ["person", "individual", "someone", "soul"],
             "a human being",
             hypernym="organism.n.01", freq=812)
    b.synset("animal.n.01", ["animal", "creature", "beast"],
             "a living organism characterized by voluntary movement",
             hypernym="organism.n.01", freq=92)
    b.synset("plant.n.02", ["plant", "flora", "plant life"],
             "a living organism lacking the power of locomotion",
             hypernym="organism.n.01", freq=66)

    b.synset("natural_object.n.01", ["natural object"],
             "an object occurring naturally; not made by man",
             hypernym="whole.n.01", freq=16)
    b.synset("celestial_body.n.01", ["celestial body", "heavenly body"],
             "a natural object visible in the sky",
             hypernym="natural_object.n.01", freq=12)
    b.synset("body_part.n.01", ["body part"],
             "any part of an organism such as an organ or extremity",
             hypernym="physical_entity.n.01", freq=24)

    b.synset("artifact.n.01", ["artifact", "artefact"],
             "a man-made object taken as a whole",
             hypernym="whole.n.01", freq=60)
    b.synset("instrumentality.n.01", ["instrumentality", "instrumentation"],
             "an artifact that is instrumental in accomplishing some end",
             hypernym="artifact.n.01", freq=30)
    b.synset("device.n.01", ["device"],
             "an instrumentality invented for a particular purpose",
             hypernym="instrumentality.n.01", freq=52)
    b.synset("equipment.n.01", ["equipment"],
             "an instrumentality needed for an undertaking or to perform a "
             "service", hypernym="instrumentality.n.01", freq=36)
    b.synset("electronic_equipment.n.01", ["electronic equipment"],
             "equipment that involves the controlled conduction of "
             "electrons", hypernym="equipment.n.01", freq=14)
    b.synset("appliance.n.01", ["appliance", "home appliance"],
             "durable goods for home or office use",
             hypernym="equipment.n.01", freq=12)
    b.synset("weapon.n.01", ["weapon", "arm", "weapon system"],
             "any instrument used in fighting or hunting",
             hypernym="device.n.01", freq=28)
    b.synset("container.n.01", ["container"],
             "any object that can be used to hold things",
             hypernym="instrumentality.n.01", freq=34)
    b.synset("structure.n.01", ["structure", "construction"],
             "a thing constructed; a complex entity made of many parts",
             hypernym="artifact.n.01", freq=58)
    b.synset("building.n.01", ["building", "edifice"],
             "a structure that has a roof and walls and stands permanently "
             "in one place", hypernym="structure.n.01", freq=78)
    b.synset("covering.n.01", ["covering"],
             "an artifact that covers something else",
             hypernym="artifact.n.01", freq=14)
    b.synset("creation.n.01", ["creation"],
             "an artifact brought into existence by someone",
             hypernym="artifact.n.01", freq=22)
    b.synset("product.n.02", ["product", "production"],
             "an artifact that has been created by someone or some process",
             hypernym="creation.n.01", freq=50)
    b.synset("work.n.02", ["work", "piece of work"],
             "a product produced or accomplished through the effort or "
             "activity of a person", hypernym="product.n.02", freq=86)

    b.synset("location.n.01", ["location"],
             "a point or extent in space",
             hypernym="physical_entity.n.01", freq=40)
    b.synset("region.n.01", ["region", "part"],
             "the extended spatial location of something",
             hypernym="location.n.01", freq=64)
    b.synset("area.n.01", ["area", "country"],
             "a particular geographical region of indefinite boundary",
             hypernym="region.n.01", freq=90)
    b.synset("district.n.01", ["district", "territory"],
             "a region marked off for administrative or other purposes",
             hypernym="region.n.01", freq=36)
    b.synset("city.n.01", ["city", "metropolis", "urban center"],
             "a large and densely populated urban area",
             hypernym="district.n.01", freq=118)
    b.synset("state.n.01", ["state", "province"],
             "the territory occupied by one of the constituent "
             "administrative districts of a nation",
             hypernym="district.n.01", freq=122)
    b.synset("country.n.02", ["country", "nation", "land"],
             "the territory occupied by a nation",
             hypernym="district.n.01", freq=140)

    # -- abstraction branch --------------------------------------------------
    b.synset("group.n.01", ["group", "grouping"],
             "any number of entities considered as a unit",
             hypernym="abstraction.n.01", freq=172)
    b.synset("social_group.n.01", ["social group"],
             "people sharing some social relation",
             hypernym="group.n.01", freq=26)
    b.synset("organization.n.01", ["organization", "organisation"],
             "a group of people who work together",
             hypernym="social_group.n.01", freq=98)
    b.synset("institution.n.01", ["institution", "establishment"],
             "an organization founded and united for a specific purpose",
             hypernym="organization.n.01", freq=44)
    b.synset("company.n.01", ["company", "firm", "business"],
             "an institution created to conduct business",
             hypernym="institution.n.01", freq=174)
    b.synset("unit.n.03", ["unit", "social unit"],
             "an organization regarded as part of a larger social group",
             hypernym="organization.n.01", freq=30)
    b.synset("team.n.01", ["team", "squad"],
             "a cooperative unit of people, especially in sports",
             hypernym="unit.n.03", freq=72)
    b.synset("family.n.01", ["family", "household"],
             "a social unit living together",
             hypernym="unit.n.03", freq=142)
    b.synset("collection.n.01", ["collection", "aggregation", "assemblage"],
             "several things grouped together or considered as a whole",
             hypernym="group.n.01", freq=38)

    b.synset("psychological_feature.n.01", ["psychological feature"],
             "a feature of the mental life of a living organism",
             hypernym="abstraction.n.01", freq=12)
    b.synset("cognition.n.01", ["cognition", "knowledge"],
             "the psychological result of perception and learning and "
             "reasoning", hypernym="psychological_feature.n.01", freq=44)
    b.synset("content.n.05", ["content", "mental object", "idea"],
             "the sum or range of what has been perceived or learned",
             hypernym="cognition.n.01", freq=34)
    b.synset("concept.n.01", ["concept", "conception", "construct"],
             "an abstract or general idea inferred from specific instances",
             hypernym="content.n.05", freq=28)
    b.synset("category.n.02", ["category"],
             "a general concept that marks divisions or coordinations in a "
             "conceptual scheme", hypernym="concept.n.01", freq=22)
    b.synset("kind.n.01", ["kind", "sort", "form", "variety"],
             "a category of things distinguished by some common quality",
             hypernym="category.n.02", freq=96)
    b.synset("genre.n.01", ["genre", "category", "class"],
             "a kind of literary, artistic, or musical work marked by a "
             "distinctive style or content", hypernym="kind.n.01", freq=18)

    b.synset("event.n.01", ["event"],
             "something that happens at a given place and time",
             hypernym="psychological_feature.n.01", freq=64)
    b.synset("act.n.02", ["act", "deed", "human action"],
             "something that people do or cause to happen",
             hypernym="event.n.01", freq=76)
    b.synset("activity.n.01", ["activity"],
             "any specific behavior or pursuit",
             hypernym="act.n.02", freq=82)
    b.synset("action.n.01", ["action"],
             "something done, usually as opposed to something said",
             hypernym="act.n.02", freq=88)
    b.synset("work.n.01", ["work", "labor", "labour", "toil"],
             "activity directed toward making or doing something",
             hypernym="activity.n.01", freq=160)
    b.synset("occupation.n.01", ["occupation", "business", "job", "line of work",
                                 "line"],
             "the principal activity in your life that you do to earn money",
             hypernym="activity.n.01", freq=58)
    b.synset("game.n.01", ["game"],
             "an amusement or pastime with rules of play",
             hypernym="activity.n.01", freq=94)
    b.synset("performance.n.01", ["performance", "public presentation"],
             "a dramatic or musical entertainment presented before an "
             "audience", hypernym="act.n.02", freq=40)

    b.synset("state.n.02", ["state"],
             "the way something is with respect to its main attributes",
             hypernym="abstraction.n.01", freq=60)
    b.synset("condition.n.01", ["condition", "status"],
             "a state at a particular time",
             hypernym="state.n.02", freq=68)
    b.synset("relationship.n.01", ["relationship", "relation"],
             "a state of connectedness between people or things",
             hypernym="state.n.02", freq=42)
    b.synset("position.n.06", ["position", "status", "standing"],
             "the relative standing or rank of a person in a society",
             hypernym="state.n.02", freq=18)

    b.synset("attribute.n.01", ["attribute", "property", "dimension"],
             "an abstraction belonging to or characteristic of an entity",
             hypernym="abstraction.n.01", freq=26)
    b.synset("quality.n.01", ["quality"],
             "an essential and distinguishing attribute of something",
             hypernym="attribute.n.01", freq=54)
    b.synset("shape.n.01", ["shape", "form", "figure"],
             "the spatial arrangement of something as distinct from its "
             "substance", hypernym="attribute.n.01", freq=48)
    b.synset("time_period.n.01", ["time period", "period", "period of time"],
             "an amount of time",
             hypernym="abstraction.n.01", freq=52)
    b.synset("age.n.01", ["age"],
             "how long something has existed",
             hypernym="attribute.n.01", freq=104)
    b.synset("year.n.01", ["year", "twelvemonth"],
             "a period of time containing 365 or 366 days",
             hypernym="time_period.n.01", freq=310)
    b.synset("season.n.01", ["season"],
             "a period of the year marked by special events or activities",
             hypernym="time_period.n.01", freq=38)
    b.synset("date.n.01", ["date", "day of the month"],
             "the specified day of the month",
             hypernym="time_period.n.01", freq=60)

    b.synset("measure.n.01", ["measure", "quantity", "amount"],
             "how much there is or how many there are of something",
             hypernym="abstraction.n.01", freq=44)
    b.synset("definite_quantity.n.01", ["definite quantity"],
             "a specific measure of amount",
             hypernym="measure.n.01", freq=10)
    b.synset("number.n.02", ["number", "figure"],
             "the property possessed by a sum or total or indefinite "
             "quantity of units", hypernym="definite_quantity.n.01", freq=120)
    b.synset("monetary_value.n.01", ["monetary value", "price", "cost"],
             "the amount of money needed to purchase something",
             hypernym="measure.n.01", freq=108)
    b.synset("rate.n.02", ["rate", "charge"],
             "an amount of money charged per unit",
             hypernym="monetary_value.n.01", freq=32)
    b.synset("size.n.01", ["size"],
             "the physical magnitude of something",
             hypernym="measure.n.01", freq=50)

    b.synset("relation.n.01", ["relation"],
             "an abstraction belonging to or characteristic of two entities "
             "together", hypernym="abstraction.n.01", freq=20)
    b.synset("part.n.01", ["part", "portion", "component"],
             "something determined in relation to something that includes it",
             hypernym="relation.n.01", freq=130)

    # -- communication sub-branch (dense for document corpora) ----------------
    b.synset("communication.n.02", ["communication"],
             "something that is communicated by or to or between people",
             hypernym="abstraction.n.01", freq=36)
    b.synset("message.n.02", ["message", "content", "subject matter"],
             "what a communication that is about something is about",
             hypernym="communication.n.02", freq=30)
    b.synset("statement.n.01", ["statement"],
             "a message that is stated or declared",
             hypernym="message.n.02", freq=42)
    b.synset("description.n.01", ["description", "verbal description"],
             "a statement that represents something in words",
             hypernym="statement.n.01", freq=38)
    b.synset("summary.n.01", ["summary", "abstract", "synopsis"],
             "a brief statement that presents the main points",
             hypernym="statement.n.01", freq=24)
    b.synset("written_communication.n.01", ["written communication", "writing"],
             "communication by means of written symbols",
             hypernym="communication.n.02", freq=22)
    b.synset("writing.n.02", ["writing", "written material", "piece of writing"],
             "the work of a writer; anything expressed in letters of the "
             "alphabet", hypernym="written_communication.n.01", freq=50)
    b.synset("document.n.01", ["document", "written document", "papers"],
             "writing that provides information",
             hypernym="writing.n.02", freq=56)
    b.synset("legal_document.n.01", ["legal document", "legal instrument",
                                     "official document"],
             "a document that states some contractual relationship or "
             "grants some right", hypernym="document.n.01", freq=10)
    b.synset("commercial_document.n.01", ["commercial document",
                                          "commercial instrument"],
             "a document of or relating to commerce",
             hypernym="document.n.01", freq=8)
    b.synset("electronic_document.n.01", ["electronic document"],
             "a document that is stored and displayed by a computer",
             hypernym="document.n.01", freq=6)
    b.synset("text.n.01", ["text", "textual matter"],
             "the words of something written",
             hypernym="writing.n.02", freq=48)
    b.synset("matter.n.06", ["matter"],
             "written works (especially in books or magazines)",
             hypernym="writing.n.02", freq=12)
    b.synset("section.n.01", ["section", "subdivision"],
             "a self-contained part of a larger composition",
             hypernym="writing.n.02", freq=40)
    b.synset("name.n.01", ["name"],
             "a language unit by which a person or thing is known",
             hypernym="communication.n.02", freq=240)
    b.synset("title.n.02", ["title"],
             "the name of a work of art or literary composition",
             hypernym="name.n.01", freq=74)
    b.synset("title.n.01", ["title", "statute title", "rubric"],
             "a heading that names a statute or legislative bill",
             hypernym="name.n.01", freq=14)
    b.synset("title.n.03", ["title", "claim"],
             "an established or recognized right to something",
             hypernym="relation.n.01", freq=10)
    b.synset("title.n.04", ["title", "deed of conveyance"],
             "a legal document signed and sealed and delivered to effect a "
             "transfer of property", hypernym="legal_document.n.01", freq=8)
    b.synset("word.n.01", ["word"],
             "a unit of language that native speakers can identify",
             hypernym="communication.n.02", freq=150)
    b.synset("language.n.01", ["language", "linguistic communication"],
             "a systematic means of communicating by the use of sounds or "
             "conventional symbols", hypernym="communication.n.02", freq=72)
    b.synset("sign.n.02", ["sign", "mark"],
             "a perceptible indication of something not immediately apparent",
             hypernym="communication.n.02", freq=34)
    b.synset("indication.n.01", ["indication", "indicant"],
             "something that serves to indicate or suggest",
             hypernym="communication.n.02", freq=16)
    b.synset("direction.n.01", ["direction", "instruction"],
             "a message describing how something is to be done",
             hypernym="message.n.02", freq=28)
    b.synset("address.n.02", ["address"],
             "the place where a person or organization can be found or "
             "communicated with", hypernym="location.n.01", freq=66)
    b.synset("address.n.01", ["address", "speech"],
             "the act of delivering a formal spoken communication to an "
             "audience", hypernym="act.n.02", freq=30)

    # -- food / substance stub (expanded by the food module) -------------------
    b.synset("substance.n.01", ["substance", "matter"],
             "the tangible stuff of which an object consists",
             hypernym="physical_entity.n.01", freq=40)
    b.synset("food.n.01", ["food", "nutrient"],
             "any substance that can be metabolized by an animal to give "
             "energy and build tissue", hypernym="substance.n.01", freq=96)

    # -- roles frequently used in the corpora -----------------------------------
    b.synset("worker.n.01", ["worker"],
             "a person who works at a specific occupation",
             hypernym="person.n.01", freq=84)
    b.synset("employee.n.01", ["employee"],
             "a worker who is hired to perform a job",
             hypernym="worker.n.01", freq=62)
    b.synset("professional.n.01", ["professional", "professional person"],
             "a person engaged in one of the learned professions",
             hypernym="worker.n.01", freq=36)
    b.synset("creator.n.02", ["creator"],
             "a person who grows or makes or invents things",
             hypernym="person.n.01", freq=18)
    b.synset("maker.n.01", ["maker", "shaper"],
             "a person who makes things",
             hypernym="creator.n.02", freq=12)
    b.synset("artist.n.01", ["artist", "creative person"],
             "a person whose creative work shows sensitivity and imagination",
             hypernym="creator.n.02", freq=46)
    b.synset("communicator.n.01", ["communicator"],
             "a person who communicates with others",
             hypernym="person.n.01", freq=10)
    b.synset("writer.n.01", ["writer"],
             "a person who writes books or stories or articles as a "
             "profession", hypernym="communicator.n.01", freq=68)
    b.synset("leader.n.01", ["leader"],
             "a person who rules or guides or inspires others",
             hypernym="person.n.01", freq=74)
    b.synset("expert.n.01", ["expert"],
             "a person with special knowledge who performs skillfully",
             hypernym="person.n.01", freq=32)
    b.synset("entertainer.n.01", ["entertainer"],
             "a person who tries to please or amuse",
             hypernym="person.n.01", freq=20)
    b.synset("contestant.n.01", ["contestant"],
             "a person who participates in competitions",
             hypernym="person.n.01", freq=14)
    b.synset("player.n.01", ["player", "participant"],
             "a person who participates in or is skilled at some game",
             hypernym="contestant.n.01", freq=88)
    b.synset("member.n.01", ["member", "fellow member"],
             "one of the persons who compose a social group",
             hypernym="person.n.01", freq=112)
    b.synset("adult.n.01", ["adult", "grownup"],
             "a fully developed person",
             hypernym="person.n.01", freq=58)
    b.synset("man.n.01", ["man", "adult male"],
             "an adult male person",
             hypernym="adult.n.01", freq=372)
    b.synset("woman.n.01", ["woman", "adult female"],
             "an adult female person",
             hypernym="adult.n.01", freq=224)
