"""Commerce / retail synsets (Amazon product corpus, pricing vocabulary).

Products, offers, brands, reviews, sellers, shipping, stock — plus the
polysemous commercial words (*stock*, *order*, *offer*, *brand*,
*item*, *list*, *charge*) the Group 2 documents lean on.
"""

from __future__ import annotations

from ..builders import NetworkBuilder
from ..concepts import Relation


def populate(b: NetworkBuilder) -> None:
    """Add commerce-domain synsets to builder ``b``."""
    b.synset("commodity.n.01", ["commodity", "goods", "trade good"],
             "articles of commerce",
             hypernym="artifact.n.01", freq=22)
    b.synset("merchandise.n.01", ["merchandise", "ware", "product"],
             "commodities offered for sale",
             hypernym="commodity.n.01", freq=30)
    b.synset("item.n.01", ["item", "point"],
             "a distinct part that can be specified separately in a group "
             "of things that could be enumerated on a list",
             hypernym="part.n.01", freq=38)
    b.synset("item.n.02", ["item", "piece"],
             "a whole individual unit, especially when included in a list "
             "of goods or collection", hypernym="whole.n.01", freq=26)
    b.synset("item.n.03", ["item", "news item"],
             "a short piece of news printed in a newspaper or magazine",
             hypernym="article.n.01", freq=8)
    b.synset("list.n.01", ["list", "listing"],
             "a database containing an ordered array of items such as names "
             "or products", hypernym="document.n.01", freq=44)
    b.synset("list.n.02", ["list", "tilt", "inclination", "lean"],
             "the property possessed by a line or surface that departs from "
             "the vertical", hypernym="attribute.n.01", freq=6)
    b.synset("catalog.n.01", ["catalog", "catalogue"],
             "a complete list of things, usually arranged systematically "
             "and often with descriptions", hypernym="list.n.01", freq=16)
    b.synset("brand.n.01", ["brand", "brand name", "trade name", "marque"],
             "a name given to a product or service by its maker",
             hypernym="name.n.01", freq=20)
    b.synset("brand.n.02", ["brand", "make"],
             "a recognizable kind of product",
             hypernym="kind.n.01", freq=14)
    b.synset("brand.n.03", ["brand", "firebrand"],
             "a piece of wood that has been burned or is burning",
             hypernym="object.n.01", freq=4)
    b.synset("stock.n.01", ["stock", "inventory"],
             "the merchandise that a shop has on hand",
             hypernym="merchandise.n.01", freq=26)
    b.synset("stock.n.02", ["stock", "share", "capital stock"],
             "the capital raised by a corporation through the issue of "
             "shares entitling holders to partial ownership",
             hypernym="monetary_value.n.01", freq=34)
    b.synset("stock.n.03", ["stock", "broth"],
             "liquid in which meat and vegetables are simmered, used as a "
             "basis for soup", hypernym="food.n.01", freq=10)
    b.synset("stock.n.04", ["stock", "breed", "strain"],
             "a special variety of domesticated animals within a species",
             hypernym="kind.n.01", freq=12)
    b.synset("offer.n.01", ["offer", "offering"],
             "a proposal of a price at which a seller is willing to sell",
             hypernym="statement.n.01", freq=18)
    b.synset("offer.n.02", ["offer", "bid", "tender"],
             "something offered, as a special price or discounted rate",
             hypernym="monetary_value.n.01", freq=10)
    b.synset("order.n.01", ["order", "purchase order"],
             "a commercial document used to request that someone supply "
             "something in return for payment",
             hypernym="commercial_document.n.01",
             freq=28)
    b.synset("order.n.02", ["order", "ordering"],
             "the arrangement of elements in a specified sequence",
             hypernym="attribute.n.01", freq=40)
    b.synset("order.n.03", ["order", "decree", "edict"],
             "a legally binding command or decision",
             hypernym="statement.n.01", freq=24)
    b.synset("sale.n.01", ["sale"],
             "the general activity of selling goods or services in exchange "
             "for money", hypernym="activity.n.01", freq=36)
    b.synset("discount.n.01", ["discount", "price reduction", "deduction"],
             "the act of reducing the selling price of merchandise",
             hypernym="monetary_value.n.01", freq=12)
    b.synset("shipping.n.01", ["shipping", "transportation", "transport"],
             "the commercial enterprise of moving goods and materials to a "
             "customer", hypernym="activity.n.01", freq=14)
    b.synset("delivery.n.01", ["delivery", "bringing"],
             "the act of delivering or distributing something such as goods "
             "or mail", hypernym="act.n.02", freq=16)
    b.synset("seller.n.01", ["seller", "marketer", "vender", "vendor"],
             "someone who promotes or exchanges goods or services for "
             "money", hypernym="worker.n.01", freq=18)
    b.synset("customer.n.01", ["customer", "client", "buyer", "shopper"],
             "someone who pays for goods or services",
             hypernym="person.n.01", freq=34)
    b.synset("store.n.01", ["store", "shop", "market"],
             "a mercantile establishment for the retail sale of goods or "
             "services", hypernym="institution.n.01", freq=46)
    b.synset("warranty.n.01", ["warranty", "guarantee", "warrantee"],
             "a written assurance that a product or service will be "
             "provided or will meet certain specifications",
             hypernym="legal_document.n.01", freq=8)
    b.synset("availability.n.01", ["availability", "handiness"],
             "the quality of being at hand when needed, as merchandise in "
             "stock", hypernym="quality.n.01", freq=10)
    b.synset("weight.n.01", ["weight"],
             "the vertical force exerted by a mass as a result of gravity",
             hypernym="measure.n.01", freq=52)
    b.synset("model.n.01", ["model", "simulation"],
             "a hypothetical description of a complex entity or process",
             hypernym="concept.n.01", freq=30)
    b.synset("model.n.02", ["model", "poser", "fashion model"],
             "a person who poses for a photographer or painter",
             hypernym="worker.n.01", freq=12)
    b.synset("model.n.03", ["model", "example"],
             "a type of product, as a particular design of a manufactured "
             "item", hypernym="kind.n.01", freq=18)
    b.synset("feature.n.01", ["feature", "characteristic"],
             "a prominent attribute or aspect of something such as a "
             "product", hypernym="attribute.n.01", freq=32)
    b.synset("condition.n.02", ["condition", "shape"],
             "the state of (good) health or repair of an object offered for "
             "sale", hypernym="condition.n.01", freq=14,
             similar_to="state.n.02")

    # Reviews and ratings reuse the movie-module synsets (review.n.01,
    # rating.n.01); the product hierarchy anchors to merchandise.
    b.relation("stock.n.01", Relation.PART_HOLONYM, "store.n.01")
    b.relation("item.n.02", Relation.MEMBER_HOLONYM, "catalog.n.01")
