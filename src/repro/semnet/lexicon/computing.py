"""Computing / database synsets (SIGMOD Record article topics).

The proceedings corpus embeds article titles and abstracts about
database systems; this vocabulary gives those value tokens senses —
with the field's classic homonyms (*query*, *index*, *view*, *stream*,
*transaction*, *graph*, *cache*, *schema*) colliding against everyday
readings.
"""

from __future__ import annotations

from ..builders import NetworkBuilder
from ..concepts import Relation


def populate(b: NetworkBuilder) -> None:
    """Add computing-domain synsets to builder ``b``."""
    b.synset("computer.n.01", ["computer", "computing machine",
                               "data processor"],
             "a machine for performing calculations automatically",
             hypernym="electronic_equipment.n.01", freq=70)
    b.synset("software.n.01", ["software", "software system", "program"],
             "written programs and procedures that can be stored and run "
             "by a computer", hypernym="creation.n.01", freq=46)
    b.synset("database.n.01", ["database"],
             "an organized collection of data stored in a computer",
             hypernym="collection.n.01", freq=28)
    b.synset("data.n.01", ["data", "information"],
             "a collection of facts from which conclusions may be drawn, "
             "stored and queried in a database", hypernym="collection.n.01",
             freq=88)
    b.synset("query.n.01", ["query", "database query"],
             "a request for data or information from a database",
             hypernym="statement.n.01", freq=18)
    b.synset("query.n.02", ["query", "inquiry", "enquiry", "question"],
             "an instance of questioning someone",
             hypernym="communication.n.02", freq=34)
    b.synset("index.n.01", ["index", "database index"],
             "a data structure that speeds the retrieval of records from a "
             "database", hypernym="list.n.01", freq=16)
    b.synset("index.n.02", ["index"],
             "an alphabetical listing of names and topics with the page "
             "numbers where they appear in a book",
             hypernym="list.n.01", freq=22)
    b.synset("index.n.03", ["index", "index number", "indicant"],
             "a number or ratio derived from a series of observations",
             hypernym="number.n.02", freq=14)
    b.synset("view.n.02", ["view", "database view"],
             "a virtual table derived by a query over a database",
             hypernym="database.n.01", freq=8)
    b.synset("view.n.01", ["view", "sight", "survey"],
             "the act of looking or seeing or observing",
             hypernym="act.n.02", freq=40)
    b.synset("view.n.03", ["view", "opinion", "sentiment"],
             "a personal belief or judgment",
             hypernym="content.n.05", freq=36)
    b.synset("stream.n.02", ["stream", "data stream"],
             "an unbounded sequence of data records processed as they "
             "arrive", hypernym="collection.n.01", freq=10)
    b.synset("stream.n.01", ["stream", "brook", "creek"],
             "a natural body of running water flowing on the earth",
             hypernym="natural_object.n.01", freq=38)
    b.synset("transaction.n.01", ["transaction", "dealing"],
             "the act of transacting business within or between groups",
             hypernym="act.n.02", freq=30)
    b.synset("transaction.n.02", ["transaction", "database transaction"],
             "a unit of work executed atomically against a database",
             hypernym="act.n.02", freq=8)
    b.synset("recovery.n.01", ["recovery", "retrieval"],
             "the act of regaining or saving something lost, as a database "
             "restoring a consistent state", hypernym="act.n.02", freq=16)
    b.synset("recovery.n.02", ["recovery", "convalescence"],
             "a gradual return to health after illness",
             hypernym="condition.n.01", freq=18)
    b.synset("graph.n.01", ["graph", "graphical record", "chart"],
             "a visual representation of the relations between quantities",
             hypernym="picture.n.02", freq=20)
    b.synset("graph.n.02", ["graph"],
             "a data structure of nodes connected by edges, as stored by a "
             "graph database", hypernym="concept.n.01", freq=10)
    b.synset("cache.n.01", ["cache", "memory cache"],
             "computer memory that keeps frequently used data close to the "
             "processor", hypernym="electronic_equipment.n.01", freq=10)
    b.synset("cache.n.02", ["cache", "hoard", "stash"],
             "a secret store of valuables or money",
             hypernym="collection.n.01", freq=8)
    b.synset("schema.n.01", ["schema", "database schema"],
             "the structure of a database described in a formal language",
             hypernym="model.n.01", freq=8)
    b.synset("schema.n.02", ["schema", "scheme", "outline"],
             "a schematic or preliminary plan",
             hypernym="concept.n.01", freq=16)
    b.synset("integration.n.01", ["integration", "data integration"],
             "the act of combining data from heterogeneous sources into "
             "one view", hypernym="act.n.02", freq=10)
    b.synset("optimization.n.01", ["optimization", "optimisation"],
             "the act of rendering a plan or query as effective as "
             "possible", hypernym="act.n.02", freq=12)
    b.synset("workload.n.01", ["workload", "work load"],
             "the amount of work assigned to a system or person",
             hypernym="measure.n.01", freq=10)
    b.synset("maintenance.n.01", ["maintenance", "upkeep"],
             "activity involved in keeping something, such as a view or an "
             "index, in proper operating condition",
             hypernym="activity.n.01", freq=18)
    b.synset("forecasting.n.01", ["forecasting", "prediction", "foretelling"],
             "a statement made about the future, as of a workload",
             hypernym="statement.n.01", freq=12)
    b.synset("structure.n.02", ["structure", "data structure"],
             "an organization of data in a computer program, such as an "
             "index or a graph", hypernym="concept.n.01", freq=12)
    b.synset("record.n.04", ["record", "database record", "row", "tuple"],
             "a collection of related fields treated as a unit by a "
             "database", hypernym="part.n.01", freq=10)

    b.relation("index.n.01", Relation.PART_HOLONYM, "database.n.01")
    b.relation("record.n.04", Relation.PART_HOLONYM, "database.n.01")
    b.relation("query.n.01", Relation.DERIVATION, "database.n.01")
    b.relation("view.n.02", Relation.DERIVATION, "query.n.01")
    b.relation("transaction.n.02", Relation.DERIVATION, "database.n.01")
    b.relation("schema.n.01", Relation.DERIVATION, "database.n.01")
    b.relation("cache.n.01", Relation.PART_HOLONYM, "computer.n.01")
    b.relation("software.n.01", Relation.DERIVATION, "computer.n.01")
