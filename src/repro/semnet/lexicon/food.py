"""Food / menu synsets (W3Schools ``food_menu.dtd``, Group 4 corpus).

Breakfast-menu vocabulary: dishes, courses, calories, servings — with the
polysemous *dish*, *course*, *menu*, *serving*, *toast* entries.
"""

from __future__ import annotations

from ..builders import NetworkBuilder
from ..concepts import Relation


def populate(b: NetworkBuilder) -> None:
    """Add food-domain synsets to builder ``b``."""
    b.synset("dish.n.02", ["dish"],
             "a particular item of prepared food",
             hypernym="food.n.01", freq=44)
    b.synset("dish.n.01", ["dish", "dishful"],
             "a piece of dishware normally used as a container for holding "
             "or serving food", hypernym="container.n.01", freq=20)
    b.synset("dish.n.03", ["dish", "dish aerial", "saucer"],
             "directional antenna consisting of a parabolic reflector",
             hypernym="electronic_equipment.n.01", freq=6)
    b.synset("menu.n.01", ["menu", "bill of fare", "card", "carte"],
             "a list of dishes available at a restaurant",
             hypernym="list.n.01", freq=18)
    b.synset("menu.n.02", ["menu", "computer menu"],
             "a list of options available to a computer user, displayed on "
             "screen", hypernym="list.n.01", freq=10)
    b.synset("course.n.02", ["course"],
             "part of a meal served at one time",
             hypernym="food.n.01", freq=14)
    b.synset("course.n.01", ["course", "course of study", "class"],
             "education imparted in a series of lessons or meetings",
             hypernym="activity.n.01", freq=40)
    b.synset("course.n.03", ["course", "trend", "path"],
             "general line of orientation or movement",
             hypernym="attribute.n.01", freq=24)
    b.synset("breakfast.n.01", ["breakfast"],
             "the first meal of the day, usually in the morning",
             hypernym="food.n.01", freq=30)
    b.synset("meal.n.01", ["meal", "repast"],
             "the food served and eaten at one time",
             hypernym="food.n.01", freq=44)
    b.synset("serving.n.01", ["serving", "portion", "helping"],
             "an individual quantity of food or drink taken as part of a "
             "meal", hypernym="measure.n.01", freq=12)
    b.synset("calorie.n.01", ["calorie", "kilocalorie", "calories"],
             "a unit of heat used to express the energy value of foods",
             hypernym="definite_quantity.n.01", freq=16)
    b.synset("waffle.n.01", ["waffle", "waffles"],
             "pancake batter baked in a waffle iron, served for breakfast",
             hypernym="dish.n.02", freq=6)
    b.synset("toast.n.01", ["toast"],
             "slices of bread that have been browned by dry heat",
             hypernym="dish.n.02", freq=22)
    b.synset("toast.n.02", ["toast", "pledge"],
             "a drink in honor of or to the health of a person or event",
             hypernym="act.n.02", freq=8)
    b.synset("pancake.n.01", ["pancake", "flapjack", "hotcake"],
             "a flat cake of thin batter fried on both sides on a griddle "
             "and eaten for breakfast", hypernym="dish.n.02", freq=8)
    b.synset("egg.n.01", ["egg", "eggs"],
             "animal reproductive body used as food, especially fried or "
             "boiled for breakfast", hypernym="food.n.01", freq=34)
    b.synset("bread.n.01", ["bread", "breadstuff", "staff of life"],
             "food made from dough of flour and usually raised with yeast",
             hypernym="food.n.01", freq=38)
    b.synset("syrup.n.01", ["syrup", "sirup", "maple syrup"],
             "a thick sweet sticky liquid poured over pancakes or waffles",
             hypernym="food.n.01", freq=6)
    b.synset("berry.n.01", ["berry", "strawberry", "blueberry"],
             "any of numerous small and pulpy edible fruits used as a "
             "topping for breakfast dishes", hypernym="food.n.01", freq=12)
    b.synset("cream.n.01", ["cream", "whipped cream"],
             "the part of milk containing the butterfat, often whipped as a "
             "topping", hypernym="food.n.01", freq=16)
    b.synset("coffee.n.01", ["coffee", "java"],
             "a beverage consisting of an infusion of ground coffee beans, "
             "drunk at breakfast", hypernym="food.n.01", freq=42)
    b.synset("juice.n.01", ["juice"],
             "the liquid part that can be extracted from fruit, served as a "
             "breakfast drink", hypernym="food.n.01", freq=18)
    b.synset("restaurant.n.01", ["restaurant", "eating house", "eatery"],
             "a building where people go to eat meals from a menu",
             hypernym="building.n.01", freq=26)
    b.synset("chef.n.01", ["chef", "cook"],
             "a professional cook who prepares dishes in a restaurant",
             hypernym="professional.n.01", freq=14)

    b.relation("dish.n.02", Relation.MEMBER_HOLONYM, "menu.n.01")
    b.relation("course.n.02", Relation.PART_HOLONYM, "meal.n.01")
    b.relation("breakfast.n.01", Relation.HYPERNYM, "meal.n.01")
