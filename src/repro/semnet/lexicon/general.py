"""General vocabulary: polysemous everyday words used in document values.

The test corpora embed free text (Shakespeare verse lines, movie plots,
product reviews).  For those value tokens to participate in — and
benefit from — disambiguation the way the paper's structure-and-content
model intends, the lexicon must know them, with realistic homonymy.
"""

from __future__ import annotations

from ..builders import NetworkBuilder


def populate(b: NetworkBuilder) -> None:
    """Add general-vocabulary synsets to builder ``b``."""
    # -- royalty / epic vocabulary (Shakespeare lines) -----------------------
    b.synset("king.n.01", ["king", "male monarch"],
             "a male sovereign ruler of a kingdom",
             hypernym="leader.n.01", freq=96)
    b.synset("king.n.02", ["king"],
             "a checker that has been moved to the opponent's first row",
             hypernym="object.n.01", freq=6)
    b.synset("king.n.03", ["king", "magnate", "baron"],
             "a very wealthy or powerful businessman",
             hypernym="leader.n.01", freq=10)
    b.synset("queen.n.01", ["queen", "female monarch"],
             "a female sovereign ruler of a kingdom",
             hypernym="leader.n.01", freq=44)
    b.synset("queen.n.02", ["queen"],
             "the most powerful chess piece",
             hypernym="object.n.01", freq=8)
    b.synset("crown.n.01", ["crown", "diadem"],
             "an ornamental jeweled headdress signifying sovereignty",
             hypernym="covering.n.01", freq=18)
    b.synset("crown.n.02", ["crown", "pennant"],
             "the award given to the champion",
             hypernym="sign.n.02", freq=8)
    b.synset("crown.n.03", ["crown", "treetop"],
             "the upper branches and leaves of a tree or other plant",
             hypernym="part.n.01", freq=10)
    b.synset("kingdom.n.01", ["kingdom", "realm"],
             "a country with a king or queen as head of state",
             hypernym="country.n.02", freq=26)
    b.synset("kingdom.n.02", ["kingdom"],
             "the highest taxonomic group into which organisms are "
             "grouped, as the plant kingdom", hypernym="category.n.02",
             freq=8)
    b.synset("throne.n.01", ["throne"],
             "the chair of state of a king or queen",
             hypernym="artifact.n.01", freq=14)
    b.synset("sword.n.01", ["sword", "blade", "steel"],
             "a cutting or thrusting weapon that has a long metal blade",
             hypernym="weapon.n.01", freq=22)
    b.synset("banner.n.01", ["banner", "standard"],
             "any distinctive flag carried into battle",
             hypernym="sign.n.02", freq=10)
    b.synset("banner.n.02", ["banner", "streamer"],
             "a newspaper headline that runs across the full page",
             hypernym="section.n.01", freq=4)
    b.synset("council.n.01", ["council"],
             "a body serving in an administrative or advisory capacity",
             hypernym="organization.n.01", freq=36)
    b.synset("feast.n.01", ["feast", "banquet", "spread"],
             "a ceremonial meal with elaborate food",
             hypernym="meal.n.01", freq=12)
    b.synset("ghost.n.01", ["ghost", "shade", "specter", "wraith"],
             "the visible disembodied spirit of a dead person",
             hypernym="person.n.01", freq=16)
    b.synset("ghost.n.02", ["ghost", "ghostwriter"],
             "a writer who gives their work to another person for "
             "publication under that person's name",
             hypernym="writer.n.01", freq=4)
    b.synset("grave.n.01", ["grave", "tomb"],
             "a place for the burial of a corpse",
             hypernym="location.n.01", freq=24)
    b.synset("storm.n.01", ["storm", "violent storm", "tempest"],
             "a violent weather condition with winds and rain or snow",
             hypernym="event.n.01", freq=34)
    b.synset("storm.n.02", ["storm", "tempest"],
             "a violent commotion or disturbance among people",
             hypernym="event.n.01", freq=10)
    b.synset("night.n.01", ["night", "nighttime", "dark"],
             "the time after sunset and before sunrise",
             hypernym="time_period.n.01", freq=118)
    b.synset("night.n.02", ["night"],
             "a period of ignorance or gloom or despair",
             hypernym="condition.n.01", freq=6)
    b.synset("love.n.01", ["love"],
             "a strong positive emotion of regard and affection",
             hypernym="state.n.02", freq=96)
    b.synset("love.n.02", ["love", "beloved", "dearest", "honey"],
             "a beloved person",
             hypernym="person.n.01", freq=20)
    b.synset("love.n.03", ["love"],
             "a score of zero in tennis or squash",
             hypernym="number.n.02", freq=4)
    b.synset("heart.n.01", ["heart", "pump", "ticker"],
             "the hollow muscular organ that pumps the blood through the "
             "body", hypernym="body_part.n.01", freq=62)
    b.synset("heart.n.02", ["heart", "bosom"],
             "the locus of feelings and intuitions",
             hypernym="cognition.n.01", freq=38)
    b.synset("heart.n.03", ["heart", "center", "middle", "eye"],
             "an area that is approximately central within some larger "
             "region", hypernym="location.n.01", freq=22)
    b.synset("blood.n.01", ["blood"],
             "the fluid that is pumped through the body by the heart",
             hypernym="substance.n.01", freq=52)
    b.synset("blood.n.02", ["blood", "descent", "lineage", "stock"],
             "the descendants of one common ancestor",
             hypernym="family.n.01", freq=14)
    b.synset("honor.n.01", ["honor", "honour", "laurels"],
             "a tangible symbol signifying approval or distinction",
             hypernym="sign.n.02", freq=18)
    b.synset("honor.n.02", ["honor", "honour", "pureness"],
             "the quality of being honorable and having a good name",
             hypernym="quality.n.01", freq=24)
    b.synset("fortune.n.01", ["fortune", "luck", "destiny", "fate"],
             "an unknown and unpredictable phenomenon that causes events "
             "to follow a certain course", hypernym="psychological_feature.n.01",
             freq=28)
    b.synset("fortune.n.02", ["fortune", "wealth"],
             "an amount of money or material possessions of considerable "
             "value", hypernym="monetary_value.n.01", freq=18)
    b.synset("daughter.n.01", ["daughter", "girl"],
             "a female human offspring",
             hypernym="person.n.01", freq=54)
    b.synset("messenger.n.01", ["messenger", "courier", "herald"],
             "a person who carries a message",
             hypernym="worker.n.01", freq=12)
    b.synset("fool.n.01", ["fool", "jester", "motley fool"],
             "a professional clown employed to entertain a king or "
             "nobleman in the middle ages", hypernym="entertainer.n.01",
             freq=10)
    b.synset("fool.n.02", ["fool", "sap", "muggins"],
             "a person who lacks good judgment",
             hypernym="person.n.01", freq=16)
    b.synset("nurse.n.01", ["nurse"],
             "one skilled in caring for young children or the sick",
             hypernym="professional.n.01", freq=32)
    b.synset("duke.n.01", ["duke"],
             "a nobleman of the highest rank",
             hypernym="leader.n.01", freq=14)
    b.synset("lord.n.01", ["lord", "noble", "nobleman"],
             "a titled peer of the realm",
             hypernym="leader.n.01", freq=30)
    b.synset("lady.n.01", ["lady", "gentlewoman"],
             "a woman of refinement or high social standing",
             hypernym="woman.n.01", freq=42)
    b.synset("knight.n.01", ["knight"],
             "an armored warrior of noble birth in the middle ages",
             hypernym="person.n.01", freq=18)
    b.synset("knight.n.02", ["knight", "horse"],
             "a chess piece shaped like a horse's head",
             hypernym="object.n.01", freq=6)

    # -- narrative / urban vocabulary (plots, reviews) ---------------------------
    b.synset("window.n.01", ["window"],
             "a framed opening in a wall to admit light or air",
             hypernym="structure.n.01", freq=80)
    b.synset("window.n.02", ["window"],
             "a rectangular on-screen area where a computer program "
             "displays its output", hypernym="device.n.01", freq=12)
    b.synset("window.n.03", ["window", "rear window"],
             "the transparent opening at the back of a vehicle",
             hypernym="part.n.01", freq=6)
    b.synset("neighbor.n.01", ["neighbor", "neighbour"],
             "a person who lives or is located near another",
             hypernym="person.n.01", freq=36)
    b.synset("photographer.n.01", ["photographer", "lensman"],
             "someone who takes photographs professionally",
             hypernym="professional.n.01", freq=14)
    b.synset("detective.n.01", ["detective", "investigator", "tec"],
             "a police officer or private agent who investigates crimes",
             hypernym="professional.n.01", freq=20)
    b.synset("reporter.n.01", ["reporter", "newsman", "correspondent"],
             "a person who gathers news and writes newspaper stories",
             hypernym="communicator.n.01", freq=22)
    b.synset("harbor.n.01", ["harbor", "harbour", "haven", "seaport"],
             "a sheltered port where ships can take on or discharge cargo",
             hypernym="location.n.01", freq=18)
    b.synset("fog.n.01", ["fog", "fogginess", "mist"],
             "droplets of water vapor suspended in the air near the ground",
             hypernym="substance.n.01", freq=14)
    b.synset("lighthouse.n.01", ["lighthouse", "beacon", "pharos"],
             "a tower with a light that gives warning of shoals to passing "
             "ships", hypernym="building.n.01", freq=8)
    b.synset("room.n.01", ["room"],
             "an area within a building enclosed by walls and floor and "
             "ceiling", hypernym="location.n.01", freq=100)
    b.synset("room.n.02", ["room", "way", "elbow room"],
             "opportunity or scope for doing something",
             hypernym="state.n.02", freq=12)
    b.synset("wheelchair.n.01", ["wheelchair"],
             "a movable chair mounted on large wheels for invalids",
             hypernym="device.n.01", freq=6)
    b.synset("spy.n.01", ["spy", "undercover agent"],
             "a secret agent hired to obtain information about an enemy",
             hypernym="person.n.01", freq=14)
    b.synset("camera.n.01", ["camera", "photographic camera"],
             "equipment for taking photographs",
             hypernym="electronic_equipment.n.01", freq=24)
    b.synset("monitor.n.01", ["monitor", "display", "screen"],
             "a device that displays signals on a screen",
             hypernym="electronic_equipment.n.01", freq=16)
    b.synset("monitor.n.02", ["monitor", "proctor"],
             "someone who supervises an examination or keeps order",
             hypernym="person.n.01", freq=8)
    b.synset("keyboard.n.01", ["keyboard"],
             "a device consisting of a set of keys for typing or playing "
             "music", hypernym="electronic_equipment.n.01", freq=14)
    b.synset("notebook.n.01", ["notebook"],
             "a book with blank pages for recording notes or memoranda",
             hypernym="book.n.01", freq=12)
    b.synset("notebook.n.02", ["notebook", "notebook computer", "laptop"],
             "a small compact portable computer",
             hypernym="electronic_equipment.n.01", freq=10)
    b.synset("lamp.n.01", ["lamp"],
             "a piece of furniture holding one or more electric light "
             "bulbs", hypernym="appliance.n.01", freq=28)
    b.synset("kettle.n.01", ["kettle", "boiler"],
             "a metal pot for stewing or boiling, usually with a lid",
             hypernym="container.n.01", freq=10)
    b.synset("kettle.n.02", ["kettle", "kettledrum", "tympanum"],
             "a large hemispherical brass or copper percussion instrument",
             hypernym="instrument.n.01", freq=4)
    b.synset("backpack.n.01", ["backpack", "knapsack", "rucksack"],
             "a bag carried by a strap on your back or shoulder",
             hypernym="container.n.01", freq=8)
    b.synset("blender.n.01", ["blender", "liquidizer"],
             "an electric kitchen appliance for mixing or chopping food",
             hypernym="appliance.n.01", freq=6)
    b.synset("teapot.n.01", ["teapot"],
             "a pot for brewing and serving tea",
             hypernym="container.n.01", freq=6)
    b.synset("scarf.n.01", ["scarf"],
             "a garment worn around the head or neck for warmth or "
             "decoration", hypernym="covering.n.01", freq=10)
    b.synset("wallet.n.01", ["wallet", "billfold", "pocketbook"],
             "a pocket-size case for holding papers and paper money",
             hypernym="container.n.01", freq=8)
    b.synset("ferry.n.01", ["ferry", "ferryboat"],
             "a boat that transports people or vehicles across a body of "
             "water on a regular schedule", hypernym="instrumentality.n.01",
             freq=10)
    b.synset("lantern.n.01", ["lantern"],
             "a portable light with a transparent protective case",
             hypernym="device.n.01", freq=8)
    b.synset("echo.n.01", ["echo", "reverberation", "sound reflection"],
             "the repetition of a sound from reflection of the sound waves",
             hypernym="event.n.01", freq=12)
    b.synset("balcony.n.01", ["balcony"],
             "a platform projecting from the wall of a building",
             hypernym="structure.n.01", freq=10)
    b.synset("letter.n.01", ["letter", "missive"],
             "a written message addressed to a person or organization",
             hypernym="document.n.01", freq=54)
    b.synset("letter.n.02", ["letter", "letter of the alphabet"],
             "a written symbol representing a speech sound",
             hypernym="sign.n.02", freq=30)
    b.synset("coast.n.01", ["coast", "seashore", "seacoast"],
             "the shore of a sea or ocean",
             hypernym="region.n.01", freq=30)
    b.synset("sky.n.01", ["sky"],
             "the atmosphere and outer space as viewed from the earth",
             hypernym="natural_object.n.01", freq=46)
    b.synset("corner.n.01", ["corner", "nook"],
             "an interior angle formed by two meeting walls or regions",
             hypernym="location.n.01", freq=28)
    b.synset("train.n.01", ["train", "railroad train"],
             "public transport provided by a line of railway cars coupled "
             "together", hypernym="instrumentality.n.01", freq=40)
    b.synset("train.n.02", ["train", "string"],
             "a sequentially ordered set of things or events",
             hypernym="collection.n.01", freq=12)
    b.synset("reel.n.01", ["reel"],
             "a winder around which film or tape or wire is wound",
             hypernym="device.n.01", freq=6)
    b.synset("reel.n.02", ["reel"],
             "a lively dance of scottish highlanders",
             hypernym="activity.n.01", freq=4)
    b.synset("shadow.n.01", ["shadow", "shadows"],
             "a dark area where direct light is blocked by an object",
             hypernym="attribute.n.01", freq=26)
    b.synset("glass.n.01", ["glass"],
             "a brittle transparent solid used for windows and bottles",
             hypernym="substance.n.01", freq=44)
    b.synset("glass.n.02", ["glass", "drinking glass"],
             "a container for holding liquids while drinking",
             hypernym="container.n.01", freq=22)
    b.synset("main_street.n.01", ["main street", "high street"],
             "the principal street of a town",
             hypernym="street.n.01", freq=8)
    b.synset("bacon.n.01", ["bacon"],
             "cured meat from the back and sides of a hog, fried for "
             "breakfast", hypernym="food.n.01", freq=12)
    b.synset("sausage.n.01", ["sausage"],
             "highly seasoned minced meat stuffed in casings, often served "
             "at breakfast", hypernym="food.n.01", freq=10)
    b.synset("player.n.02", ["player", "instrumentalist", "musician"],
             "someone who plays a musical instrument",
             hypernym="performer.n.01", freq=22)
    b.synset("player.n.03", ["player", "record player", "phonograph"],
             "machine in which rotating records cause a stylus to vibrate",
             hypernym="electronic_equipment.n.01", freq=8)
