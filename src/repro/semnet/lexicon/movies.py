"""Movie-domain synsets (IMDB ``movies.dtd``, the paper's Figure 1 example).

Contains the paper's running vocabulary — *picture*, *cast*, *star*,
*director*, *plot* — with full homonym structure (e.g. *star* the
celestial body vs. the performer; *cast* the troupe vs. the throw vs. the
surgical dressing), plus the celebrity proper nouns used in Figure 1
(*Kelly* as Grace/Gene/Emmett Kelly, *Stewart* as James Stewart vs. the
royal house).
"""

from __future__ import annotations

from ..builders import NetworkBuilder
from ..concepts import Relation


def populate(b: NetworkBuilder) -> None:
    """Add movie-domain synsets to builder ``b``."""
    # -- works and showings ----------------------------------------------------
    b.synset("show.n.03", ["show"],
             "a social event involving a public performance or entertainment",
             hypernym="event.n.01", freq=46)
    b.synset("movie.n.01", ["movie", "film", "picture", "motion picture",
                            "moving picture", "pic", "flick"],
             "a form of entertainment that enacts a story by sound and a "
             "sequence of images", hypernym="show.n.03", freq=84)
    b.synset("picture.n.02", ["picture", "image", "icon"],
             "a visual representation of an object or scene or person "
             "produced on a surface", hypernym="artifact.n.01", freq=62)
    b.synset("picture.n.03", ["picture", "mental picture", "impression"],
             "a clear and telling mental image",
             hypernym="content.n.05", freq=18)
    b.synset("picture.n.04", ["picture", "scene"],
             "a situation treated as an observable object",
             hypernym="state.n.02", freq=10)
    b.synset("film.n.02", ["film", "photographic film"],
             "photographic material consisting of a base of celluloid "
             "covered with a photographic emulsion",
             hypernym="artifact.n.01", freq=20)
    b.synset("film.n.03", ["film", "thin film"],
             "a thin coating or layer on a surface",
             hypernym="covering.n.01", freq=8)

    b.synset("documentary.n.01", ["documentary", "docudrama"],
             "a film or TV program presenting the facts about a person or "
             "event", hypernym="movie.n.01", freq=8)
    b.synset("feature.n.03", ["feature", "feature film"],
             "the principal (full-length) film in a program at a movie "
             "theater", hypernym="movie.n.01", freq=10)

    # -- genres -------------------------------------------------------------------
    b.synset("mystery.n.01", ["mystery", "mystery story", "whodunit"],
             "a story about a crime presented as a novel or play or movie",
             hypernym="genre.n.01", freq=34)
    b.synset("mystery.n.02", ["mystery", "enigma", "secret"],
             "something that baffles understanding and cannot be explained",
             hypernym="concept.n.01", freq=22)
    b.synset("thriller.n.01", ["thriller", "suspense film"],
             "a show or film or book designed to hold the interest through "
             "suspense", hypernym="genre.n.01", freq=12)
    b.synset("comedy.n.01", ["comedy"],
             "a comic incident or series of incidents in a film or play",
             hypernym="genre.n.01", freq=26)
    b.synset("drama.n.01", ["drama"],
             "a work intended for performance by actors on a stage or "
             "screen", hypernym="genre.n.01", freq=34)
    b.synset("romance.n.01", ["romance", "love story"],
             "a story or film dealing with a love affair",
             hypernym="genre.n.01", freq=14)
    b.synset("western.n.01", ["western", "horse opera"],
             "a film about life in the western United States during the "
             "period of exploration and settlement",
             hypernym="genre.n.01", freq=8)
    b.synset("horror.n.02", ["horror", "horror film"],
             "a film designed to frighten and shock the audience",
             hypernym="genre.n.01", freq=10)
    b.synset("horror.n.01", ["horror", "dread"],
             "intense and profound fear",
             hypernym="state.n.02", freq=18)

    # -- people of film -------------------------------------------------------------
    b.synset("performer.n.01", ["performer", "performing artist"],
             "an entertainer who performs a dramatic or musical work for an "
             "audience", hypernym="entertainer.n.01", freq=24)
    b.synset("actor.n.01", ["actor", "histrion", "thespian", "player"],
             "a theatrical performer; a person who acts in a dramatic or "
             "comic production", hypernym="performer.n.01", freq=52)
    b.synset("actress.n.01", ["actress"],
             "a female actor who plays women's roles in films or plays",
             hypernym="actor.n.01", freq=28)
    b.synset("star.n.01", ["star"],
             "a celestial body of hot gases that radiates energy",
             hypernym="celestial_body.n.01", freq=58)
    b.synset("star.n.02", ["star", "principal", "lead"],
             "an actor who plays a principal role in a film or play",
             hypernym="actor.n.01", freq=30)
    b.synset("star.n.03", ["star", "ace", "champion", "hotshot"],
             "someone who is dazzlingly skilled in any field",
             hypernym="expert.n.01", freq=12)
    b.synset("star.n.04", ["star", "star topology"],
             "a plane figure with five or more points radiating from a "
             "center", hypernym="shape.n.01", freq=10)
    b.synset("star.n.05", ["star", "asterisk"],
             "a star-shaped character * used in printing",
             hypernym="sign.n.02", freq=6)
    b.synset("director.n.01", ["director", "film director", "filmmaker"],
             "the person who directs the making of a film and supervises "
             "the actors", hypernym="leader.n.01", freq=26)
    b.synset("director.n.02", ["director", "manager", "managing director"],
             "someone who controls resources and expenditures of a business",
             hypernym="leader.n.01", freq=38)
    b.synset("director.n.03", ["director", "conductor", "music director"],
             "the person who leads a musical group or orchestra",
             hypernym="leader.n.01", freq=12)
    b.synset("producer.n.01", ["producer", "film producer"],
             "someone who finds financing for and supervises the making of "
             "a film or show", hypernym="maker.n.01", freq=16)
    b.synset("screenwriter.n.01", ["screenwriter", "scriptwriter"],
             "a writer of screenplays for films",
             hypernym="writer.n.01", freq=6)

    # -- cast and production -----------------------------------------------------------
    b.synset("cast.n.01", ["cast", "cast of characters", "dramatis personae"],
             "the actors in a play or film considered as a group; the stars "
             "and supporting players of a production",
             hypernym="social_group.n.01", freq=18)
    b.synset("cast.n.02", ["cast", "casting"],
             "the act of throwing something, especially a fishing line or "
             "dice", hypernym="act.n.02", freq=10)
    b.synset("cast.n.03", ["cast", "plaster cast", "plaster bandage"],
             "a bandage impregnated with plaster of paris, applied to "
             "immobilize a broken bone", hypernym="covering.n.01", freq=6)
    b.synset("cast.n.04", ["cast", "mold", "mould", "stamp"],
             "the distinctive form in which a thing is made or shaped",
             hypernym="shape.n.01", freq=8)
    b.synset("crew.n.01", ["crew", "film crew"],
             "the technical group that works together making a film",
             hypernym="social_group.n.01", freq=14)
    b.synset("character.n.04", ["character", "role", "part", "persona"],
             "an actor's portrayal of someone in a play or film",
             hypernym="part.n.01", freq=30)
    b.synset("plot.n.02", ["plot", "storyline", "story line"],
             "the story that is told in a novel or play or movie",
             hypernym="content.n.05", freq=20)
    b.synset("plot.n.01", ["plot", "secret plan", "game"],
             "a secret scheme to do something, especially something "
             "underhand or illegal", hypernym="content.n.05", freq=16)
    b.synset("plot.n.03", ["plot", "plot of ground", "patch"],
             "a small area of ground covered by specific vegetation",
             hypernym="region.n.01", freq=12)
    b.synset("scene.n.02", ["scene", "shot"],
             "a consecutive series of pictures that constitutes a unit of "
             "action in a film", hypernym="part.n.01", freq=18)
    b.synset("screenplay.n.01", ["screenplay", "script"],
             "a written version of a play or film used by the actors",
             hypernym="writing.n.02", freq=8)
    b.synset("rating.n.01", ["rating", "evaluation", "valuation"],
             "an appraisal of the value or quality of something",
             hypernym="statement.n.01", freq=24)
    b.synset("runtime.n.01", ["runtime", "running time", "duration"],
             "the length of time a film or performance lasts",
             hypernym="time_period.n.01", freq=8)
    b.synset("review.n.01", ["review", "critique", "critical review"],
             "an essay or article that gives a critical evaluation of a "
             "work", hypernym="writing.n.02", freq=28)
    b.synset("studio.n.01", ["studio", "film studio"],
             "a company that produces movies; workplace with facilities for "
             "filming", hypernym="company.n.01", freq=10)
    b.synset("theater.n.01", ["theater", "theatre", "house", "cinema"],
             "a building where films or theatrical performances can be "
             "presented", hypernym="building.n.01", freq=32)

    # -- the Figure 1 celebrities -----------------------------------------------------
    b.synset("kelly.n.01", ["kelly", "grace kelly", "grace patricia kelly"],
             "united states film actress who retired when she married the "
             "prince of monaco", hypernym="actress.n.01", freq=4)
    b.synset("kelly.n.02", ["kelly", "gene kelly", "eugene curran kelly"],
             "united states dancer who performed in many musical films",
             hypernym="performer.n.01", freq=4)
    b.synset("kelly.n.03", ["kelly", "emmett kelly"],
             "united states circus clown famous for his sad hobo "
             "performance", hypernym="entertainer.n.01", freq=2)
    b.synset("stewart.n.01", ["stewart", "james stewart", "jimmy stewart"],
             "united states film actor who portrayed incorruptible but "
             "modest heroes", hypernym="actor.n.01", freq=4)
    b.synset("stewart.n.02", ["stewart", "stuart"],
             "the royal family that ruled scotland and england",
             hypernym="family.n.01", freq=6)
    b.synset("hitchcock.n.01", ["hitchcock", "alfred hitchcock",
                                "sir alfred hitchcock"],
             "english film director noted for his films of suspense and "
             "mystery", hypernym="director.n.01", freq=4)
    b.synset("grant.n.02", ["grant", "cary grant"],
             "united states film actor known for witty charming roles",
             hypernym="actor.n.01", freq=4)
    b.synset("grant.n.01", ["grant", "subsidization", "award"],
             "any monetary aid given for a particular purpose",
             hypernym="monetary_value.n.01", freq=22)
    b.synset("novak.n.01", ["novak", "kim novak"],
             "united states film actress of the golden age of hollywood",
             hypernym="actress.n.01", freq=2)

    # Derivational links: directors direct movies, stars star in them.
    b.relation("director.n.01", Relation.DERIVATION, "movie.n.01")
    b.relation("star.n.02", Relation.DERIVATION, "movie.n.01")
    b.relation("actor.n.01", Relation.DERIVATION, "character.n.04")
    b.relation("producer.n.01", Relation.DERIVATION, "movie.n.01")
    b.relation("rating.n.01", Relation.DERIVATION, "review.n.01")

    # member-of: stars/actors belong to casts; scenes are parts of movies.
    b.relation("actor.n.01", Relation.MEMBER_HOLONYM, "cast.n.01")
    b.relation("scene.n.02", Relation.PART_HOLONYM, "movie.n.01")
    b.relation("plot.n.02", Relation.PART_HOLONYM, "movie.n.01")
    b.relation("cast.n.01", Relation.PART_HOLONYM, "movie.n.01")
    b.relation("character.n.04", Relation.PART_HOLONYM, "plot.n.02")
    b.relation("screenplay.n.01", Relation.PART_HOLONYM, "movie.n.01")
