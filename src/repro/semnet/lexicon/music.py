"""Music synsets (W3Schools ``cd_catalog.dtd``).

CD-catalog vocabulary: artists, albums, tracks, companies, countries —
with the strongly polysemous *track*, *record*, *album*, *band*,
*company*, *artist* entries.
"""

from __future__ import annotations

from ..builders import NetworkBuilder
from ..concepts import Relation


def populate(b: NetworkBuilder) -> None:
    """Add music-domain synsets to builder ``b``."""
    b.synset("music.n.01", ["music"],
             "an artistic form of auditory communication incorporating "
             "instrumental or vocal tones", hypernym="communication.n.02",
             freq=66)
    b.synset("song.n.01", ["song", "vocal"],
             "a short musical composition with words",
             hypernym="music.n.01", freq=38)
    b.synset("cd.n.01", ["cd", "compact disc", "compact disk"],
             "a digital recording of music on an optical disk",
             hypernym="electronic_equipment.n.01", freq=16)
    b.synset("cd.n.02", ["cd", "certificate of deposit"],
             "a debt instrument issued by a bank, usually paying interest",
             hypernym="commercial_document.n.01", freq=6)
    b.synset("album.n.01", ["album", "record album"],
             "one or more recordings issued together as a collection of "
             "songs", hypernym="work.n.02", freq=22)
    b.synset("album.n.02", ["album", "photo album"],
             "a book of blank pages with pockets or envelopes, for "
             "organizing photographs or stamps", hypernym="book.n.01",
             freq=8)
    b.synset("track.n.01", ["track", "cut"],
             "one of the separate songs or pieces of music on a recording",
             hypernym="song.n.01", freq=14)
    b.synset("track.n.02", ["track", "path", "course"],
             "a line or route along which something travels or moves",
             hypernym="location.n.01", freq=30)
    b.synset("track.n.03", ["track", "running track", "racetrack"],
             "a course over which races are run",
             hypernym="structure.n.01", freq=12)
    b.synset("track.n.04", ["track", "caterpillar track"],
             "an endless metal belt on which tracked vehicles move over the "
             "ground", hypernym="device.n.01", freq=4)
    b.synset("artist.n.02", ["artist", "recording artist", "musician"],
             "a musician or singer who records music commercially",
             hypernym="artist.n.01", freq=20)
    b.synset("singer.n.01", ["singer", "vocalist", "vocalizer"],
             "a person who sings",
             hypernym="artist.n.02", freq=24)
    b.synset("band.n.01", ["band", "musical group", "musical ensemble"],
             "a group of musicians playing popular music for dancing",
             hypernym="social_group.n.01", freq=30)
    b.synset("band.n.02", ["band", "stripe", "strip"],
             "a narrow flat piece of material covering or encircling "
             "something", hypernym="part.n.01", freq=16)
    b.synset("band.n.03", ["band", "frequency band", "waveband"],
             "a range of frequencies between two limits",
             hypernym="measure.n.01", freq=8)
    b.synset("label.n.01", ["label", "record label", "recording label"],
             "a company that produces and distributes recorded music",
             hypernym="company.n.01", freq=10)
    b.synset("label.n.02", ["label", "tag", "mark"],
             "a brief description attached to an object to identify it",
             hypernym="sign.n.02", freq=18)
    b.synset("concert.n.01", ["concert"],
             "a performance of music by players or singers before an "
             "audience", hypernym="performance.n.01", freq=22)
    b.synset("tour.n.01", ["tour", "circuit"],
             "a series of concert performances in different cities by a "
             "musician or band", hypernym="activity.n.01", freq=14)
    b.synset("studio.n.02", ["studio", "recording studio"],
             "a workplace equipped for recording music",
             hypernym="building.n.01", freq=8)
    b.synset("lyric.n.01", ["lyric", "words", "language"],
             "the text of a popular song or musical-comedy number",
             hypernym="text.n.01", freq=10)
    b.synset("melody.n.01", ["melody", "tune", "air", "strain"],
             "a succession of musical notes forming a distinctive sequence",
             hypernym="music.n.01", freq=18)
    b.synset("instrument.n.01", ["instrument", "musical instrument"],
             "any of various devices designed to make music",
             hypernym="device.n.01", freq=26)
    b.synset("guitar.n.01", ["guitar"],
             "a stringed musical instrument usually having six strings, "
             "played by strumming", hypernym="instrument.n.01", freq=12)

    # Derivational links: recording artists record albums and cds.
    b.relation("artist.n.02", Relation.DERIVATION, "album.n.01")
    b.relation("artist.n.02", Relation.DERIVATION, "cd.n.01")
    b.relation("singer.n.01", Relation.DERIVATION, "song.n.01")

    b.relation("track.n.01", Relation.PART_HOLONYM, "album.n.01")
    b.relation("song.n.01", Relation.PART_HOLONYM, "album.n.01")
    b.relation("lyric.n.01", Relation.PART_HOLONYM, "song.n.01")
    b.relation("artist.n.02", Relation.MEMBER_HOLONYM, "band.n.01")
    b.relation("album.n.01", Relation.PART_HOLONYM, "cd.n.01")
