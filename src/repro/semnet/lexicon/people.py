"""Personnel / contact synsets (Niagara ``personnel.dtd``, ``club.dtd``).

People records: names, emails, addresses, departments, salaries, offices,
managers, members, coaches — with the polysemy traps the paper calls out
explicitly (*state* under *address* has 8 senses in WordNet; we model the
same collision between the administrative district and the condition
senses, plus more).
"""

from __future__ import annotations

from ..builders import NetworkBuilder
from ..concepts import Relation


def populate(b: NetworkBuilder) -> None:
    """Add people/contact-domain synsets to builder ``b``."""
    b.synset("first_name.n.01", ["first name", "given name", "forename"],
             "the name that precedes the surname",
             hypernym="name.n.01", freq=16)
    b.synset("last_name.n.01", ["last name", "surname", "family name",
                                "cognomen"],
             "the name used to identify the members of a family",
             hypernym="name.n.01", freq=14)
    b.synset("middle_name.n.01", ["middle name"],
             "a name between your first name and your surname",
             hypernym="name.n.01", freq=4)
    b.synset("email.n.01", ["email", "e-mail", "electronic mail"],
             "a system of world-wide electronic communication via computer "
             "networks", hypernym="communication.n.02", freq=24)
    b.synset("url.n.01", ["url", "uniform resource locator", "web address"],
             "the address of a web page on the world wide web",
             hypernym="address.n.02", freq=12)
    b.synset("link.n.01", ["link", "hyperlink"],
             "a connection that enables moving from one web page to "
             "another", hypernym="relation.n.01", freq=14)
    b.synset("link.n.02", ["link", "data link"],
             "an interconnecting circuit between two or more locations for "
             "the purpose of transmitting signals",
             hypernym="electronic_equipment.n.01", freq=8)
    b.synset("link.n.03", ["link", "chain link"],
             "one of the rings of a chain",
             hypernym="part.n.01", freq=10)
    b.synset("phone.n.01", ["phone", "telephone", "telephone set"],
             "electronic equipment that converts sound into electrical "
             "signals for transmission",
             hypernym="electronic_equipment.n.01", freq=42)
    b.synset("street.n.01", ["street"],
             "a thoroughfare, usually paved, in a city or town",
             hypernym="location.n.01", freq=88)
    b.synset("zip_code.n.01", ["zip code", "zip", "postcode", "postal code"],
             "a code of letters and digits added to a postal address to aid "
             "the sorting of mail", hypernym="sign.n.02", freq=6)

    b.synset("state.n.03", ["state", "nation", "body politic", "commonwealth"],
             "a politically organized body of people under a single "
             "government", hypernym="organization.n.01", freq=56)
    b.synset("state.n.04", ["state", "state of matter"],
             "the three traditional states of matter are solids and liquids "
             "and gases", hypernym="attribute.n.01", freq=12)
    b.synset("state.n.05", ["state", "department of state", "state department"],
             "the federal department that sets and maintains foreign "
             "policies", hypernym="institution.n.01", freq=10)
    b.synset("state.n.06", ["state", "emotional state", "spirit"],
             "the condition of a person's emotions",
             hypernym="condition.n.01", freq=18)

    b.synset("department.n.01", ["department", "section"],
             "a specialized division of a large organization",
             hypernym="unit.n.03", freq=48)
    b.synset("salary.n.01", ["salary", "wage", "pay", "earnings",
                             "remuneration"],
             "something that remunerates; fixed compensation paid regularly "
             "for work", hypernym="monetary_value.n.01", freq=38)
    b.synset("office.n.01", ["office", "business office"],
             "a place of business where professional or clerical duties are "
             "performed", hypernym="location.n.01", freq=54)
    b.synset("office.n.02", ["office", "position", "berth", "post", "place"],
             "a job in an organization",
             hypernym="occupation.n.01", freq=30)
    b.synset("manager.n.01", ["manager", "supervisor"],
             "someone who controls resources and expenditures within an "
             "organization", hypernym="leader.n.01", freq=36)
    b.synset("manager.n.02", ["manager", "coach", "handler"],
             "someone in charge of training an athlete or a sports team",
             hypernym="leader.n.01", freq=20)
    b.synset("staff.n.01", ["staff"],
             "personnel who assist their superior in carrying out an "
             "assigned task", hypernym="social_group.n.01", freq=28)
    b.synset("personnel.n.01", ["personnel", "force"],
             "the group of people who work for an organization, considered "
             "as a body", hypernym="social_group.n.01", freq=18)
    b.synset("coach.n.01", ["coach", "trainer"],
             "a person who gives private instruction in sports or acting "
             "or singing", hypernym="expert.n.01", freq=16)
    b.synset("coach.n.02", ["coach", "four-in-hand", "coach-and-four"],
             "a carriage pulled by four horses with one driver",
             hypernym="instrumentality.n.01", freq=6)
    b.synset("coach.n.03", ["coach", "passenger car", "carriage"],
             "a railway car conveying passengers",
             hypernym="instrumentality.n.01", freq=8)
    b.synset("club.n.01", ["club", "social club", "society", "guild", "lodge"],
             "a formal association of people with similar interests",
             hypernym="organization.n.01", freq=32)
    b.synset("club.n.02", ["club", "golf club", "golf-club"],
             "golf equipment used by a golfer to hit a golf ball",
             hypernym="device.n.01", freq=10)
    b.synset("club.n.03", ["club", "cudgel", "truncheon"],
             "a stout stick that is larger at one end, used as a weapon",
             hypernym="weapon.n.01", freq=8)
    b.synset("club.n.04", ["club", "nightclub", "nightspot"],
             "a spot that is open late at night and that provides "
             "entertainment", hypernym="building.n.01", freq=12)
    b.synset("position.n.01", ["position", "place", "spot"],
             "the particular portion of space occupied by something",
             hypernym="location.n.01", freq=44)
    b.synset("position.n.02", ["position", "post", "situation", "office"],
             "a job in an organization or on a team",
             hypernym="occupation.n.01", freq=70)
    b.synset("position.n.03", ["position", "stance", "posture"],
             "the arrangement of the body and its limbs",
             hypernym="attribute.n.01", freq=22)
    b.synset("captain.n.01", ["captain", "skipper"],
             "the leader of a group of people, especially a sports team",
             hypernym="leader.n.01", freq=18)
    b.synset("president.n.01", ["president", "chairman", "chairwoman"],
             "the officer who presides at the meetings of an organization",
             hypernym="leader.n.01", freq=40)
    b.synset("secretary.n.01", ["secretary", "secretarial assistant"],
             "an assistant who handles correspondence and clerical work for "
             "an organization", hypernym="employee.n.01", freq=22)
    b.synset("treasurer.n.01", ["treasurer", "financial officer"],
             "an officer charged with receiving and disbursing funds of an "
             "organization", hypernym="employee.n.01", freq=8)
    b.synset("gender.n.01", ["gender", "sex"],
             "the properties that distinguish organisms on the basis of "
             "their reproductive roles", hypernym="attribute.n.01", freq=26)
    b.synset("hobby.n.01", ["hobby", "avocation", "pastime"],
             "an auxiliary activity pursued for pleasure",
             hypernym="activity.n.01", freq=14)

    # Derivational links: coaches train teams, members join clubs.
    b.relation("coach.n.01", Relation.DERIVATION, "team.n.01")
    b.relation("position.n.02", Relation.DERIVATION, "member.n.01")
    b.relation("state.n.01", Relation.DERIVATION, "address.n.02")
    b.relation("city.n.01", Relation.DERIVATION, "address.n.02")
    b.relation("street.n.01", Relation.DERIVATION, "address.n.02")
    b.relation("zip_code.n.01", Relation.DERIVATION, "address.n.02")

    # Membership / containment structure.
    b.relation("member.n.01", Relation.MEMBER_HOLONYM, "club.n.01")
    b.relation("employee.n.01", Relation.MEMBER_HOLONYM, "personnel.n.01")
    b.relation("department.n.01", Relation.PART_HOLONYM, "organization.n.01")
    b.relation("office.n.01", Relation.PART_HOLONYM, "building.n.01")
    b.relation("street.n.01", Relation.PART_HOLONYM, "city.n.01")
    b.relation("state.n.01", Relation.PART_HOLONYM, "country.n.02")
    b.relation("city.n.01", Relation.PART_HOLONYM, "state.n.01")
