"""Botany synsets (W3Schools ``plant_catalog.dtd``).

Plant-catalog vocabulary: common and botanical names, zones, light
requirements, availability — with the famous *plant* homonymy (flora vs.
industrial plant) and the *light*, *zone*, *common* collisions.
"""

from __future__ import annotations

from ..builders import NetworkBuilder
from ..concepts import Relation


def populate(b: NetworkBuilder) -> None:
    """Add plant-domain synsets to builder ``b``."""
    b.synset("plant.n.01", ["plant", "works", "industrial plant"],
             "buildings for carrying on industrial labor",
             hypernym="building.n.01", freq=40)
    b.synset("plant.n.03", ["plant"],
             "an actor situated in the audience whose acting is rehearsed "
             "but seems spontaneous", hypernym="actor.n.01", freq=2)
    b.synset("flower.n.01", ["flower", "bloom", "blossom"],
             "a plant cultivated for its blooms or blossoms",
             hypernym="plant.n.02", freq=32)
    b.synset("herb.n.01", ["herb", "herbaceous plant"],
             "a plant lacking a permanent woody stem, many used for "
             "flavorings or medicine", hypernym="plant.n.02", freq=12)
    b.synset("shrub.n.01", ["shrub", "bush"],
             "a low woody perennial plant, usually having several major "
             "stems", hypernym="plant.n.02", freq=10)
    b.synset("tree.n.01", ["tree"],
             "a tall perennial woody plant having a main trunk and "
             "branches", hypernym="plant.n.02", freq=80)
    b.synset("tree.n.02", ["tree", "tree diagram"],
             "a figure that branches from a single root, as a data "
             "structure", hypernym="shape.n.01", freq=14)
    b.synset("botanical_name.n.01", ["botanical name", "botanical",
                                     "scientific name"],
             "the gardener's term for the latin scientific name of a plant",
             hypernym="name.n.01", freq=4)
    b.synset("common_name.n.01", ["common name", "common", "vernacular name"],
             "the ordinary everyday name of a plant, as opposed to its "
             "botanical name", hypernym="name.n.01", freq=6)
    b.synset("common.n.01", ["common", "commons", "green", "park"],
             "a piece of open land for recreational use in an urban area",
             hypernym="location.n.01", freq=16)
    b.synset("zone.n.01", ["zone", "hardiness zone", "climate zone"],
             "a geographical area characterized by a climate in which "
             "particular plants grow", hypernym="region.n.01", freq=14)
    b.synset("zone.n.02", ["zone", "geographical zone"],
             "any of the regions of the surface of the earth loosely "
             "divided according to latitude", hypernym="region.n.01",
             freq=10)
    b.synset("light.n.01", ["light", "visible light", "visible radiation"],
             "electromagnetic radiation that can produce a visual "
             "sensation, needed by plants to grow", hypernym="substance.n.01",
             freq=90)
    b.synset("light.n.02", ["light", "light source"],
             "any device serving as a source of illumination",
             hypernym="appliance.n.01", freq=28)
    b.synset("light.n.03", ["light", "illumination"],
             "a condition of spiritual or mental enlightenment",
             hypernym="condition.n.01", freq=12)
    b.synset("shade.n.01", ["shade", "shadiness", "shadowiness"],
             "relative darkness caused by light rays being intercepted, a "
             "growing condition for some plants", hypernym="condition.n.01",
             freq=18)
    b.synset("shade.n.02", ["shade", "tint", "tone"],
             "a quality of a given color that differs slightly from another "
             "color", hypernym="quality.n.01", freq=12)
    b.synset("sun.n.01", ["sun", "full sun", "sunlight", "sunshine"],
             "the rays of the sun reaching a plant in the garden",
             hypernym="light.n.01", freq=64)
    b.synset("soil.n.01", ["soil", "dirt", "ground", "earth"],
             "the part of the earth's surface consisting of humus and "
             "disintegrated rock in which plants grow",
             hypernym="substance.n.01", freq=48)
    b.synset("garden.n.01", ["garden"],
             "a plot of ground where plants are cultivated",
             hypernym="plot.n.03", freq=36)
    b.synset("root.n.01", ["root"],
             "the usually underground organ that anchors and supports a "
             "plant and absorbs minerals", hypernym="part.n.01", freq=30)
    b.synset("root.n.02", ["root", "root word", "radical", "stem", "base"],
             "the form of a word after all affixes are removed",
             hypernym="word.n.01", freq=10)
    b.synset("leaf.n.01", ["leaf", "leafage", "foliage"],
             "the main organ of photosynthesis in higher plants",
             hypernym="part.n.01", freq=28)
    b.synset("leaf.n.02", ["leaf", "folio"],
             "a sheet of any written or printed material, as in a book",
             hypernym="part.n.01", freq=8)
    b.synset("bulb.n.01", ["bulb"],
             "a modified bud consisting of a thickened globular underground "
             "stem from which a plant grows", hypernym="part.n.01", freq=6)
    b.synset("seed.n.01", ["seed"],
             "a small hard fruit from which a new plant grows",
             hypernym="part.n.01", freq=24)
    b.synset("nursery.n.01", ["nursery", "greenhouse"],
             "a place where young plants are grown for sale or "
             "transplanting", hypernym="institution.n.01", freq=8)
    b.synset("rose.n.01", ["rose", "rosebush"],
             "any of many shrubs of the genus rosa bearing showy flowers",
             hypernym="shrub.n.01", freq=20)
    b.synset("lily.n.01", ["lily", "columbine", "anemone", "bluebell",
                           "marigold", "primrose", "violet", "daisy"],
             "any of various ornamental flowering garden plants",
             hypernym="flower.n.01", freq=10)
    b.synset("fern.n.01", ["fern", "hosta", "ivy"],
             "any of numerous flowerless shade-loving foliage plants",
             hypernym="plant.n.02", freq=8)

    b.relation("root.n.01", Relation.PART_HOLONYM, "plant.n.02")
    b.relation("leaf.n.01", Relation.PART_HOLONYM, "plant.n.02")
    b.relation("seed.n.01", Relation.PART_HOLONYM, "plant.n.02")
    b.relation("flower.n.01", Relation.MEMBER_HOLONYM, "garden.n.01")
