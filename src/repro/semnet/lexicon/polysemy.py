"""The maximum-polysemy entry: 33 senses of *head*.

The paper normalizes the polysemy factor by ``Max(senses(SN))``, noting
that in WordNet 2.1 the maximum is 33, reached by the word *head*.  This
module reproduces that extreme so ``Amb_Polysemy`` is normalized exactly
as in the paper.  Senses are modeled on WordNet's actual inventory for
*head* (body part, leader, mind, foam on beer, ship's toilet, ...).
"""

from __future__ import annotations

from ..builders import NetworkBuilder

_HEAD_SENSES: list[tuple[str, str]] = [
    # (hypernym, gloss) -- one entry per sense; ids are head.n.01..33.
    ("body_part.n.01",
     "the upper part of the human body that contains the brain, eyes, "
     "ears, nose, and mouth"),
    ("leader.n.01",
     "a person who is in charge; the leader of an organization"),
    ("cognition.n.01",
     "that which is responsible for one's thoughts and feelings; the mind"),
    ("person.n.01",
     "a person considered as a unit counted in a population"),
    ("part.n.01",
     "the front or forward part of something, as the head of a line"),
    ("part.n.01",
     "the top or uppermost part of something, as the head of a page"),
    ("part.n.01",
     "the rounded or pointed end of a tool or device, as a hammer head"),
    ("substance.n.01",
     "the foam or froth that accumulates at the top when you pour a "
     "beverage such as beer"),
    ("location.n.01",
     "the source of a river; the part farthest from the mouth"),
    ("leader.n.01",
     "the educator who has executive authority for a school"),
    ("time_period.n.01",
     "a point in time at which something is about to happen; a crisis "
     "coming to a head"),
    ("attribute.n.01",
     "the striking or working part of an implement considered as a "
     "quality of its design"),
    ("device.n.01",
     "the part of a tape recorder or disk drive that reads or writes "
     "data on the medium"),
    ("part.n.01",
     "a projection out from one end, as the head of a nail or pin"),
    ("content.n.05",
     "the subject matter at issue; the topic under discussion"),
    ("section.n.01",
     "a line of text serving to indicate what the passage below it is "
     "about; a heading"),
    ("body_part.n.01",
     "the tip of an abscess where pus accumulates"),
    ("measure.n.01",
     "a single domestic animal counted as one unit of livestock"),
    ("device.n.01",
     "a membrane stretched across the open end of a drum"),
    ("part.n.01",
     "the compact mass of leaves or flowers at the top of a plant stem, "
     "as a head of cabbage"),
    ("structure.n.01",
     "a toilet on a boat or ship"),
    ("attribute.n.01",
     "the pressure exerted by a fluid, as a head of steam"),
    ("leader.n.01",
     "the head of a department or government agency"),
    ("natural_object.n.01",
     "a rocky promontory projecting into a body of water; a headland"),
    ("device.n.01",
     "the source of illumination in a projector or the cutting part of a "
     "machine tool"),
    ("word.n.01",
     "the word in a grammatical constituent that determines its syntactic "
     "category"),
    ("part.n.01",
     "the striking surface of the club used to hit a golf ball"),
    ("music.n.01",
     "the theme statement that opens and closes a jazz performance"),
    ("shape.n.01",
     "an obverse side of a coin that bears the representation of a "
     "person's head"),
    ("state.n.02",
     "the position of maximum advantage; being at the head of the field"),
    ("person.n.01",
     "a user of illicit drugs, as in pothead"),
    ("device.n.01",
     "the fitting on the end of a pipe from which water is sprayed"),
    ("act.n.02",
     "a forward movement of the ball struck with the head in soccer"),
]


def populate(b: NetworkBuilder) -> None:
    """Add the 33 *head* senses to builder ``b``."""
    for rank, (hypernym, gloss) in enumerate(_HEAD_SENSES, start=1):
        words = ["head"] if rank > 1 else ["head", "caput"]
        b.synset(
            f"head.n.{rank:02d}",
            words,
            gloss,
            hypernym=hypernym,
            freq=max(2, 120 - 12 * rank),
        )
