"""Publication / bibliography synsets (SIGMOD Record, Niagara ``bib.dtd``).

Vocabulary for proceedings pages and bibliographic records: volume,
number, article, author, editor, publisher, page, journal, book — several
of which are sharply polysemous (*volume*, *number*, *page*, *record*,
*paper*, *issue*).
"""

from __future__ import annotations

from ..builders import NetworkBuilder
from ..concepts import Relation


def populate(b: NetworkBuilder) -> None:
    """Add publication-domain synsets to builder ``b``."""
    b.synset("publication.n.01", ["publication"],
             "a copy of a printed work offered for distribution",
             hypernym="work.n.02", freq=28)
    b.synset("book.n.01", ["book", "volume"],
             "a written work or composition that has been published, "
             "printed on pages bound together", hypernym="publication.n.01",
             freq=118)
    b.synset("book.n.02", ["book", "ledger", "account book"],
             "a record in which commercial accounts are recorded",
             hypernym="commercial_document.n.01", freq=12)
    b.synset("journal.n.01", ["journal"],
             "a periodical dedicated to a particular subject or scholarly "
             "discipline", hypernym="publication.n.01", freq=30)
    b.synset("journal.n.02", ["journal", "diary"],
             "a daily written record of experiences and observations",
             hypernym="writing.n.02", freq=16)
    b.synset("magazine.n.01", ["magazine", "mag"],
             "a periodic publication containing pictures and stories",
             hypernym="publication.n.01", freq=34)
    b.synset("proceedings.n.01", ["proceedings", "proceeding", "minutes"],
             "a written account of papers presented at a conference",
             hypernym="publication.n.01", freq=10)
    b.synset("article.n.01", ["article"],
             "nonfictional prose forming an independent part of a "
             "publication such as a journal", hypernym="writing.n.02",
             freq=42)
    b.synset("article.n.02", ["article", "clause"],
             "a separate section of a legal document such as a statute or "
             "contract", hypernym="section.n.01", freq=14)
    b.synset("paper.n.02", ["paper", "research paper", "scholarly paper"],
             "a scholarly article reporting research results, presented at "
             "a conference or published in a journal",
             hypernym="article.n.01", freq=24)
    b.synset("paper.n.01", ["paper"],
             "a material made of cellulose pulp, used for writing or "
             "printing", hypernym="substance.n.01", freq=56)
    b.synset("paper.n.03", ["paper", "newspaper"],
             "a daily or weekly publication on folded sheets containing "
             "news", hypernym="publication.n.01", freq=40)
    b.synset("volume.n.01", ["volume"],
             "one of a sequence of issues of a periodical published over a "
             "year", hypernym="publication.n.01", freq=18)
    b.synset("volume.n.02", ["volume", "loudness", "intensity"],
             "the magnitude of sound",
             hypernym="attribute.n.01", freq=14)
    b.synset("volume.n.03", ["volume"],
             "the amount of three-dimensional space occupied by an object",
             hypernym="size.n.01", freq=20)
    b.synset("issue.n.01", ["issue", "number"],
             "one of a series published periodically; a single copy of a "
             "periodical", hypernym="publication.n.01", freq=16)
    b.synset("issue.n.02", ["issue", "topic", "matter", "subject"],
             "some situation or event that is thought about or discussed",
             hypernym="content.n.05", freq=48)
    b.synset("page.n.01", ["page"],
             "one side of one leaf of a book or magazine or newspaper",
             hypernym="part.n.01", freq=64)
    b.synset("page.n.02", ["page", "pageboy"],
             "a boy who is employed to run errands or attend a ceremony",
             hypernym="worker.n.01", freq=6)
    b.synset("page.n.03", ["page", "web page", "webpage"],
             "a document connected to the world wide web and viewable in a "
             "browser", hypernym="electronic_document.n.01", freq=26)
    b.synset("record.n.01", ["record", "written record", "written account"],
             "a document serving as an official account of facts or "
             "events", hypernym="document.n.01", freq=36)
    b.synset("record.n.02", ["record", "phonograph record", "disk", "platter"],
             "a sound recording consisting of a disc with a continuous "
             "groove", hypernym="electronic_equipment.n.01", freq=18)
    b.synset("record.n.03", ["record", "track record"],
             "the sum of recognized accomplishments; the best performance "
             "ever attested", hypernym="attribute.n.01", freq=22)
    b.synset("abstract.n.01", ["abstract", "outline", "precis"],
             "a sketchy summary of the main points of an argument or "
             "scientific paper", hypernym="summary.n.01", freq=10)
    b.synset("bibliography.n.01", ["bibliography", "bib"],
             "a list of writings with time and place of publication, "
             "referenced by a scholarly work", hypernym="document.n.01",
             freq=6)
    b.synset("reference.n.01", ["reference", "citation", "quotation"],
             "a short note acknowledging a source of information or a "
             "quoted passage", hypernym="statement.n.01", freq=20)
    b.synset("edition.n.01", ["edition"],
             "the form in which a text (especially a printed book) is "
             "published", hypernym="attribute.n.01", freq=12)
    b.synset("chapter.n.01", ["chapter"],
             "a subdivision of a written work, usually numbered and titled",
             hypernym="section.n.01", freq=30)
    b.synset("conference.n.01", ["conference"],
             "a prearranged meeting for consultation or exchange of "
             "information or discussion", hypernym="event.n.01", freq=32)
    b.synset("editor.n.01", ["editor", "editor in chief"],
             "a person responsible for the editorial aspects of a "
             "publication", hypernym="professional.n.01", freq=18)
    b.synset("editor.n.02", ["editor", "text editor", "editor program"],
             "a computer program that allows the creation and revision of "
             "text documents", hypernym="electronic_equipment.n.01", freq=8)
    b.synset("publisher.n.01", ["publisher", "publishing house",
                                "publishing firm"],
             "a firm in the publishing business",
             hypernym="company.n.01", freq=16)
    b.synset("publisher.n.02", ["publisher", "newspaper publisher"],
             "the proprietor of a newspaper",
             hypernym="professional.n.01", freq=8)
    b.synset("author.n.01", ["author"],
             "the writer of a book or article or other written work",
             hypernym="writer.n.01", freq=54)
    b.synset("initial.n.01", ["initial", "first letter"],
             "the first letter of a word, especially of a person's name",
             hypernym="sign.n.02", freq=8)
    b.synset("affiliation.n.01", ["affiliation", "association"],
             "a social or business relationship with an organization",
             hypernym="relationship.n.01", freq=10)

    # Derivational links: authors write books and articles, publishers
    # publish them, editors edit them.
    b.relation("author.n.01", Relation.DERIVATION, "book.n.01")
    b.relation("author.n.01", Relation.DERIVATION, "article.n.01")
    b.relation("editor.n.01", Relation.DERIVATION, "publication.n.01")
    b.relation("publisher.n.01", Relation.DERIVATION, "book.n.01")
    b.relation("publisher.n.01", Relation.DERIVATION, "publication.n.01")
    b.relation("title.n.02", Relation.DERIVATION, "book.n.01")
    b.relation("title.n.02", Relation.DERIVATION, "movie.n.01")

    # Structure of publications.
    b.relation("page.n.01", Relation.PART_HOLONYM, "book.n.01")
    b.relation("chapter.n.01", Relation.PART_HOLONYM, "book.n.01")
    b.relation("article.n.01", Relation.PART_HOLONYM, "journal.n.01")
    b.relation("paper.n.02", Relation.PART_HOLONYM, "proceedings.n.01")
    b.relation("abstract.n.01", Relation.PART_HOLONYM, "paper.n.02")
    b.relation("volume.n.01", Relation.PART_HOLONYM, "journal.n.01")
    b.relation("issue.n.01", Relation.PART_HOLONYM, "volume.n.01")
