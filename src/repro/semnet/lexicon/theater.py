"""Theater / drama synsets (Shakespeare corpus, ``shakespeare.dtd``).

The Shakespeare collection is the paper's Group 1 corpus: highly
ambiguous tag vocabulary (*play*, *act*, *scene*, *line*, *speech*,
*stage*) inside a rich structure.  Each of those words gets several
competing senses here so the ambiguity-degree measure has real polysemy
to detect.
"""

from __future__ import annotations

from ..builders import NetworkBuilder
from ..concepts import Relation


def populate(b: NetworkBuilder) -> None:
    """Add theater-domain synsets to builder ``b``."""
    b.synset("play.n.01", ["play", "drama", "dramatic play"],
             "a dramatic work intended for performance by actors on a "
             "stage", hypernym="work.n.02", freq=48)
    b.synset("play.n.02", ["play", "child's play"],
             "activity by children that is guided more by imagination than "
             "by fixed rules", hypernym="activity.n.01", freq=36)
    b.synset("play.n.03", ["play", "maneuver", "manoeuvre"],
             "a deliberate coordinated movement requiring skill, made in a "
             "game", hypernym="action.n.01", freq=22)
    b.synset("play.n.04", ["play", "gambling", "gaming"],
             "the act of playing for stakes in the hope of winning",
             hypernym="activity.n.01", freq=10)
    b.synset("play.n.05", ["play", "free rein", "swing"],
             "the removal of constraints; scope for motion",
             hypernym="state.n.02", freq=8)

    b.synset("act.n.01", ["act"],
             "a subdivision of a play or opera or ballet",
             hypernym="section.n.01", freq=30)
    b.synset("act.n.03", ["act", "routine", "number", "turn", "bit"],
             "a short theatrical performance that is part of a longer "
             "program", hypernym="performance.n.01", freq=14)
    b.synset("act.n.04", ["act", "enactment"],
             "a legal document codifying the result of deliberations of a "
             "legislature", hypernym="legal_document.n.01", freq=26)

    b.synset("scene.n.01", ["scene"],
             "a subdivision of an act of a play, in which the action is "
             "continuous", hypernym="section.n.01", freq=24)
    b.synset("scene.n.03", ["scene", "view", "vista", "panorama"],
             "the visual percept of a region",
             hypernym="content.n.05", freq=20)
    b.synset("scene.n.04", ["scene", "setting"],
             "the place where some action occurs",
             hypernym="location.n.01", freq=18)
    b.synset("scene.n.05", ["scene", "fit", "tantrum"],
             "a display of bad temper",
             hypernym="act.n.02", freq=6)

    b.synset("line.n.01", ["line"],
             "a spoken or written sentence of text, especially in a script "
             "or play or poem", hypernym="text.n.01", freq=32)
    b.synset("line.n.02", ["line"],
             "a mark that is long relative to its width, traced on a "
             "surface", hypernym="shape.n.01", freq=44)
    b.synset("line.n.03", ["line", "queue", "waiting line"],
             "a formation of people or things one behind another",
             hypernym="collection.n.01", freq=26)
    b.synset("line.n.04", ["line", "railway line", "rail line"],
             "the road consisting of railroad track and roadbed",
             hypernym="structure.n.01", freq=16)
    b.synset("line.n.05", ["line", "telephone line", "phone line"],
             "a telephone connection",
             hypernym="electronic_equipment.n.01", freq=12)
    b.synset("line.n.06", ["line", "product line", "line of products"],
             "a particular kind of product or merchandise offered by a "
             "business", hypernym="merchandise.n.01", freq=14)
    b.synset("line.n.07", ["line", "lineage", "descent", "bloodline"],
             "the descendants of one individual",
             hypernym="family.n.01", freq=10)

    b.synset("speech.n.01", ["speech", "address", "oration"],
             "the act of delivering a formal spoken communication to an "
             "audience", hypernym="address.n.01", freq=34)
    b.synset("speech.n.02", ["speech", "actor's line", "words"],
             "the lines spoken by an actor or character in a play",
             hypernym="text.n.01", freq=16)
    b.synset("speech.n.03", ["speech", "manner of speaking", "delivery"],
             "your characteristic style or manner of expressing yourself "
             "orally", hypernym="attribute.n.01", freq=12)

    b.synset("speaker.n.01", ["speaker", "talker", "utterer", "verbalizer"],
             "someone who expresses in spoken language; the person "
             "delivering a speech or line", hypernym="communicator.n.01",
             freq=18)
    b.synset("speaker.n.02", ["speaker", "loudspeaker", "speaker unit"],
             "electro-acoustic transducer that converts electrical signals "
             "into sounds", hypernym="electronic_equipment.n.01", freq=14)
    b.synset("speaker.n.03", ["speaker", "presiding officer"],
             "the presiding officer of a deliberative assembly",
             hypernym="leader.n.01", freq=10)

    b.synset("stage.n.03", ["stage"],
             "a large platform on which actors can be seen by the audience "
             "of a theater", hypernym="structure.n.01", freq=22)
    b.synset("stage.n.01", ["stage", "phase"],
             "any distinct period in development or in a sequence of "
             "events", hypernym="time_period.n.01", freq=40)
    b.synset("stage.n.02", ["stage", "stagecoach"],
             "a large coach-and-four formerly used to carry passengers and "
             "mail", hypernym="instrumentality.n.01", freq=6)
    b.synset("stage_direction.n.01", ["stage direction", "stagedir"],
             "an instruction written as part of the script of a play "
             "telling actors how to move on stage",
             hypernym="direction.n.01", freq=6)

    b.synset("prologue.n.01", ["prologue", "prolog", "induction"],
             "an introductory section of a play or literary work",
             hypernym="section.n.01", freq=8)
    b.synset("epilogue.n.01", ["epilogue", "epilog"],
             "a short section added at the end of a play or literary work",
             hypernym="section.n.01", freq=6)
    b.synset("persona.n.01", ["persona", "dramatis persona", "character"],
             "a personage appearing in a play or other dramatic work",
             hypernym="character.n.04", freq=8)
    b.synset("playwright.n.01", ["playwright", "dramatist"],
             "someone who writes plays",
             hypernym="writer.n.01", freq=10)
    b.synset("tragedy.n.01", ["tragedy"],
             "drama in which the protagonist is overcome by a combination "
             "of events", hypernym="genre.n.01", freq=14)
    b.synset("tragedy.n.02", ["tragedy", "calamity", "catastrophe", "disaster"],
             "an event resulting in great loss and misfortune",
             hypernym="event.n.01", freq=20)
    b.synset("audience.n.01", ["audience"],
             "a gathering of spectators or listeners at a public "
             "performance", hypernym="social_group.n.01", freq=24)
    b.synset("front_matter.n.01", ["front matter", "fm", "prelims"],
             "written matter such as title pages preceding the main text of "
             "a book or play edition", hypernym="matter.n.06", freq=4)

    # Derivationally related forms (as in WordNet): the speaker delivers
    # the speech; the stage direction belongs to the stage; the
    # playwright writes the play.
    b.relation("speaker.n.01", Relation.DERIVATION, "speech.n.02")
    b.relation("speaker.n.01", Relation.DERIVATION, "speech.n.01")
    b.relation("stage_direction.n.01", Relation.DERIVATION, "stage.n.03")
    b.relation("playwright.n.01", Relation.DERIVATION, "play.n.01")
    b.relation("line.n.01", Relation.DERIVATION, "speaker.n.01")

    # Structural part-of backbone of a play edition.
    b.relation("act.n.01", Relation.PART_HOLONYM, "play.n.01")
    b.relation("scene.n.01", Relation.PART_HOLONYM, "act.n.01")
    b.relation("speech.n.02", Relation.PART_HOLONYM, "scene.n.01")
    b.relation("line.n.01", Relation.PART_HOLONYM, "speech.n.02")
    b.relation("prologue.n.01", Relation.PART_HOLONYM, "play.n.01")
    b.relation("epilogue.n.01", Relation.PART_HOLONYM, "play.n.01")
    b.relation("persona.n.01", Relation.PART_HOLONYM, "play.n.01")
    b.relation("stage.n.03", Relation.PART_HOLONYM, "theater.n.01")
